// placeholder
