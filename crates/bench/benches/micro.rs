//! Microbenchmarks of the core algorithms: the per-iteration costs that
//! dominate the experiment pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use spef_core::{
    build_dags, solve_te, traffic_distribution, FrankWolfeConfig, NemConfig, Objective,
    RoutingEngine, SplitRule,
};
use spef_graph::{
    build_dag_set, Csr, DagSet, NodeId, Parallelism, RoutingWorkspace, ShortestPathDag,
};
use spef_lp::simplex::{LinearProgram, Relation};
use spef_netsim::{simulate, SimConfig};
use spef_topology::{gen, standard, TrafficMatrix};

fn bench_dijkstra_dag(c: &mut Criterion) {
    let net = gen::random_network("Rand100", 100, 392, 0xFEED);
    let w: Vec<f64> = net.capacities().iter().map(|x| 1.0 / x).collect();

    // The engine path: CSR + workspace arenas amortised across iterations,
    // exactly how the solver loops drive DAG construction.
    let csr = Csr::in_of(net.graph());
    let mut ws = RoutingWorkspace::new();
    let mut set = DagSet::new();
    c.bench_function("dag_build_rand100", |b| {
        b.iter(|| {
            build_dag_set(
                net.graph(),
                &csr,
                &w,
                &[NodeId::new(0)],
                0.0,
                Parallelism::Never,
                &mut ws,
                &mut set,
            )
            .expect("dag")
        })
    });
    // The legacy per-destination path, kept as the comparison point.
    c.bench_function("dag_build_rand100_legacy", |b| {
        b.iter(|| ShortestPathDag::build(net.graph(), &w, 0.into(), 0.0).expect("dag"))
    });

    // All-destinations batch: batched (parallel fan-out) vs a legacy loop.
    let dests: Vec<NodeId> = net.graph().nodes().collect();
    c.bench_function("dags_all_rand100_batched", |b| {
        b.iter(|| {
            build_dag_set(
                net.graph(),
                &csr,
                &w,
                &dests,
                0.0,
                Parallelism::Auto,
                &mut ws,
                &mut set,
            )
            .expect("dags")
        })
    });
    c.bench_function("dags_all_rand100_legacy", |b| {
        b.iter(|| {
            dests
                .iter()
                .map(|&t| ShortestPathDag::build(net.graph(), &w, t, 0.0).expect("dag"))
                .collect::<Vec<_>>()
        })
    });
}

fn bench_traffic_distribution(c: &mut Criterion) {
    let net = standard::cernet2();
    let tm = TrafficMatrix::gravity(&net, 1.0, 3).scaled_to_network_load(&net, 0.15);
    let w: Vec<f64> = net.capacities().iter().map(|x| 1.0 / x).collect();
    let dags = build_dags(net.graph(), &w, &tm.destinations(), 0.0).expect("dags");
    let v = vec![0.1; net.link_count()];
    c.bench_function("traffic_distribution_cernet2", |b| {
        b.iter(|| {
            traffic_distribution(net.graph(), &dags, &tm, SplitRule::Exponential(&v))
                .expect("distribution")
        })
    });

    // The full steady-state engine cycle (build DAGs + distribute) with
    // zero allocations — what one solver iteration costs.
    let dests = tm.destinations();
    let mut engine = RoutingEngine::new(net.graph());
    let mut flows = engine.distribute_fresh();
    c.bench_function("engine_cycle_cernet2", |b| {
        b.iter(|| {
            engine.build_dags(&w, &dests, 0.0).expect("dags");
            engine
                .distribute_into(&tm, SplitRule::Exponential(&v), &mut flows)
                .expect("distribution")
        })
    });
}

fn bench_frank_wolfe(c: &mut Criterion) {
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.12);
    let obj = Objective::proportional(net.link_count());
    let cfg = FrankWolfeConfig {
        max_iterations: 100,
        relative_gap_tolerance: 0.0,
        ..FrankWolfeConfig::default()
    };
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    group.bench_function("frank_wolfe_100it_abilene", |b| {
        b.iter(|| solve_te(&net, &tm, &obj, &cfg).expect("te"))
    });
    group.finish();
}

fn bench_nem(c: &mut Criterion) {
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.12);
    let obj = Objective::proportional(net.link_count());
    let te = solve_te(&net, &tm, &obj, &FrankWolfeConfig::fast()).expect("te");
    let max_w = te.weights.iter().cloned().fold(0.0, f64::max);
    let dags =
        build_dags(net.graph(), &te.weights, &tm.destinations(), 1e-2 * max_w).expect("dags");
    let cfg = NemConfig {
        max_iterations: 100,
        epsilon: Some(0.0),
        ..NemConfig::default()
    };
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    group.bench_function("nem_100it_abilene", |b| {
        b.iter(|| {
            spef_core::nem::solve_second_weights(
                net.graph(),
                &dags,
                &tm,
                te.flows.aggregate(),
                &cfg,
            )
            .expect("nem")
        })
    });
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    // The β = 0 LP on Fig. 4 (57 vars, 37 rows).
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    let obj = Objective::min_hop(net.link_count());
    c.bench_function("simplex_beta0_fig4", |b| {
        b.iter(|| solve_te(&net, &tm, &obj, &FrankWolfeConfig::default()).expect("lp"))
    });
    // A dense random-ish LP for raw pivot throughput.
    c.bench_function("simplex_dense_30x60", |b| {
        b.iter(|| {
            let mut lp = LinearProgram::maximize(60);
            for v in 0..60 {
                lp.set_objective(v, 1.0 + (v % 7) as f64);
            }
            for r in 0..30 {
                let row: Vec<(usize, f64)> = (0..60)
                    .map(|v| (v, 1.0 + ((r * 31 + v * 17) % 5) as f64))
                    .collect();
                lp.add_constraint(&row, Relation::Le, 100.0);
            }
            lp.solve().expect("solvable")
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let net = standard::fig4();
    let tm = standard::table4_simple_demands();
    let obj = Objective::proportional(net.link_count());
    let routing = spef_core::SpefRouting::build(&net, &tm, &obj, &spef_core::SpefConfig::default())
        .expect("routing");
    let cfg = SimConfig {
        duration: 5.0,
        capacity_to_bps: 1e6,
        demand_to_bps: 1e6,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("netsim_5s_fig4", |b| {
        b.iter(|| simulate(&net, &tm, routing.forwarding_table(), &cfg).expect("sim"))
    });
    group.finish();
}

criterion_group!(
    micro,
    bench_dijkstra_dag,
    bench_traffic_distribution,
    bench_frank_wolfe,
    bench_nem,
    bench_simplex,
    bench_simulator
);
criterion_main!(micro);
