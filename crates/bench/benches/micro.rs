//! Microbenchmarks of the core algorithms: the per-iteration costs that
//! dominate the experiment pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use spef_baselines::fortz_thorup::{FtConfig, FtOutcome};
use spef_baselines::robust::{RobustConfig, RobustOutcome};
use spef_core::{
    build_dags, traffic_distribution, ConvergenceCriteria, FibSet, ForwardingTable,
    FrankWolfeConfig, NemConfig, NemInstance, Objective, RoutingEngine, SplitRule, TeInstance,
    TeSolver, TeWorkspace,
};
use spef_graph::{
    build_dag_set, Csr, DagSet, NodeId, Parallelism, RoutingWorkspace, ShortestPathDag,
};
use spef_lp::simplex::{LinearProgram, Relation, SimplexWorkspace};
use spef_netsim::{simulate, simulate_with, SchedulerKind, SimConfig, SimWorkspace};
use spef_topology::{gen, standard, Network, TrafficMatrix};

fn bench_dijkstra_dag(c: &mut Criterion) {
    let net = gen::random_network("Rand100", 100, 392, 0xFEED);
    let w: Vec<f64> = net.capacities().iter().map(|x| 1.0 / x).collect();

    // The engine path: CSR + workspace arenas amortised across iterations,
    // exactly how the solver loops drive DAG construction.
    let csr = Csr::in_of(net.graph());
    let mut ws = RoutingWorkspace::new();
    let mut set = DagSet::new();
    c.bench_function("dag_build_rand100", |b| {
        b.iter(|| {
            build_dag_set(
                net.graph(),
                &csr,
                &w,
                &[NodeId::new(0)],
                0.0,
                Parallelism::Never,
                &mut ws,
                &mut set,
            )
            .expect("dag")
        })
    });
    // The legacy per-destination path, kept as the comparison point.
    c.bench_function("dag_build_rand100_legacy", |b| {
        b.iter(|| ShortestPathDag::build(net.graph(), &w, 0.into(), 0.0).expect("dag"))
    });

    // All-destinations batch: batched (parallel fan-out) vs a legacy loop.
    let dests: Vec<NodeId> = net.graph().nodes().collect();
    c.bench_function("dags_all_rand100_batched", |b| {
        b.iter(|| {
            build_dag_set(
                net.graph(),
                &csr,
                &w,
                &dests,
                0.0,
                Parallelism::Auto,
                &mut ws,
                &mut set,
            )
            .expect("dags")
        })
    });
    c.bench_function("dags_all_rand100_legacy", |b| {
        b.iter(|| {
            dests
                .iter()
                .map(|&t| ShortestPathDag::build(net.graph(), &w, t, 0.0).expect("dag"))
                .collect::<Vec<_>>()
        })
    });
}

fn bench_traffic_distribution(c: &mut Criterion) {
    let net = standard::cernet2();
    let tm = TrafficMatrix::gravity(&net, 1.0, 3).scaled_to_network_load(&net, 0.15);
    let w: Vec<f64> = net.capacities().iter().map(|x| 1.0 / x).collect();
    let dags = build_dags(net.graph(), &w, &tm.destinations(), 0.0).expect("dags");
    let v = vec![0.1; net.link_count()];
    c.bench_function("traffic_distribution_cernet2", |b| {
        b.iter(|| {
            traffic_distribution(net.graph(), &dags, &tm, SplitRule::Exponential(&v))
                .expect("distribution")
        })
    });

    // The full steady-state engine cycle (build DAGs + distribute) with
    // zero allocations — what one solver iteration costs.
    let dests = tm.destinations();
    let mut engine = RoutingEngine::new(net.graph());
    let mut flows = engine.distribute_fresh();
    c.bench_function("engine_cycle_cernet2", |b| {
        b.iter(|| {
            engine.build_dags(&w, &dests, 0.0).expect("dags");
            engine
                .distribute_into(&tm, SplitRule::Exponential(&v), &mut flows)
                .expect("distribution")
        })
    });
}

fn bench_fib(c: &mut Criterion) {
    // The forwarding-plane pair for the flat-FIB rework: CERNET2 split
    // tables (every node a destination) flattened into a `FibSet`, then
    // the netsim per-hop body — row fetch plus cum-prob selection — over
    // every (destination, router) cell.
    let net = standard::cernet2();
    let tm = TrafficMatrix::gravity(&net, 1.0, 3).scaled_to_network_load(&net, 0.15);
    let dests = tm.destinations();
    let w: Vec<f64> = net.capacities().iter().map(|x| 1.0 / x).collect();
    let v = vec![0.1; net.link_count()];
    let mut engine = RoutingEngine::new(net.graph());
    engine.build_dags(&w, &dests, 0.0).expect("dags");
    engine
        .build_split_tables(SplitRule::Exponential(&v))
        .expect("tables");
    let n = net.node_count();

    // Steady-state flatten: refill a warmed arena from the engine's split
    // tables (zero allocations once shaped — pinned by
    // crates/core/tests/fib_alloc.rs).
    let mut fib_ws = FibSet::new();
    c.bench_function("fib_build_cernet2", |b| {
        b.iter(|| {
            fib_ws.rebuild_from_split_table_set(n, &dests, engine.split_tables());
            fib_ws.entry_count()
        })
    });

    let fib = ForwardingTable::from_split_table_set(n, &dests, engine.split_tables());
    let set = fib.fib();
    c.bench_function("fib_lookup_cernet2", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            let mut x = 0.05f64;
            for (slot, _) in dests.iter().enumerate() {
                for u in 0..n {
                    let row = set.row(slot as u32, NodeId::new(u));
                    if !row.is_empty() {
                        acc += row.select(x).index();
                        x = (x + 0.37) % 1.0;
                    }
                }
            }
            acc
        })
    });
}

fn bench_frank_wolfe(c: &mut Criterion) {
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.12);
    let obj = Objective::proportional(net.link_count());
    let cfg = FrankWolfeConfig {
        convergence: ConvergenceCriteria::with_tolerance(100, 0.0),
        ..FrankWolfeConfig::default()
    };
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    group.bench_function("frank_wolfe_100it_abilene", |b| {
        b.iter(|| cfg.solve(TeInstance::new(&net, &tm, &obj)).expect("te"))
    });

    // The PR 6 warm-vs-cold pair: the alternating-load steady state a
    // dependency-aware sweep runs on one chain. The loads are proportional
    // rescales of one Fortz-Thorup shape, so each warm solve restarts from
    // its neighbour's rescaled solution and must reach the relative-gap
    // tolerance in fewer iterations than a cold solve of the same load
    // (asserted below, and the iteration counts are printed so the lane
    // doubles as the warm-start witness).
    let tm_hi = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.13);
    // Tolerance-bound (generous cap) so the stopping point is the gap, not
    // the budget — a capped run would hide the warm start's head start.
    let fw = FrankWolfeConfig {
        convergence: ConvergenceCriteria::with_tolerance(20_000, 1e-4),
        ..FrankWolfeConfig::default()
    };
    let cold_lo = fw.solve(TeInstance::new(&net, &tm, &obj)).expect("te");
    let cold_hi = fw.solve(TeInstance::new(&net, &tm_hi, &obj)).expect("te");
    let mut ws = TeWorkspace::new();
    fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
        .expect("te");
    let warm_hi = fw
        .solve_in(TeInstance::new(&net, &tm_hi, &obj), &mut ws)
        .expect("te");
    let warm_lo = fw
        .solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
        .expect("te");
    eprintln!(
        "frank_wolfe_abilene cold vs warm iterations: \
         load 0.12: {} -> {}, load 0.13: {} -> {}",
        cold_lo.iterations, warm_lo.iterations, cold_hi.iterations, warm_hi.iterations
    );
    assert!(
        warm_hi.iterations < cold_hi.iterations || warm_lo.iterations < cold_lo.iterations,
        "warm start saved no iterations on either neighbouring load"
    );
    group.bench_function("frank_wolfe_abilene_cold", |b| {
        b.iter(|| {
            let lo = fw.solve(TeInstance::new(&net, &tm, &obj)).expect("te");
            let hi = fw.solve(TeInstance::new(&net, &tm_hi, &obj)).expect("te");
            lo.iterations + hi.iterations
        })
    });
    group.bench_function("frank_wolfe_abilene_warm", |b| {
        b.iter(|| {
            let hi = fw
                .solve_in(TeInstance::new(&net, &tm_hi, &obj), &mut ws)
                .expect("te");
            let lo = fw
                .solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
                .expect("te");
            lo.iterations + hi.iterations
        })
    });
    group.finish();
}

fn bench_failure_chain(c: &mut Criterion) {
    // The PR 7 warm-vs-cold pair: a remove-one-link failure chain. The
    // intact Abilene solve is recorded as the session's base solution;
    // each degraded solve then restarts from that solution projected onto
    // the surviving edge set (conservation repaired along detours) instead
    // of from scratch. Tolerance-bound so the stopping point is the
    // relative gap, and the iteration totals are printed so the lane
    // doubles as the warm-start witness.
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.1);
    let obj = Objective::proportional(net.link_count());
    let fw = FrankWolfeConfig {
        convergence: ConvergenceCriteria::with_tolerance(20_000, 1e-4),
        ..FrankWolfeConfig::default()
    };
    // A chain of circuit failures that stay feasible at this load (some
    // Abilene circuits leave no slack at 0.1 and would abort both lanes).
    let circuits = net.duplex_circuits();
    let chain: Vec<_> = [0usize, 1, 3, 6, 13]
        .into_iter()
        .map(|i| {
            let (degraded, _) = net
                .without_links(&circuits[i])
                .expect("no bridges on Abilene");
            let obj_d = Objective::proportional(degraded.link_count());
            (degraded, obj_d)
        })
        .collect();

    let mut cold_total = 0u64;
    for (degraded, obj_d) in &chain {
        let sol = fw.solve(TeInstance::new(degraded, &tm, obj_d)).expect("te");
        cold_total += sol.iterations as u64;
    }
    let mut ws = TeWorkspace::new();
    fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
        .expect("te");
    let mut warm_total = 0u64;
    for (degraded, obj_d) in &chain {
        let sol = fw
            .solve_in(TeInstance::new(degraded, &tm, obj_d), &mut ws)
            .expect("te");
        warm_total += sol.iterations as u64;
    }
    eprintln!(
        "failure_chain_abilene cold vs warm iterations over {} circuit failures: {} -> {}",
        chain.len(),
        cold_total,
        warm_total
    );
    assert!(
        warm_total < cold_total,
        "removal warm start saved no iterations across the failure chain \
         ({cold_total} cold vs {warm_total} warm)"
    );

    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    group.bench_function("failure_chain_abilene_cold", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for (degraded, obj_d) in &chain {
                total += fw
                    .solve(TeInstance::new(degraded, &tm, obj_d))
                    .expect("te")
                    .iterations as u64;
            }
            total
        })
    });
    group.bench_function("failure_chain_abilene_warm", |b| {
        b.iter(|| {
            // Re-anchor the base at the intact solution, then run the
            // degraded chain off its projections.
            ws.clear_solutions();
            fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
                .expect("te");
            let mut total = 0u64;
            for (degraded, obj_d) in &chain {
                total += fw
                    .solve_in(TeInstance::new(degraded, &tm, obj_d), &mut ws)
                    .expect("te")
                    .iterations as u64;
            }
            total
        })
    });
    group.finish();
}

fn bench_nem(c: &mut Criterion) {
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.12);
    let obj = Objective::proportional(net.link_count());
    let te = FrankWolfeConfig::fast()
        .solve(TeInstance::new(&net, &tm, &obj))
        .expect("te");
    let max_w = te.weights.iter().cloned().fold(0.0, f64::max);
    let dags =
        build_dags(net.graph(), &te.weights, &tm.destinations(), 1e-2 * max_w).expect("dags");
    let cfg = NemConfig {
        convergence: ConvergenceCriteria::with_tolerance(100, 0.0),
        ..NemConfig::default()
    };
    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    let mut ws = TeWorkspace::new();
    group.bench_function("nem_100it_abilene", |b| {
        b.iter(|| {
            ws.clear_solutions();
            cfg.solve_in(
                NemInstance::new(net.graph(), &dags, &tm, te.flows.aggregate()),
                &mut ws,
            )
            .expect("nem")
        })
    });
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    // The β = 0 LP on Fig. 4 (57 vars, 37 rows).
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    let obj = Objective::min_hop(net.link_count());
    let fw = FrankWolfeConfig::default();
    c.bench_function("simplex_beta0_fig4", |b| {
        b.iter(|| fw.solve(TeInstance::new(&net, &tm, &obj)).expect("lp"))
    });
    // A dense random-ish LP for raw pivot throughput.
    c.bench_function("simplex_dense_30x60", |b| {
        b.iter(|| {
            let mut lp = LinearProgram::maximize(60);
            for v in 0..60 {
                lp.set_objective(v, 1.0 + (v % 7) as f64);
            }
            for r in 0..30 {
                let row: Vec<(usize, f64)> = (0..60)
                    .map(|v| (v, 1.0 + ((r * 31 + v * 17) % 5) as f64))
                    .collect();
                lp.add_constraint(&row, Relation::Le, 100.0);
            }
            lp.solve().expect("solvable")
        })
    });
}

/// The min-MLU LP exactly as `spef_baselines::mlu_lp` builds it:
/// `|D|·|J| + 1` variables (per-destination flow blocks plus θ), capacity
/// rows and per-destination conservation rows.
fn build_mlu_lp(network: &Network, tm: &TrafficMatrix) -> LinearProgram {
    let g = network.graph();
    let m = g.edge_count();
    let dests = tm.destinations();
    let theta = dests.len() * m;
    let var = |ti: usize, e: usize| ti * m + e;
    let mut lp = LinearProgram::minimize(theta + 1);
    lp.set_objective(theta, 1.0);
    for e in 0..m {
        let mut row: Vec<(usize, f64)> = (0..dests.len()).map(|ti| (var(ti, e), 1.0)).collect();
        row.push((theta, -network.capacity(e.into())));
        lp.add_constraint(&row, Relation::Le, 0.0);
    }
    for (ti, &t) in dests.iter().enumerate() {
        let demands = tm.demands_to(t);
        for node in g.nodes() {
            if node == t {
                continue;
            }
            let mut row: Vec<(usize, f64)> = Vec::new();
            for &e in g.out_edges(node) {
                row.push((var(ti, e.index()), 1.0));
            }
            for &e in g.in_edges(node) {
                row.push((var(ti, e.index()), -1.0));
            }
            lp.add_constraint(&row, Relation::Eq, demands[node.index()]);
        }
    }
    lp
}

fn bench_simplex_mlu(c: &mut Criterion) {
    // The paper-scale MLU LP on Abilene, solved three ways: the flat-arena
    // engine cold (workspace recycled), the warm-start resolve path, and a
    // faithful copy of the legacy Vec<Vec<f64>>-with-per-pivot-clone
    // tableau — the before/after evidence for the flat rewrite.
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.12);
    let lp = build_mlu_lp(&net, &tm);
    let reference = lp.solve().expect("abilene MLU LP solves").objective();

    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);
    group.bench_function("simplex_mlu_abilene_flat", |b| {
        let mut ws = SimplexWorkspace::new();
        b.iter(|| lp.solve_with(&mut ws).expect("mlu lp"))
    });
    group.bench_function("simplex_mlu_abilene_resolve", |b| {
        let mut ws = SimplexWorkspace::new();
        lp.resolve(&mut ws).expect("warm-up");
        b.iter(|| lp.resolve(&mut ws).expect("mlu lp"))
    });
    group.bench_function("simplex_mlu_abilene_legacy-shape", |b| {
        b.iter(|| {
            let sol = legacy_shape::solve(&lp).expect("mlu lp");
            assert!((sol - reference).abs() < 1e-7, "legacy diverged: {sol}");
            sol
        })
    });
    group.finish();
}

/// A faithful copy of the pre-flat-arena simplex: `Vec<Vec<f64>>` tableau,
/// a full row `clone()` per pivot and per objective-row update. Kept here
/// (not in `spef-lp`) purely as the benchmark comparison shape; it reads
/// the model through `LinearProgram`'s introspection API and must produce
/// the same objective as the flat engine.
mod legacy_shape {
    use spef_lp::simplex::{LinearProgram, Relation};

    const EPS: f64 = 1e-9;
    const PIVOT_EPS: f64 = 1e-7;

    type SparseRow = (Vec<(usize, f64)>, Relation, f64);

    struct Tableau {
        t: Vec<Vec<f64>>,
        m: usize,
        cols: usize,
        basis: Vec<usize>,
        row_active: Vec<bool>,
        art_start: usize,
        costs: Vec<f64>,
        n_struct: usize,
    }

    pub fn solve(lp: &LinearProgram) -> Result<f64, String> {
        let mut tab = build(lp);
        phase1(&mut tab)?;
        phase2(&mut tab)?;
        // Objective extraction (duals omitted: the pivots above are the
        // measured work and are identical in kind to the legacy engine's).
        let mut x = vec![0.0; lp.num_vars()];
        for i in 0..tab.m {
            if tab.row_active[i] && tab.basis[i] < lp.num_vars() {
                x[tab.basis[i]] = tab.t[i][tab.cols];
            }
        }
        Ok(x.iter()
            .enumerate()
            .map(|(v, xi)| xi * lp.objective_coeff(v))
            .sum())
    }

    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.num_constraints();
        let n = lp.num_vars();
        let rows: Vec<SparseRow> = lp
            .constraint_rows()
            .map(|(c, r, b)| (c.to_vec(), r, b))
            .collect();
        let rel: Vec<Relation> = rows
            .iter()
            .map(|&(_, r, b)| {
                if b < 0.0 {
                    match r {
                        Relation::Le => Relation::Ge,
                        Relation::Ge => Relation::Le,
                        Relation::Eq => Relation::Eq,
                    }
                } else {
                    r
                }
            })
            .collect();
        let n_slack = rel
            .iter()
            .filter(|r| matches!(r, Relation::Le | Relation::Ge))
            .count();
        let n_art = rel
            .iter()
            .filter(|r| matches!(r, Relation::Ge | Relation::Eq))
            .count();
        let cols = n + n_slack + n_art;
        let art_start = n + n_slack;
        let mut t = vec![vec![0.0; cols + 1]; m + 1];
        let mut basis = vec![usize::MAX; m];
        for (i, (coeffs, _, rhs)) in rows.iter().enumerate() {
            let sign = if *rhs < 0.0 { -1.0 } else { 1.0 };
            for &(v, a) in coeffs {
                t[i][v] += sign * a;
            }
            t[i][cols] = rhs.abs();
        }
        let mut next_slack = n;
        let mut next_art = art_start;
        for (i, r) in rel.iter().enumerate() {
            match r {
                Relation::Le => {
                    t[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    t[i][next_slack] = -1.0;
                    next_slack += 1;
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
        let costs: Vec<f64> = (0..n)
            .map(|v| {
                if lp.is_maximize() {
                    -lp.objective_coeff(v)
                } else {
                    lp.objective_coeff(v)
                }
            })
            .collect();
        Tableau {
            t,
            m,
            cols,
            basis,
            row_active: vec![true; m],
            art_start,
            costs,
            n_struct: n,
        }
    }

    fn phase1(tab: &mut Tableau) -> Result<(), String> {
        if tab.art_start == tab.cols {
            return Ok(());
        }
        let obj = tab.m;
        for j in 0..=tab.cols {
            tab.t[obj][j] = 0.0;
        }
        for j in tab.art_start..tab.cols {
            tab.t[obj][j] = 1.0;
        }
        for i in 0..tab.m {
            if tab.basis[i] >= tab.art_start {
                let row = tab.t[i].clone();
                for (dst, src) in tab.t[obj].iter_mut().zip(&row) {
                    *dst -= *src;
                }
            }
        }
        iterate(tab, tab.cols)?;
        if -tab.t[obj][tab.cols] > 1e-7 {
            return Err("infeasible".into());
        }
        for i in 0..tab.m {
            if tab.basis[i] >= tab.art_start {
                let pivot_col = (0..tab.art_start).find(|&j| tab.t[i][j].abs() > PIVOT_EPS);
                match pivot_col {
                    Some(j) => pivot(tab, i, j),
                    None => tab.row_active[i] = false,
                }
            }
        }
        Ok(())
    }

    fn phase2(tab: &mut Tableau) -> Result<(), String> {
        let obj = tab.m;
        for j in 0..=tab.cols {
            tab.t[obj][j] = 0.0;
        }
        for j in 0..tab.n_struct {
            tab.t[obj][j] = tab.costs[j];
        }
        for i in 0..tab.m {
            if !tab.row_active[i] {
                continue;
            }
            let b = tab.basis[i];
            let cb = if b < tab.n_struct { tab.costs[b] } else { 0.0 };
            if cb != 0.0 {
                let row = tab.t[i].clone();
                for (dst, src) in tab.t[obj].iter_mut().zip(&row) {
                    *dst -= cb * *src;
                }
            }
        }
        iterate(tab, tab.art_start)
    }

    fn iterate(tab: &mut Tableau, allowed_cols: usize) -> Result<(), String> {
        let obj = tab.m;
        let bland_after = 50 * (tab.m + tab.cols) + 1000;
        let hard_cap = 400 * (tab.m + tab.cols) + 20_000;
        for iter in 0..hard_cap {
            let bland = iter >= bland_after;
            let entering = if bland {
                (0..allowed_cols).find(|&j| tab.t[obj][j] < -EPS)
            } else {
                let mut best = None;
                let mut best_val = -EPS;
                for j in 0..allowed_cols {
                    let r = tab.t[obj][j];
                    if r < best_val {
                        best_val = r;
                        best = Some(j);
                    }
                }
                best
            };
            let Some(j) = entering else {
                return Ok(());
            };
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..tab.m {
                if !tab.row_active[i] {
                    continue;
                }
                let a = tab.t[i][j];
                if a > PIVOT_EPS {
                    let ratio = tab.t[i][tab.cols] / a;
                    let better = match leave {
                        None => true,
                        Some(li) => {
                            ratio < best_ratio - EPS
                                || (bland
                                    && (ratio - best_ratio).abs() <= EPS
                                    && tab.basis[i] < tab.basis[li])
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(i) = leave else {
                return Err("unbounded".into());
            };
            pivot(tab, i, j);
        }
        Err("iteration cap exceeded".into())
    }

    fn pivot(tab: &mut Tableau, pivot_row: usize, pivot_col: usize) {
        let piv = tab.t[pivot_row][pivot_col];
        let inv = 1.0 / piv;
        for j in 0..=tab.cols {
            tab.t[pivot_row][j] *= inv;
        }
        tab.t[pivot_row][pivot_col] = 1.0;
        let prow = tab.t[pivot_row].clone();
        for i in 0..=tab.m {
            if i == pivot_row {
                continue;
            }
            let factor = tab.t[i][pivot_col];
            if factor.abs() > 0.0 {
                for (dst, src) in tab.t[i].iter_mut().zip(&prow) {
                    *dst -= factor * *src;
                }
                tab.t[i][pivot_col] = 0.0;
            }
        }
        tab.basis[pivot_row] = pivot_col;
    }
}

fn bench_simulator(c: &mut Criterion) {
    let net = standard::fig4();
    let tm = standard::table4_simple_demands();
    let obj = Objective::proportional(net.link_count());
    let routing = spef_core::SpefConfig::default()
        .solve(TeInstance::new(&net, &tm, &obj))
        .expect("routing");
    let cfg = SimConfig {
        duration: 5.0,
        capacity_to_bps: 1e6,
        demand_to_bps: 1e6,
        ..SimConfig::default()
    };
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    // Historical lane: default scheduler, fresh workspace per run.
    group.bench_function("netsim_5s_fig4", |b| {
        b.iter(|| simulate(&net, &tm, routing.forwarding_table(), &cfg).expect("sim"))
    });

    // The PR 4 before/after pair: identical workload, heap vs calendar,
    // both on a warm workspace so the scheduler is the only difference.
    // The reports are bit-identical by construction (asserted below); only
    // the wall time may move.
    let heap_cfg = SimConfig {
        scheduler: SchedulerKind::BinaryHeap,
        ..cfg.clone()
    };
    let mut ws = SimWorkspace::new();
    let reference = simulate_with(&net, &tm, routing.forwarding_table(), &cfg, &mut ws)
        .expect("calendar reference");
    let heap_report = simulate_with(&net, &tm, routing.forwarding_table(), &heap_cfg, &mut ws)
        .expect("heap reference");
    assert_eq!(reference, heap_report, "schedulers must agree bit for bit");
    group.bench_function("sim_fig4_heap", |b| {
        b.iter(|| {
            simulate_with(&net, &tm, routing.forwarding_table(), &heap_cfg, &mut ws).expect("sim")
        })
    });
    group.bench_function("sim_fig4_calendar", |b| {
        b.iter(|| simulate_with(&net, &tm, routing.forwarding_table(), &cfg, &mut ws).expect("sim"))
    });
    // The PR 5 lane: identical workload to sim_fig4_calendar, named to
    // mark the flat-FIB forwarding plane (slot-hoisted lookups + cum-prob
    // binary-search sampling). Compare against the committed pre-PR5
    // sim_fig4_calendar number to read the forwarding-plane speedup.
    group.bench_function("sim_fig4_flatfib", |b| {
        b.iter(|| simulate_with(&net, &tm, routing.forwarding_table(), &cfg, &mut ws).expect("sim"))
    });

    // CERNET2 panel of Fig. 11 (TABLE IV demands at the documented 0.5
    // scale), the larger sim workload of the sweep family.
    let net2 = standard::cernet2();
    let tm2 = standard::table4_cernet2_demands().scaled(0.5);
    let obj2 = Objective::proportional(net2.link_count());
    let cfg2 = spef_core::SpefConfig {
        solver: spef_core::TeSolverKind::FrankWolfe(FrankWolfeConfig::fast()),
        ..spef_core::SpefConfig::default()
    };
    let routing2 = cfg2
        .solve(TeInstance::new(&net2, &tm2, &obj2))
        .expect("routing");
    let sim_cfg2 = SimConfig {
        duration: 5.0,
        capacity_to_bps: 1e6, // Gb/s units driven at Mb/s scale: same event
        demand_to_bps: 1e6,   // counts, bench-friendly wall time
        ..SimConfig::default()
    };
    group.bench_function("sim_cernet2_calendar", |b| {
        b.iter(|| {
            simulate_with(&net2, &tm2, routing2.forwarding_table(), &sim_cfg2, &mut ws)
                .expect("sim")
        })
    });
    group.finish();
}

fn bench_incremental_spf(c: &mut Criterion) {
    // The PR 9 full-vs-incremental pairs: single-weight probe loops whose
    // SPF work the delta-aware engine trims to the dirty destinations.
    // Both modes are run once during setup, asserted bit-identical, and
    // the SPF counters (incl. mean dirty destinations per probe) are
    // printed so the lanes double as the incremental-path witness.
    let mut group = c.benchmark_group("incremental_spf");
    group.sample_size(10);

    // Fortz-Thorup local search on Abilene: every candidate is a
    // single-weight mutation of the incumbent, the incremental path's
    // best case. The bench budget is a slice of the sweep budget (same
    // search, shorter trajectory) to keep lane wall time sane.
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.1);
    let ft_full = FtConfig {
        max_weight: 20,
        max_evaluations: 300,
        restarts: 1,
        seed: 0xF7,
        full_rebuild: true,
    };
    let ft_incr = FtConfig {
        full_rebuild: false,
        ..ft_full
    };
    let t0 = std::time::Instant::now();
    let full = FtOutcome::local_search(&net, &tm, &ft_full).expect("ft full");
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = std::time::Instant::now();
    let incr = FtOutcome::local_search(&net, &tm, &ft_incr).expect("ft incremental");
    let incr_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(full.cost.to_bits(), incr.cost.to_bits());
    assert_eq!(full.weights, incr.weights);
    assert_eq!(full.spf_stats.incremental_builds, 0);
    assert!(
        incr.spf_stats.incremental_builds > 0,
        "FT probes never took the incremental path: {:?}",
        incr.spf_stats
    );
    let dests = tm.destinations().len() as f64;
    eprintln!(
        "ft_local_search_abilene full vs incremental: {full_ms:.1}ms -> {incr_ms:.1}ms; \
         {} of {} builds incremental, mean dirty destinations/probe {:.2} of {dests}",
        incr.spf_stats.incremental_builds,
        incr.spf_stats.builds,
        incr.spf_stats.slots_rebuilt as f64 / incr.spf_stats.incremental_builds as f64,
    );
    group.bench_function("ft_local_search_abilene_full", |b| {
        b.iter(|| FtOutcome::local_search(&net, &tm, &ft_full).expect("ft full"))
    });
    group.bench_function("ft_local_search_abilene_incremental", |b| {
        b.iter(|| FtOutcome::local_search(&net, &tm, &ft_incr).expect("ft incremental"))
    });

    // Reconfiguration pushes on a 200-node tiered topology: every
    // intermediate mixed state is a one-weight delta of its predecessor,
    // and with 200 destination slots the dirty fraction per push is tiny.
    // The pushed links point *into* edge-layer leaves (an access-link
    // reweighting campaign), so each push can only dirty the handful of
    // destinations behind that access link; and the `to` endpoint only
    // lowers weights so the mixed vector's maximum (which scales the
    // equal-cost tolerance) stays put across the whole migration.
    let hier = gen::tiered_network("Tier200", 8, 4, 5, 0x7E2);
    let htm = TrafficMatrix::fortz_thorup(&hier, 1).scaled_to_network_load(&hier, 0.04);
    let from: Vec<f64> = hier.capacities().iter().map(|c| 1.0 / c).collect();
    let first_edge_node = 8 + 8 * 4; // cores + aggregation routers
    let into_leaves: Vec<usize> = hier
        .graph()
        .edges()
        .filter(|&(_, _, v)| v.index() >= first_edge_node)
        .map(|(e, _, _)| e.index())
        .collect();
    let mut to = from.clone();
    for (k, e) in into_leaves
        .iter()
        .step_by(into_leaves.len() / 6)
        .take(6)
        .enumerate()
    {
        to[*e] *= 0.45 + 0.05 * k as f64;
    }
    let t0 = std::time::Instant::now();
    let (full_out, full_stats) =
        spef_experiments::reconfig::migrate_with(&hier, &htm, &from, &to, true).expect("reconfig");
    let full_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = std::time::Instant::now();
    let (incr_out, incr_stats) =
        spef_experiments::reconfig::migrate_with(&hier, &htm, &from, &to, false).expect("reconfig");
    let incr_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(full_out, incr_out);
    assert_eq!(full_stats.incremental_builds, 0);
    assert!(
        incr_stats.incremental_builds > 0,
        "reconfig probes never took the incremental path: {incr_stats:?}"
    );
    let hdests = htm.destinations().len() as u64;
    assert!(
        incr_stats.slots_rebuilt * 3 <= incr_stats.incremental_builds * hdests,
        "mean dirty set per push probe is not <= 1/3 of the {hdests} destinations: {incr_stats:?}"
    );
    eprintln!(
        "reconfig_push_hier200 full vs incremental: {full_ms:.1}ms -> {incr_ms:.1}ms; \
         {} of {} builds incremental, mean dirty destinations/probe {:.2} of {hdests}",
        incr_stats.incremental_builds,
        incr_stats.builds,
        incr_stats.slots_rebuilt as f64 / incr_stats.incremental_builds as f64,
    );
    group.bench_function("reconfig_push_hier200_full", |b| {
        b.iter(|| {
            spef_experiments::reconfig::migrate_with(&hier, &htm, &from, &to, true)
                .expect("reconfig")
        })
    });
    group.bench_function("reconfig_push_hier200_incremental", |b| {
        b.iter(|| {
            spef_experiments::reconfig::migrate_with(&hier, &htm, &from, &to, false)
                .expect("reconfig")
        })
    });
    group.finish();
}

fn bench_topology_delta(c: &mut Criterion) {
    // The PR 10 masked-vs-rebuild pairs: failure scenarios handled by
    // failing links *in place* (CSR masking + dirty-destination DAG
    // patches on one persistent engine) against the legacy shape (one
    // topology clone + one engine per scenario). Both modes run once
    // during setup, are asserted bit-identical, and the topology-patch
    // counters and arena footprints are printed so the lanes double as
    // the topology-delta witness.
    let mut group = c.benchmark_group("topology_delta");
    group.sample_size(10);

    // Robust weight search on Abilene: every candidate weight vector is
    // scored against the intact network plus every single-circuit
    // failure. The masked path keeps one engine and fail/restores each
    // circuit around a routing; the rebuild path keeps an engine and a
    // degraded topology clone per scenario.
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.05);
    let cfg_masked = RobustConfig {
        max_evaluations: 60,
        ..RobustConfig::default()
    };
    let cfg_rebuild = RobustConfig {
        full_rebuild: true,
        ..cfg_masked
    };
    let t0 = std::time::Instant::now();
    let rebuild = RobustOutcome::local_search(&net, &tm, &cfg_rebuild).expect("robust rebuild");
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = std::time::Instant::now();
    let masked = RobustOutcome::local_search(&net, &tm, &cfg_masked).expect("robust masked");
    let masked_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rebuild.weights, masked.weights);
    assert_eq!(rebuild.worst_mlu.to_bits(), masked.worst_mlu.to_bits());
    assert_eq!(rebuild.intact_mlu.to_bits(), masked.intact_mlu.to_bits());
    assert_eq!(rebuild.spf_stats.topology_builds, 0);
    assert!(
        masked.spf_stats.topology_builds > 0,
        "masked search never took the topology-patch path: {:?}",
        masked.spf_stats
    );
    assert!(
        masked.arena_bytes * 2 < rebuild.arena_bytes,
        "masked search arenas ({}) are not under half the per-scenario \
         engines' ({})",
        masked.arena_bytes,
        rebuild.arena_bytes
    );
    eprintln!(
        "robust_search_abilene rebuild vs masked: {rebuild_ms:.1}ms -> {masked_ms:.1}ms; \
         {} topology patches over {} masked links, arenas {} -> {} bytes",
        masked.spf_stats.topology_builds,
        masked.spf_stats.masked_links,
        rebuild.arena_bytes,
        masked.arena_bytes
    );
    group.bench_function("robust_search_abilene_rebuild", |b| {
        b.iter(|| RobustOutcome::local_search(&net, &tm, &cfg_rebuild).expect("robust rebuild"))
    });
    group.bench_function("robust_search_abilene_masked", |b| {
        b.iter(|| RobustOutcome::local_search(&net, &tm, &cfg_masked).expect("robust masked"))
    });

    // A persistent MLU probe walked across every Abilene circuit: the
    // failure-sweep shape, one fail/route/restore round trip per circuit
    // with no topology clone. Probed with a varied (non-InvCap) weight
    // vector: under InvCap at tolerance 0 Abilene's equal-cost ties make
    // every circuit a member of most destination DAGs, so the >1/2-dirty
    // gate always falls back to a dense masked rebuild; varied weights
    // thin the DAGs and exercise the dirty-slot patches this lane
    // witnesses. Bit-identity vs the per-circuit full-rebuild probe is
    // asserted in setup (and vs cold degraded topologies in
    // `reconfig::tests::mlu_probe_matches_degraded_free_function`).
    let w: Vec<f64> = (0..net.link_count())
        .map(|e| 1.0 + (e % 7) as f64)
        .collect();
    let dests = tm.destinations();
    let circuits: Vec<_> = net
        .duplex_circuits()
        .into_iter()
        .filter(|c| net.without_links(c).is_ok())
        .collect();
    let mut probe = spef_experiments::reconfig::MluProbe::new(false);
    let mut full_probe = spef_experiments::reconfig::MluProbe::new(true);
    for circuit in &circuits {
        let a = probe
            .mlu(&net, &tm, &dests, &w, 0.0, circuit)
            .expect("masked probe");
        let b = full_probe
            .mlu(&net, &tm, &dests, &w, 0.0, circuit)
            .expect("full probe");
        assert_eq!(a.to_bits(), b.to_bits(), "masked vs full-rebuild MLU");
    }
    let stats = probe.spf_stats();
    assert!(
        stats.topology_builds > 0,
        "masked failure chain never took the topology-patch path: {stats:?}"
    );
    eprintln!(
        "failure_chain_abilene_masked: {} circuits, {} topology patches \
         over {} masked links, {} slots rebuilt",
        circuits.len(),
        stats.topology_builds,
        stats.masked_links,
        stats.slots_rebuilt
    );
    group.bench_function("failure_chain_abilene_masked", |b| {
        b.iter(|| {
            let mut worst = 0.0f64;
            for circuit in &circuits {
                worst = worst.max(
                    probe
                        .mlu(&net, &tm, &dests, &w, 0.0, circuit)
                        .expect("masked probe"),
                );
            }
            worst
        })
    });
    group.finish();
}

criterion_group!(
    micro,
    bench_dijkstra_dag,
    bench_traffic_distribution,
    bench_fib,
    bench_frank_wolfe,
    bench_failure_chain,
    bench_nem,
    bench_simplex,
    bench_simplex_mlu,
    bench_incremental_spf,
    bench_topology_delta,
    bench_simulator
);
criterion_main!(micro);
