//! Criterion benches regenerating the paper's tables (one benchmark per
//! table). Each iteration runs the full experiment pipeline at reduced
//! fidelity, so the reported time is the cost of reproducing the artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use spef_experiments::{run_experiment, Quality};

fn bench_table(c: &mut Criterion, id: &'static str) {
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(10);
    group.bench_function(id, |b| {
        b.iter(|| {
            let result = run_experiment(id, Quality::Quick).expect(id);
            assert!(!result.tables.is_empty());
            result
        })
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    bench_table(c, "table1");
}

fn bench_table3(c: &mut Criterion) {
    bench_table(c, "table3");
}

fn bench_table5(c: &mut Criterion) {
    bench_table(c, "table5");
}

criterion_group!(tables, bench_table1, bench_table3, bench_table5);
criterion_main!(tables);
