//! Criterion benches regenerating the paper's figures (one benchmark per
//! figure). Each iteration runs the experiment pipeline at reduced
//! fidelity; `repro --exp <id>` produces the full-fidelity artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use spef_experiments::{run_experiment, Quality};

fn bench_figure(c: &mut Criterion, id: &'static str) {
    let mut group = c.benchmark_group("paper_figures");
    group.sample_size(10);
    group.bench_function(id, |b| {
        b.iter(|| {
            let result = run_experiment(id, Quality::Quick).expect(id);
            assert!(!result.csvs.is_empty());
            result
        })
    });
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    bench_figure(c, "fig2");
}

fn bench_fig3(c: &mut Criterion) {
    bench_figure(c, "fig3");
}

fn bench_fig6(c: &mut Criterion) {
    bench_figure(c, "fig6");
}

fn bench_fig7(c: &mut Criterion) {
    bench_figure(c, "fig7");
}

fn bench_fig9(c: &mut Criterion) {
    bench_figure(c, "fig9");
}

fn bench_fig10(c: &mut Criterion) {
    bench_figure(c, "fig10");
}

fn bench_fig11(c: &mut Criterion) {
    bench_figure(c, "fig11");
}

fn bench_fig12(c: &mut Criterion) {
    bench_figure(c, "fig12");
}

fn bench_fig13(c: &mut Criterion) {
    bench_figure(c, "fig13");
}

criterion_group!(
    figures,
    bench_fig2,
    bench_fig3,
    bench_fig6,
    bench_fig7,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13
);
criterion_main!(figures);
