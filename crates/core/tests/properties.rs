//! Property-based tests of the SPEF core over randomly generated
//! networks and traffic matrices.

use proptest::prelude::*;
use spef_core::{
    build_dags, traffic_distribution, FrankWolfeConfig, Objective, SplitRule, TeInstance, TeSolver,
};
use spef_graph::NodeId;
use spef_topology::{gen, TrafficMatrix};

/// Strategy: a small random duplex network plus a random demand set scaled
/// to a conservative load.
fn random_instance() -> impl Strategy<Value = (spef_topology::Network, TrafficMatrix)> {
    (4usize..10, 0u64..5000, 2usize..6).prop_map(|(n, seed, pairs)| {
        let links = 2 * (n - 1) + 2 * (n / 2);
        let net = gen::random_network("prop", n, links, seed);
        let mut tm = TrafficMatrix::new(n);
        for k in 0..pairs {
            let s = (seed as usize + k * 3) % n;
            let t = (seed as usize + k * 5 + 1) % n;
            if s != t {
                tm.set(NodeId::new(s), NodeId::new(t), 0.2 + (k as f64) * 0.13);
            }
        }
        if tm.pair_count() == 0 {
            tm.set(NodeId::new(0), NodeId::new(1), 0.3);
        }
        // Keep well inside the feasible region: unit capacities, so cap
        // total load conservatively.
        let tm = tm.scaled_to_network_load(&net, 0.03);
        (net, tm)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any traffic distribution (even ECMP, random exponential weights)
    /// conserves flow at every node for every commodity.
    #[test]
    fn traffic_distribution_conserves_flow(
        (net, tm) in random_instance(),
        v_seed in 0u64..100,
    ) {
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let dags = build_dags(net.graph(), &w, &tm.destinations(), 0.0).unwrap();
        let v: Vec<f64> = (0..net.link_count())
            .map(|e| ((e as u64 * 7 + v_seed) % 5) as f64 * 0.37)
            .collect();
        for rule in [SplitRule::EvenEcmp, SplitRule::Exponential(&v)] {
            let flows = traffic_distribution(net.graph(), &dags, &tm, rule).unwrap();
            for &t in flows.destinations() {
                let f = flows.for_destination(t).unwrap();
                prop_assert!(f.iter().all(|&x| x >= 0.0));
                let div = net.graph().divergence(f);
                let demands = tm.demands_to(t);
                for node in net.graph().nodes() {
                    if node == t { continue; }
                    prop_assert!(
                        (div[node.index()] - demands[node.index()]).abs() < 1e-9,
                        "conservation at {node} toward {t}"
                    );
                }
            }
        }
    }

    /// The TE optimum's utility dominates even-ECMP OSPF routing on every
    /// random instance (optimality sanity).
    #[test]
    fn te_optimum_dominates_invcap_ecmp((net, tm) in random_instance()) {
        let obj = Objective::proportional(net.link_count());
        let te = FrankWolfeConfig::fast().solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let dags = build_dags(net.graph(), &w, &tm.destinations(), 0.0).unwrap();
        let ecmp = traffic_distribution(net.graph(), &dags, &tm, SplitRule::EvenEcmp).unwrap();
        let spare: Vec<f64> = net
            .capacities()
            .iter()
            .zip(ecmp.aggregate())
            .map(|(c, f)| c - f)
            .collect();
        if spare.iter().all(|&s| s > 0.0) {
            prop_assert!(te.utility >= obj.aggregate_utility(&spare) - 1e-6);
        }
    }

    /// First weights are positive and satisfy w = V'(s) exactly.
    #[test]
    fn te_weights_match_marginal_utilities(
        (net, tm) in random_instance(),
        beta in prop_oneof![Just(0.5), Just(1.0), Just(2.0)],
    ) {
        let obj = Objective::uniform(beta, net.link_count());
        let te = FrankWolfeConfig::fast().solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        for e in 0..net.link_count() {
            prop_assert!(te.weights[e] > 0.0);
            let expected = obj.marginal_utility(e.into(), te.spare[e]);
            prop_assert!((te.weights[e] - expected).abs() <= 1e-9 * expected.max(1.0));
        }
        // Spare + flow = capacity.
        for e in 0..net.link_count() {
            let sum = te.spare[e] + te.flows.aggregate()[e];
            prop_assert!((sum - net.capacities()[e]).abs() < 1e-9);
        }
    }

    /// Demand scaling monotonicity: more load never increases the optimal
    /// utility.
    #[test]
    fn utility_is_monotone_in_load((net, tm) in random_instance()) {
        let obj = Objective::proportional(net.link_count());
        let fw = FrankWolfeConfig::fast();
        let lo = fw.solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        let hi_tm = tm.scaled(1.5);
        let hi = fw.solve(TeInstance::new(&net, &hi_tm, &obj)).unwrap();
        prop_assert!(hi.utility <= lo.utility + 1e-6);
    }

    /// The end-to-end protocol realises a feasible routing whose MLU is
    /// within tolerance of the TE optimum's on every random instance.
    #[test]
    fn protocol_realises_near_optimal_mlu((net, tm) in random_instance()) {
        let obj = Objective::proportional(net.link_count());
        let cfg = spef_core::SpefConfig {
            solver: spef_core::TeSolverKind::FrankWolfe(FrankWolfeConfig::fast()),
            nem: spef_core::NemConfig {
                convergence: spef_core::ConvergenceCriteria::budget(3000),
                ..spef_core::NemConfig::default()
            },
            ..spef_core::SpefConfig::default()
        };
        let routing = cfg.solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        let te_mlu = spef_core::metrics::max_link_utilization(
            &net,
            routing.te_solution().flows.aggregate(),
        );
        let realized = routing.max_link_utilization(&net);
        prop_assert!(realized < 1.0, "realized MLU {realized}");
        prop_assert!(
            realized <= te_mlu + 0.05,
            "realized {realized} vs optimal {te_mlu}"
        );
    }
}
