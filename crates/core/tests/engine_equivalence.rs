//! Property tests: the batched [`RoutingEngine`] produces split ratios and
//! flows **bit-identical** to the legacy per-destination
//! `ShortestPathDag::build` + `SplitTable::build` path, independent of the
//! parallel schedule.

use proptest::prelude::*;
use spef_core::{traffic_distribution, RoutingEngine, SplitRule, SplitTable};
use spef_graph::{NodeId, Parallelism, ShortestPathDag};
use spef_topology::{gen, TrafficMatrix};

/// Strategy: a small random duplex network, a demand set, and a random
/// second-weight vector.
fn random_instance() -> impl Strategy<Value = (spef_topology::Network, TrafficMatrix, Vec<f64>)> {
    (4usize..10, 0u64..5000, 2usize..6, 0u64..97).prop_map(|(n, seed, pairs, vseed)| {
        let links = 2 * (n - 1) + 2 * (n / 2);
        let net = gen::random_network("prop", n, links, seed);
        let mut tm = TrafficMatrix::new(n);
        for k in 0..pairs {
            let s = (seed as usize + k * 3) % n;
            let t = (seed as usize + k * 5 + 1) % n;
            if s != t {
                tm.set(NodeId::new(s), NodeId::new(t), 0.2 + (k as f64) * 0.13);
            }
        }
        if tm.pair_count() == 0 {
            tm.set(NodeId::new(0), NodeId::new(1), 0.3);
        }
        let tm = tm.scaled_to_network_load(&net, 0.03);
        let v: Vec<f64> = (0..net.link_count())
            .map(|e| ((e as u64 * 13 + vseed) % 7) as f64 * 0.29)
            .collect();
        (net, tm, v)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine flows equal the legacy distribution exactly, per destination
    /// and in aggregate, under both split rules.
    #[test]
    fn engine_flows_match_legacy_bit_for_bit((net, tm, v) in random_instance()) {
        let g = net.graph();
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();

        // Independent legacy path: per-destination DAGs and split tables.
        let dags: Vec<ShortestPathDag> = dests
            .iter()
            .map(|&t| ShortestPathDag::build(g, &w, t, 0.0).unwrap())
            .collect();

        for par in [Parallelism::Never, Parallelism::Always] {
            let mut engine = RoutingEngine::with_parallelism(g, par);
            engine.build_dags(&w, &dests, 0.0).unwrap();
            for rule in [SplitRule::EvenEcmp, SplitRule::Exponential(&v)] {
                let legacy = traffic_distribution(g, &dags, &tm, rule).unwrap();
                let mine = engine.distribute(&tm, rule).unwrap();
                prop_assert_eq!(mine.aggregate(), legacy.aggregate());
                for &t in &dests {
                    prop_assert_eq!(mine.for_destination(t), legacy.for_destination(t));
                }
            }
        }
    }

    /// Engine split tables equal legacy `SplitTable::build` exactly:
    /// same next-hop sets, same ratios, same log path sums.
    #[test]
    fn engine_split_tables_match_legacy((net, tm, v) in random_instance()) {
        let g = net.graph();
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let mut engine = RoutingEngine::new(g);
        engine.build_dags(&w, &dests, 0.0).unwrap();

        for rule in [SplitRule::EvenEcmp, SplitRule::Exponential(&v)] {
            let tables = engine.build_split_tables(rule).unwrap();
            for (i, &t) in dests.iter().enumerate() {
                let dag = ShortestPathDag::build(g, &w, t, 0.0).unwrap();
                let legacy = SplitTable::build(g, &dag, rule).unwrap();
                let view = tables.table(i);
                for u in g.nodes() {
                    prop_assert_eq!(view.next_hops(u), legacy.next_hops(u));
                    // log path sums agree exactly (== also holds for the
                    // NEG_INFINITY of unreachable nodes).
                    let (a, b) = (view.log_path_sum(u), legacy.log_path_sum(u));
                    prop_assert!(a == b, "log_path_sum mismatch at {}: {} vs {}", u, a, b);
                }
            }
        }
    }

    /// Buffer reuse across iterations with changing weights leaves no
    /// residue: iteration k equals a from-scratch computation.
    #[test]
    fn iterated_engine_equals_fresh_computation((net, tm, v) in random_instance()) {
        let g = net.graph();
        let dests = tm.destinations();
        let mut engine = RoutingEngine::new(g);
        let mut flows = engine.distribute_fresh();
        for k in 1..=3u32 {
            let w: Vec<f64> = net
                .capacities()
                .iter()
                .enumerate()
                .map(|(e, c)| 1.0 / c + 0.07 * (k as f64) * ((e % 5) as f64))
                .collect();
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine
                .distribute_into(&tm, SplitRule::Exponential(&v), &mut flows)
                .unwrap();
            let dags: Vec<ShortestPathDag> = dests
                .iter()
                .map(|&t| ShortestPathDag::build(g, &w, t, 0.0).unwrap())
                .collect();
            let fresh = traffic_distribution(g, &dags, &tm, SplitRule::Exponential(&v)).unwrap();
            prop_assert_eq!(flows.aggregate(), fresh.aggregate());
        }
    }
}
