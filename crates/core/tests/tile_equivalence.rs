//! Property tests: the destination-tiled routing paths are
//! **bit-identical** to the untiled ones for every tile size.
//!
//! The tiled engine ([`RoutingEngine::distribute_tiled`] /
//! [`RoutingEngine::for_each_dag_tile`]) shrinks the DAG and split-table
//! arenas from O(dests·edges) to O(tile·edges), but the determinism
//! contract says results never move: each destination's flows are folded
//! into the global aggregate destination by destination in ascending
//! order — the exact operation sequence of the untiled batch. These tests
//! pin that contract for random instances across adversarial tile sizes
//! (1, a non-divisor, the whole set, and past the end), at the engine
//! layer and through the full SPEF pipeline ([`TeWorkspace::set_tile_size`])
//! for both the Frank–Wolfe and Algorithm 1 solvers.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use spef_core::{
    ConvergenceCriteria, DualDecompConfig, FibSet, ForwardingTable, FrankWolfeConfig, NemConfig,
    Objective, RoutingEngine, SpefConfig, SplitRule, TeInstance, TeSolver, TeSolverKind,
    TeWorkspace,
};
use spef_graph::NodeId;
use spef_topology::{gen, TrafficMatrix};

/// Strategy: a random duplex network, demands, and second weights.
fn random_instance() -> impl Strategy<Value = (spef_topology::Network, TrafficMatrix, Vec<f64>)> {
    (4usize..10, 0u64..5000, 2usize..6, 0u64..97).prop_map(|(n, seed, pairs, vseed)| {
        let links = 2 * (n - 1) + 2 * (n / 2);
        let net = gen::random_network("tileprop", n, links, seed);
        let mut tm = TrafficMatrix::new(n);
        for k in 0..pairs {
            let s = (seed as usize + k * 3) % n;
            let t = (seed as usize + k * 5 + 1) % n;
            if s != t {
                tm.set(NodeId::new(s), NodeId::new(t), 0.2 + (k as f64) * 0.13);
            }
        }
        if tm.pair_count() == 0 {
            tm.set(NodeId::new(0), NodeId::new(1), 0.3);
        }
        let tm = tm.scaled_to_network_load(&net, 0.03);
        let v: Vec<f64> = (0..net.link_count())
            .map(|e| ((e as u64 * 13 + vseed) % 7) as f64 * 0.29)
            .collect();
        (net, tm, v)
    })
}

/// The tile sizes every instance is checked under: degenerate, a
/// non-divisor of most destination counts, exactly the whole set, and
/// past the end (one oversized chunk).
fn tile_sizes(dests: usize) -> [usize; 4] {
    [1, 3, dests, dests + 7]
}

/// Bitwise slice equality for flow vectors (plain `==` would equate
/// `-0.0` and `0.0` and hide a changed operation order).
fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Asserts two forwarding tables agree cell for cell, bit for bit.
fn assert_tables_identical(
    a: &ForwardingTable,
    b: &ForwardingTable,
    n: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.destinations(), b.destinations());
    prop_assert_eq!(a.entry_count(), b.entry_count());
    for &dest in a.destinations() {
        for u in 0..n {
            let node = NodeId::new(u);
            let ra: Vec<(u32, u64)> = a
                .next_hops(node, dest)
                .unwrap_or(&[])
                .iter()
                .map(|&(e, p)| (e.index() as u32, p.to_bits()))
                .collect();
            let rb: Vec<(u32, u64)> = b
                .next_hops(node, dest)
                .unwrap_or(&[])
                .iter()
                .map(|&(e, p)| (e.index() as u32, p.to_bits()))
                .collect();
            prop_assert_eq!(ra, rb, "node {} dest {:?}", u, dest);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `distribute_tiled` (both column modes) and the tile-streamed FIB
    /// reproduce the untiled `build_dags` + `distribute_into` +
    /// `build_split_tables` results bit for bit, for every tile size.
    #[test]
    fn engine_tiled_paths_match_untiled((net, tm, v) in random_instance()) {
        let g = net.graph();
        let n = g.node_count();
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let rule = SplitRule::Exponential(&v);

        // Untiled reference: dense DAG set, dense flows, dense FIB.
        let mut engine = RoutingEngine::new(g);
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut dense = engine.distribute_fresh();
        engine.distribute_into(&tm, rule, &mut dense).unwrap();
        let tables = engine.build_split_tables(rule).unwrap();
        let dense_fib = ForwardingTable::from_split_table_set(n, &dests, tables);

        for tile in tile_sizes(dests.len()) {
            // Columns kept (the Frank–Wolfe mode).
            let mut out = engine.distribute_fresh();
            let mut streamed = FibSet::new();
            streamed.begin(n);
            engine
                .distribute_tiled(&w, &dests, 0.0, &tm, rule, tile, true, &mut out,
                    |_, chunk, _, tile_tables| {
                        for (i, &dest) in chunk.iter().enumerate() {
                            let table = tile_tables.table(i);
                            streamed.push_destination(dest, |u| table.next_hops(NodeId::new(u)));
                        }
                        Ok(())
                    })
                .unwrap();
            prop_assert_eq!(bits(out.aggregate()), bits(dense.aggregate()), "tile {}", tile);
            for &t in dests.iter() {
                prop_assert_eq!(
                    bits(out.for_destination(t).unwrap()),
                    bits(dense.for_destination(t).unwrap()),
                    "tile {} dest {:?}", tile, t
                );
            }
            assert_tables_identical(&ForwardingTable::from(streamed), &dense_fib, n)?;

            // Aggregate-only (the Algorithm 1 / NEM mode): same aggregate,
            // no columns materialised.
            let mut agg = engine.distribute_fresh();
            engine
                .distribute_tiled(&w, &dests, 0.0, &tm, rule, tile, false, &mut agg,
                    |_, _, _, _| Ok(()))
                .unwrap();
            prop_assert_eq!(bits(agg.aggregate()), bits(dense.aggregate()), "tile {}", tile);
            prop_assert!(agg.for_destination(dests[0]).is_none());

            // Build-only tiling visits every destination's DAG in order.
            let mut visited = Vec::new();
            engine
                .for_each_dag_tile(&w, &dests, 0.0, tile, |_, chunk, set| {
                    prop_assert_eq!(set.destinations(), chunk);
                    visited.extend_from_slice(chunk);
                    Ok(())
                })
                .unwrap();
            prop_assert_eq!(&visited, &dests);
        }

        // The tiled calls never clobbered the untiled DAG fingerprint:
        // re-running the dense pair skips SPF and reproduces the flows.
        let builds = engine.spf_builds();
        engine.build_dags(&w, &dests, 0.0).unwrap();
        prop_assert_eq!(engine.spf_builds(), builds);
        let mut again = engine.distribute_fresh();
        engine.distribute_into(&tm, rule, &mut again).unwrap();
        prop_assert_eq!(bits(again.aggregate()), bits(dense.aggregate()));
    }

    /// The full SPEF pipeline under [`TeWorkspace::set_tile_size`] is a
    /// pure function of the instance — identical weights, flows, FIB and
    /// metrics for every tile size, for both TE solvers.
    #[test]
    fn solver_pipeline_tiled_matches_dense((net, tm, _v) in random_instance()) {
        let obj = Objective::proportional(net.link_count());
        let nem = NemConfig {
            convergence: ConvergenceCriteria::pinned(20),
            ..NemConfig::default()
        };
        let configs = [
            SpefConfig {
                solver: TeSolverKind::FrankWolfe(FrankWolfeConfig {
                    convergence: ConvergenceCriteria::pinned(8),
                    ..FrankWolfeConfig::default()
                }),
                nem: nem.clone(),
                ..SpefConfig::default()
            },
            SpefConfig {
                solver: TeSolverKind::DualDecomposition(DualDecompConfig {
                    convergence: ConvergenceCriteria::pinned(15),
                    record_trace: false,
                    ..DualDecompConfig::default()
                }),
                nem,
                ..SpefConfig::default()
            },
        ];
        for config in &configs {
            let mut dense_ws = TeWorkspace::new();
            let dense = config
                .solve_in(TeInstance::new(&net, &tm, &obj), &mut dense_ws)
                .unwrap();
            for tile in tile_sizes(tm.destinations().len()) {
                let mut ws = TeWorkspace::new();
                ws.set_tile_size(Some(tile));
                let tiled = config
                    .solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
                    .unwrap();
                prop_assert_eq!(
                    bits(tiled.first_weights()), bits(dense.first_weights()), "tile {}", tile
                );
                prop_assert_eq!(
                    bits(tiled.second_weights()), bits(dense.second_weights()), "tile {}", tile
                );
                prop_assert_eq!(
                    bits(tiled.flows().aggregate()), bits(dense.flows().aggregate()),
                    "tile {}", tile
                );
                prop_assert_eq!(
                    tiled.max_link_utilization(&net).to_bits(),
                    dense.max_link_utilization(&net).to_bits(),
                    "tile {}", tile
                );
                prop_assert_eq!(tiled.te_solution().iterations, dense.te_solution().iterations);
                prop_assert_eq!(tiled.nem_converged(), dense.nem_converged());
                assert_tables_identical(
                    tiled.forwarding_table(),
                    dense.forwarding_table(),
                    net.node_count(),
                )?;
            }
        }
    }
}
