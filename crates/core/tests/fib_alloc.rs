//! Verifies the flat FIB's allocation contract: lookups and cum-prob
//! selections never touch the heap, and rebuilding a [`FibSet`] from a
//! [`SplitTableSet`] into a warmed workspace is allocation-free — the
//! arenas are refilled, never dropped and re-grown.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use spef_core::{FibSet, RoutingEngine, SplitRule};
use spef_graph::NodeId;
use spef_topology::{standard, TrafficMatrix};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_rebuild_and_lookups_are_allocation_free() {
    // CERNET2-sized split tables through the routing engine.
    let net = standard::cernet2();
    let tm = TrafficMatrix::gravity(&net, 1.0, 3).scaled_to_network_load(&net, 0.15);
    let dests = tm.destinations();
    let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
    let v = vec![0.1; net.link_count()];
    let mut engine = RoutingEngine::new(net.graph());
    engine.build_dags(&w, &dests, 0.0).unwrap();
    engine
        .build_split_tables(SplitRule::Exponential(&v))
        .unwrap();
    let n = net.node_count();

    // Warm the workspace once (this run may allocate the arenas) …
    let mut fib = FibSet::new();
    fib.rebuild_from_split_table_set(n, &dests, engine.split_tables());
    let reference = fib.clone();

    // … then every further same-shape rebuild must refill in place.
    let before = allocations();
    for _ in 0..5 {
        fib.rebuild_from_split_table_set(n, &dests, engine.split_tables());
    }
    assert_eq!(
        allocations() - before,
        0,
        "warm FibSet rebuilds must not allocate"
    );
    assert!(fib == reference, "warm rebuild changed the table");

    // Per-lookup path: slot resolution, row fetch, and cum-prob selection
    // across every cell and a sweep of draws — zero allocations.
    let before = allocations();
    let mut acc = 0usize;
    for (slot, _) in dests.iter().enumerate() {
        for u in 0..n {
            let row = fib.row(slot as u32, NodeId::new(u));
            if row.is_empty() {
                continue;
            }
            acc += row.hops().len();
            for k in 0..16 {
                acc += row.select(k as f64 / 16.0).index();
            }
        }
    }
    assert!(acc > 0, "lookup loop must have exercised real rows");
    assert_eq!(allocations() - before, 0, "FIB lookups must not allocate");

    // The dest-index path is allocation-free too.
    let before = allocations();
    let mut hits = 0usize;
    for u in 0..n {
        if fib.dest_slot(NodeId::new(u)).is_some() {
            hits += 1;
        }
    }
    assert_eq!(hits, dests.len());
    assert_eq!(
        allocations() - before,
        0,
        "dest-slot resolution must not allocate"
    );
}
