//! The solver-session determinism contract: under pinned iteration counts,
//! a warm `solve_in` on a reused [`TeWorkspace`] is bit-identical to a cold
//! `solve` of the same instance — across random topologies, random load
//! perturbations, and every solver behind the [`TeSolver`] trait. And with
//! a gap tolerance instead of pinning, warm starts must never *cost*
//! iterations on a proportional neighbouring load.

use proptest::prelude::*;
use spef_core::{
    ConvergenceCriteria, DualDecompConfig, FrankWolfeConfig, NemConfig, NemInstance, Objective,
    SpefConfig, TeInstance, TeSolver, TeSolverKind, TeWorkspace,
};
use spef_graph::NodeId;
use spef_topology::{gen, standard, TrafficMatrix};

/// Bitwise equality for float slices — the contract is "no drift at all",
/// not "close".
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Strategy: a small random duplex network plus a random demand set scaled
/// to a conservative load (the `properties.rs` generator).
fn random_instance() -> impl Strategy<Value = (spef_topology::Network, TrafficMatrix)> {
    (4usize..10, 0u64..5000, 2usize..6).prop_map(|(n, seed, pairs)| {
        let links = 2 * (n - 1) + 2 * (n / 2);
        let net = gen::random_network("warm", n, links, seed);
        let mut tm = TrafficMatrix::new(n);
        for k in 0..pairs {
            let s = (seed as usize + k * 3) % n;
            let t = (seed as usize + k * 5 + 1) % n;
            if s != t {
                tm.set(NodeId::new(s), NodeId::new(t), 0.2 + (k as f64) * 0.13);
            }
        }
        if tm.pair_count() == 0 {
            tm.set(NodeId::new(0), NodeId::new(1), 0.3);
        }
        let tm = tm.scaled_to_network_load(&net, 0.03);
        (net, tm)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Frank–Wolfe, pinned: interleaved warm re-solves across a load
    /// perturbation reproduce the cold solutions bit for bit.
    #[test]
    fn pinned_frank_wolfe_warm_equals_cold(
        (net, tm) in random_instance(),
        scale in 1.05f64..1.6,
    ) {
        let obj = Objective::proportional(net.link_count());
        let fw = FrankWolfeConfig {
            convergence: ConvergenceCriteria::pinned(40),
            ..FrankWolfeConfig::default()
        };
        let tm_hi = tm.scaled(scale);
        let cold_lo = fw.solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        let cold_hi = fw.solve(TeInstance::new(&net, &tm_hi, &obj)).unwrap();

        let mut ws = TeWorkspace::new();
        for (demand, cold) in [(&tm, &cold_lo), (&tm_hi, &cold_hi), (&tm, &cold_lo)] {
            let warm = fw.solve_in(TeInstance::new(&net, demand, &obj), &mut ws).unwrap();
            prop_assert!(bits_eq(&warm.weights, &cold.weights));
            prop_assert!(bits_eq(warm.flows.aggregate(), cold.flows.aggregate()));
            prop_assert_eq!(warm.utility.to_bits(), cold.utility.to_bits());
            prop_assert_eq!(warm.iterations, cold.iterations);
        }
    }

    /// Dual decomposition, pinned: same contract, multiplier state in the
    /// workspace must not leak into results.
    #[test]
    fn pinned_dual_decomp_warm_equals_cold(
        (net, tm) in random_instance(),
        scale in 1.05f64..1.6,
    ) {
        let obj = Objective::proportional(net.link_count());
        let dd = DualDecompConfig {
            convergence: ConvergenceCriteria::pinned(60),
            record_trace: false,
            ..DualDecompConfig::default()
        };
        let tm_hi = tm.scaled(scale);
        let cold_lo = dd.solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        let cold_hi = dd.solve(TeInstance::new(&net, &tm_hi, &obj)).unwrap();

        let mut ws = TeWorkspace::new();
        for (demand, cold) in [(&tm, &cold_lo), (&tm_hi, &cold_hi), (&tm, &cold_lo)] {
            let warm = dd.solve_in(TeInstance::new(&net, demand, &obj), &mut ws).unwrap();
            prop_assert!(bits_eq(&warm.weights, &cold.weights));
            prop_assert!(bits_eq(&warm.average_flows, &cold.average_flows));
            prop_assert_eq!(warm.iterations, cold.iterations);
        }
    }

    /// The full SPEF pipeline, pinned at both stages: warm re-builds on one
    /// workspace reproduce first weights, second weights, and realised
    /// flows bit for bit across a load perturbation.
    #[test]
    fn pinned_pipeline_warm_equals_cold(
        (net, tm) in random_instance(),
        scale in 1.05f64..1.5,
    ) {
        let obj = Objective::proportional(net.link_count());
        let cfg = SpefConfig {
            solver: TeSolverKind::FrankWolfe(FrankWolfeConfig {
                convergence: ConvergenceCriteria::pinned(40),
                ..FrankWolfeConfig::default()
            }),
            nem: NemConfig {
                convergence: ConvergenceCriteria::pinned(120),
                ..NemConfig::default()
            },
            ..SpefConfig::default()
        };
        let tm_hi = tm.scaled(scale);
        let cold_lo = cfg.solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        let cold_hi = cfg.solve(TeInstance::new(&net, &tm_hi, &obj)).unwrap();

        let mut ws = TeWorkspace::new();
        for (demand, cold) in [(&tm, &cold_lo), (&tm_hi, &cold_hi), (&tm, &cold_lo)] {
            let warm = cfg.solve_in(TeInstance::new(&net, demand, &obj), &mut ws).unwrap();
            prop_assert!(bits_eq(warm.first_weights(), cold.first_weights()));
            prop_assert!(bits_eq(warm.second_weights(), cold.second_weights()));
            prop_assert!(bits_eq(warm.flows().aggregate(), cold.flows().aggregate()));
        }
    }
}

/// NEM, pinned: warm re-solves of second weights on one workspace match
/// cold solves bit for bit (deterministic targets from a pinned FW solve).
#[test]
fn pinned_nem_warm_equals_cold() {
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    let obj = Objective::proportional(net.link_count());
    let te = FrankWolfeConfig::fast()
        .solve(TeInstance::new(&net, &tm, &obj))
        .unwrap();
    let max_w = te.weights.iter().cloned().fold(0.0, f64::max);
    let dags =
        spef_core::build_dags(net.graph(), &te.weights, &tm.destinations(), 1e-3 * max_w).unwrap();
    let nem = NemConfig {
        convergence: ConvergenceCriteria::pinned(200),
        ..NemConfig::default()
    };
    let instance = NemInstance::new(net.graph(), &dags, &tm, te.flows.aggregate());
    let cold = nem.solve(instance).unwrap();
    let mut ws = TeWorkspace::new();
    for _ in 0..3 {
        let warm = nem.solve_in(instance, &mut ws).unwrap();
        assert!(bits_eq(&warm.second_weights, &cold.second_weights));
        assert!(bits_eq(warm.flows.aggregate(), cold.flows.aggregate()));
        assert_eq!(warm.iterations, cold.iterations);
    }
}

/// With a gap tolerance (the sweep setting), a warm start from a
/// proportional neighbouring load converges in no more iterations than the
/// cold solve — and strictly fewer on the canonical Abilene pair.
#[test]
fn warm_start_saves_iterations_on_neighbouring_loads() {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, 1);
    let tm_lo = shape.scaled_to_network_load(&net, 0.12);
    let tm_hi = shape.scaled_to_network_load(&net, 0.13);
    let obj = Objective::proportional(net.link_count());
    // A tolerance-bound run (generous cap) so the iteration count reflects
    // convergence, not the budget: both runs stop at a 1e-4 relative gap.
    let fw = FrankWolfeConfig {
        convergence: ConvergenceCriteria::with_tolerance(20_000, 1e-4),
        ..FrankWolfeConfig::default()
    };

    let cold_hi = fw.solve(TeInstance::new(&net, &tm_hi, &obj)).unwrap();
    let mut ws = TeWorkspace::new();
    fw.solve_in(TeInstance::new(&net, &tm_lo, &obj), &mut ws)
        .unwrap();
    let warm_hi = fw
        .solve_in(TeInstance::new(&net, &tm_hi, &obj), &mut ws)
        .unwrap();
    assert!(
        warm_hi.iterations < cold_hi.iterations,
        "warm {} vs cold {} iterations",
        warm_hi.iterations,
        cold_hi.iterations
    );
    // Both runs satisfy the same optimality tolerance: utilities agree to
    // the gap scale even though the trajectories differ.
    assert!(
        (warm_hi.utility - cold_hi.utility).abs() <= 1e-4 * cold_hi.utility.abs().max(1.0),
        "warm utility {} vs cold {}",
        warm_hi.utility,
        cold_hi.utility
    );
}

/// Cold fallback: an objective change, a topology change, or an
/// out-of-proportion demand change invalidates the saved trajectory — the
/// warm path must reproduce the cold solution bit for bit, not reuse it.
#[test]
fn fingerprint_mismatch_falls_back_to_cold() {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, 1);
    let tm = shape.scaled_to_network_load(&net, 0.12);
    let obj_a = Objective::proportional(net.link_count());
    let obj_b = Objective::uniform(2.0, net.link_count());
    let fw = FrankWolfeConfig::fast();

    let mut ws = TeWorkspace::new();
    fw.solve_in(TeInstance::new(&net, &tm, &obj_a), &mut ws)
        .unwrap();

    // Objective change.
    let cold = fw.solve(TeInstance::new(&net, &tm, &obj_b)).unwrap();
    let warm = fw
        .solve_in(TeInstance::new(&net, &tm, &obj_b), &mut ws)
        .unwrap();
    assert!(bits_eq(&warm.weights, &cold.weights));
    assert_eq!(warm.iterations, cold.iterations);

    // Topology change (different network entirely).
    let net2 = standard::cernet2();
    let tm2 = TrafficMatrix::gravity(&net2, 1.0, 5).scaled_to_network_load(&net2, 0.05);
    let obj2 = Objective::proportional(net2.link_count());
    let cold2 = fw.solve(TeInstance::new(&net2, &tm2, &obj2)).unwrap();
    let warm2 = fw
        .solve_in(TeInstance::new(&net2, &tm2, &obj2), &mut ws)
        .unwrap();
    assert!(bits_eq(&warm2.weights, &cold2.weights));
    assert_eq!(warm2.iterations, cold2.iterations);

    // Non-proportional demand change on the original network.
    let mut skewed = shape.scaled_to_network_load(&net, 0.12);
    let (s, t, d) = skewed.pairs().next().unwrap();
    skewed.set(s, t, d + 0.01);
    let cold3 = fw.solve(TeInstance::new(&net, &skewed, &obj_a)).unwrap();
    let warm3 = fw
        .solve_in(TeInstance::new(&net, &skewed, &obj_a), &mut ws)
        .unwrap();
    assert!(bits_eq(&warm3.weights, &cold3.weights));
    assert_eq!(warm3.iterations, cold3.iterations);
}

/// The remove-one-link warm start: on an Abilene failure chain (intact
/// solve, then every single-circuit degraded topology), projecting the
/// intact optimum onto the surviving edges must save Frank–Wolfe
/// iterations versus cold solves — strictly on at least one circuit and
/// in total — while converging to the same tolerance, with per-
/// destination conservation intact on every degraded solution.
#[test]
fn removal_warm_start_saves_iterations_on_failure_chain() {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, 1);
    let tm = shape.scaled_to_network_load(&net, 0.12);
    let fw = FrankWolfeConfig {
        convergence: ConvergenceCriteria::with_tolerance(20_000, 1e-4),
        ..FrankWolfeConfig::default()
    };

    let mut ws = TeWorkspace::new();
    let obj = Objective::proportional(net.link_count());
    fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
        .unwrap();

    let (mut warm_total, mut cold_total, mut strict_wins, mut circuits_solved) = (0, 0, 0, 0);
    for circuit in net.duplex_circuits() {
        let Ok((degraded, _kept)) = net.without_links(&circuit) else {
            continue; // bridge circuit: removal disconnects Abilene
        };
        let obj_d = Objective::proportional(degraded.link_count());
        let cold = match fw.solve(TeInstance::new(&degraded, &tm, &obj_d)) {
            Ok(sol) => sol,
            Err(spef_core::SpefError::Infeasible) => {
                // Some circuits leave no slack at this load; the warmed
                // session must reach the same verdict (and keep its base
                // snapshot for the remaining circuits).
                let warm = fw.solve_in(TeInstance::new(&degraded, &tm, &obj_d), &mut ws);
                assert!(
                    matches!(warm, Err(spef_core::SpefError::Infeasible)),
                    "circuit {circuit:?}: cold infeasible but warm {warm:?}"
                );
                continue;
            }
            Err(e) => panic!("circuit {circuit:?}: {e}"),
        };
        let warm = fw
            .solve_in(TeInstance::new(&degraded, &tm, &obj_d), &mut ws)
            .unwrap();
        assert!(
            (warm.utility - cold.utility).abs() <= 1e-3 * cold.utility.abs().max(1.0),
            "circuit {circuit:?}: warm utility {} vs cold {}",
            warm.utility,
            cold.utility
        );
        // A removal-projected start must still be conservation-feasible,
        // and Frank–Wolfe preserves feasibility, so the warm solution
        // must satisfy per-destination conservation on the degraded net.
        for &t in warm.flows.destinations() {
            let f = warm.flows.for_destination(t).unwrap();
            let div = degraded.graph().divergence(f);
            let demands = tm.demands_to(t);
            for node in degraded.graph().nodes() {
                if node != t {
                    assert!(
                        (div[node.index()] - demands[node.index()]).abs() < 1e-6,
                        "circuit {circuit:?}: conservation at {node} for dest {t}"
                    );
                }
            }
        }
        warm_total += warm.iterations;
        cold_total += cold.iterations;
        strict_wins += usize::from(warm.iterations < cold.iterations);
        circuits_solved += 1;
    }
    assert!(
        circuits_solved >= 3,
        "only {circuits_solved} circuits solvable"
    );
    assert!(
        strict_wins >= 1,
        "no circuit solved in fewer warm iterations"
    );
    assert!(
        warm_total < cold_total,
        "warm chain {warm_total} vs cold chain {cold_total} iterations"
    );
}

/// Chained failures restart from the session *base*: after a degraded
/// solve, the saved solution describes the degraded topology — a different
/// circuit's topology is not its edge subset, so the second degraded solve
/// must project from the intact base snapshot (and still save iterations).
#[test]
fn removal_warm_start_falls_back_to_base_across_circuits() {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, 1);
    let tm = shape.scaled_to_network_load(&net, 0.12);
    let fw = FrankWolfeConfig {
        convergence: ConvergenceCriteria::with_tolerance(20_000, 1e-4),
        ..FrankWolfeConfig::default()
    };
    let circuits: Vec<_> = net
        .duplex_circuits()
        .into_iter()
        .filter(|c| net.without_links(c).is_ok())
        .take(2)
        .collect();
    assert_eq!(circuits.len(), 2);

    let mut ws = TeWorkspace::new();
    let obj = Objective::proportional(net.link_count());
    fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
        .unwrap();
    for circuit in &circuits {
        let (degraded, _) = net.without_links(circuit).unwrap();
        let obj_d = Objective::proportional(degraded.link_count());
        let cold = fw.solve(TeInstance::new(&degraded, &tm, &obj_d)).unwrap();
        let warm = fw
            .solve_in(TeInstance::new(&degraded, &tm, &obj_d), &mut ws)
            .unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "circuit {circuit:?}: warm {} vs cold {} iterations",
            warm.iterations,
            cold.iterations
        );
    }
}

/// Pinned mode ignores the removal warm start exactly as it ignores the
/// proportional one: a degraded-topology solve on a workspace holding the
/// intact solution is bit-identical to the cold solve.
#[test]
fn pinned_mode_ignores_removal_warm_start() {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, 1);
    let tm = shape.scaled_to_network_load(&net, 0.12);
    let fw = FrankWolfeConfig {
        convergence: ConvergenceCriteria::pinned(60),
        ..FrankWolfeConfig::default()
    };
    let circuit = net
        .duplex_circuits()
        .into_iter()
        .find(|c| net.without_links(c).is_ok())
        .unwrap();
    let (degraded, _) = net.without_links(&circuit).unwrap();

    let obj = Objective::proportional(net.link_count());
    let obj_d = Objective::proportional(degraded.link_count());
    let cold = fw.solve(TeInstance::new(&degraded, &tm, &obj_d)).unwrap();
    let mut ws = TeWorkspace::new();
    fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
        .unwrap();
    let pinned = fw
        .solve_in(TeInstance::new(&degraded, &tm, &obj_d), &mut ws)
        .unwrap();
    assert!(bits_eq(&pinned.weights, &cold.weights));
    assert!(bits_eq(pinned.flows.aggregate(), cold.flows.aggregate()));
    assert_eq!(pinned.iterations, cold.iterations);
}

/// The removal path only accepts genuine edge-subset instances: a degraded
/// topology with a perturbed capacity is *not* a subsequence of the saved
/// fingerprint, so the solve must run the cold trajectory bit for bit.
#[test]
fn removal_warm_start_rejects_non_subset_topologies() {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, 1);
    let tm = shape.scaled_to_network_load(&net, 0.12);
    let fw = FrankWolfeConfig::fast();
    let circuit = net
        .duplex_circuits()
        .into_iter()
        .find(|c| net.without_links(c).is_ok())
        .unwrap();
    let (degraded, _) = net.without_links(&circuit).unwrap();
    // Rebuild the degraded network with one capacity nudged: same edges,
    // same endpoints, but no longer bitwise-identical to the fingerprint.
    let mut b = spef_topology::Network::builder("perturbed");
    for node in degraded.graph().nodes() {
        b.add_node(degraded.node_name(node), degraded.coord(node));
    }
    for (e, u, v) in degraded.graph().edges() {
        let cap = degraded.capacity(e);
        b.add_link(u, v, if e.index() == 0 { cap * 1.001 } else { cap });
    }
    let perturbed = b.build().unwrap();

    let obj = Objective::proportional(net.link_count());
    let obj_p = Objective::proportional(perturbed.link_count());
    let cold = fw.solve(TeInstance::new(&perturbed, &tm, &obj_p)).unwrap();
    let mut ws = TeWorkspace::new();
    fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
        .unwrap();
    let warm = fw
        .solve_in(TeInstance::new(&perturbed, &tm, &obj_p), &mut ws)
        .unwrap();
    assert!(bits_eq(&warm.weights, &cold.weights));
    assert_eq!(warm.iterations, cold.iterations);
}

/// `clear_solutions` drops the base snapshot too: after clearing, a
/// degraded-topology solve runs the cold trajectory even though the
/// workspace previously held the intact optimum.
#[test]
fn clear_solutions_drops_the_removal_base() {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, 1);
    let tm = shape.scaled_to_network_load(&net, 0.12);
    let fw = FrankWolfeConfig::fast();
    let circuit = net
        .duplex_circuits()
        .into_iter()
        .find(|c| net.without_links(c).is_ok())
        .unwrap();
    let (degraded, _) = net.without_links(&circuit).unwrap();

    let obj = Objective::proportional(net.link_count());
    let obj_d = Objective::proportional(degraded.link_count());
    let cold = fw.solve(TeInstance::new(&degraded, &tm, &obj_d)).unwrap();
    let mut ws = TeWorkspace::new();
    fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)
        .unwrap();
    ws.clear_solutions();
    let cleared = fw
        .solve_in(TeInstance::new(&degraded, &tm, &obj_d), &mut ws)
        .unwrap();
    assert!(bits_eq(&cleared.weights, &cold.weights));
    assert_eq!(cleared.iterations, cold.iterations);
}

/// `clear_solutions` restores the cold contract without dropping arenas:
/// a cleared workspace reproduces the cold trajectory exactly even with a
/// valid neighbouring solution previously recorded.
#[test]
fn clear_solutions_restores_cold_trajectories() {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, 1);
    let tm_lo = shape.scaled_to_network_load(&net, 0.12);
    let tm_hi = shape.scaled_to_network_load(&net, 0.13);
    let obj = Objective::proportional(net.link_count());
    let fw = FrankWolfeConfig::fast();

    let cold_hi = fw.solve(TeInstance::new(&net, &tm_hi, &obj)).unwrap();
    let mut ws = TeWorkspace::new();
    fw.solve_in(TeInstance::new(&net, &tm_lo, &obj), &mut ws)
        .unwrap();
    ws.clear_solutions();
    let cleared = fw
        .solve_in(TeInstance::new(&net, &tm_hi, &obj), &mut ws)
        .unwrap();
    assert!(bits_eq(&cleared.weights, &cold_hi.weights));
    assert!(bits_eq(
        cleared.flows.aggregate(),
        cold_hi.flows.aggregate()
    ));
    assert_eq!(cleared.iterations, cold_hi.iterations);
}
