//! Steady-state allocation contract of warm solver sessions: once a
//! [`TeWorkspace`] has been warmed on an instance shape, a re-solve
//! allocates only the returned solution's own vectors — a count fixed by
//! the topology, independent of the iteration budget. If any per-iteration
//! buffer (descent direction, DAG arena, line-search scratch, warm-start
//! rescale) allocated, a 16×-larger budget would allocate more.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use spef_core::{
    ConvergenceCriteria, FrankWolfeConfig, Objective, TeInstance, TeSolver, TeWorkspace,
};
use spef_topology::{standard, TrafficMatrix};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations of one more pinned solve on an already-warmed workspace.
fn warmed_solve_allocs(budget: usize, ws: &mut TeWorkspace) -> u64 {
    let net = standard::abilene();
    let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, 0.12);
    let obj = Objective::proportional(net.link_count());
    let fw = FrankWolfeConfig {
        convergence: ConvergenceCriteria::pinned(budget),
        ..FrankWolfeConfig::default()
    };
    fw.solve_in(TeInstance::new(&net, &tm, &obj), ws)
        .expect("feasible");
    let before = allocations();
    let sol = fw
        .solve_in(TeInstance::new(&net, &tm, &obj), ws)
        .expect("feasible");
    let after = allocations();
    drop(sol);
    after - before
}

#[test]
fn warm_resolves_allocate_constant_independent_of_budget() {
    let mut ws = TeWorkspace::new();
    let short = warmed_solve_allocs(8, &mut ws);
    let long = warmed_solve_allocs(128, &mut ws);
    assert_eq!(
        short, long,
        "allocation count grew with iteration budget: {short} -> {long}"
    );

    // The warm-start path (gap tolerance, restart from the recorded
    // neighbour solution) has the same contract: its rescale works in the
    // session's preallocated buffers.
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, 1);
    let tm_lo = shape.scaled_to_network_load(&net, 0.12);
    let tm_hi = shape.scaled_to_network_load(&net, 0.13);
    let obj = Objective::proportional(net.link_count());
    let fw = FrankWolfeConfig::fast();
    // Warm both load points so further alternation is steady-state.
    for tm in [&tm_lo, &tm_hi, &tm_lo] {
        fw.solve_in(TeInstance::new(&net, tm, &obj), &mut ws)
            .expect("feasible");
    }
    let before = allocations();
    let sol = fw
        .solve_in(TeInstance::new(&net, &tm_hi, &obj), &mut ws)
        .expect("feasible");
    let after = allocations();
    drop(sol);
    let warm = after - before;
    assert!(
        warm <= short,
        "warm-start re-solve allocated {warm}, pinned steady state {short}"
    );
}
