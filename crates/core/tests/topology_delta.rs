//! The topology-delta determinism contract: a persistent engine whose
//! links are failed and restored **in place** (CSR masking + dirty-slot
//! DAG patches) produces distances and flows **bit-identical** to a cold
//! dense engine built on the explicitly degraded topology
//! (`Network::without_links`) at every step — through random
//! fail/restore scripts, interleaved weight deltas, tiled detours, and a
//! full restore back to the intact network.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use spef_core::{RoutingEngine, SplitRule};
use spef_graph::{EdgeId, NodeId};
use spef_topology::{gen, Network, TrafficMatrix};

/// Bitwise equality for float slices — the contract is "no drift at all",
/// not "close".
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Strategy: a small random duplex network, a demand set, and a toggle
/// script — per step, a circuit selector plus one to three `(edge,
/// weight)` overwrites for the interleaved-delta test.
#[allow(clippy::type_complexity)]
fn random_instance(
) -> impl Strategy<Value = (Network, TrafficMatrix, Vec<(usize, Vec<(usize, u8)>)>)> {
    let step = (0usize..1 << 20, pvec((0usize..1 << 20, 1u8..40), 1..4));
    (4usize..10, 0u64..5000, 2usize..6, pvec(step, 3..8)).prop_map(|(n, seed, pairs, script)| {
        let links = 2 * (n - 1) + 2 * (n / 2);
        let net = gen::random_network("delta", n, links, seed);
        let mut tm = TrafficMatrix::new(n);
        for k in 0..pairs {
            let s = (seed as usize + k * 3) % n;
            let t = (seed as usize + k * 5 + 1) % n;
            if s != t {
                tm.set(NodeId::new(s), NodeId::new(t), 0.2 + (k as f64) * 0.13);
            }
        }
        if tm.pair_count() == 0 {
            tm.set(NodeId::new(0), NodeId::new(1), 0.3);
        }
        let tm = tm.scaled_to_network_load(&net, 0.03);
        (net, tm, script)
    })
}

/// The union of all edges in currently-failed circuits.
fn failed_union(circuits: &[Vec<EdgeId>], masked: &[bool]) -> Vec<EdgeId> {
    circuits
        .iter()
        .zip(masked)
        .filter(|&(_, &down)| down)
        .flat_map(|(c, _)| c.iter().copied())
        .collect()
}

/// Toggles `circuit` on the engine: fails it when up, restores it when
/// down. A fail that would disconnect the network (a bridge circuit — the
/// masked engine has no connectivity oracle, but every consumer checks
/// `without_links` first and skips) is left untouched. Returns whether
/// the toggle was applied.
fn toggle_circuit(
    engine: &mut RoutingEngine<'_>,
    net: &Network,
    circuits: &[Vec<EdgeId>],
    masked: &mut [bool],
    idx: usize,
) -> bool {
    let c = idx % circuits.len();
    if masked[c] {
        engine.restore_links(&circuits[c]).unwrap();
        masked[c] = false;
        return true;
    }
    masked[c] = true;
    if net.without_links(&failed_union(circuits, masked)).is_err() {
        masked[c] = false;
        return false;
    }
    engine.fail_links(&circuits[c]).unwrap();
    true
}

/// Asserts the masked engine's step output equals a cold dense engine
/// built on the explicitly degraded topology, bit for bit: distances per
/// destination DAG, flows per destination and in aggregate (remapped
/// through the surviving-edge ids), and exact zero flow on every failed
/// link.
#[allow(clippy::too_many_arguments)]
fn assert_matches_degraded(
    engine: &RoutingEngine<'_>,
    flows: &spef_core::Flows,
    net: &Network,
    tm: &TrafficMatrix,
    dests: &[NodeId],
    w: &[f64],
    tol: f64,
    failed: &[EdgeId],
) -> Result<(), TestCaseError> {
    let (degraded, kept) = net.without_links(failed).unwrap();
    let dw: Vec<f64> = kept.iter().map(|&e| w[e.index()]).collect();
    let mut cold = RoutingEngine::new(degraded.graph());
    cold.set_incremental(false);
    cold.build_dags(&dw, dests, tol).unwrap();
    let mut cold_flows = cold.distribute_fresh();
    cold.distribute_into(tm, SplitRule::EvenEcmp, &mut cold_flows)
        .unwrap();

    for i in 0..dests.len() {
        prop_assert!(bits_eq(
            engine.dag_set().dag(i).distances(),
            cold.dag_set().dag(i).distances()
        ));
    }
    let remap = |full: &[f64]| -> Vec<f64> { kept.iter().map(|&e| full[e.index()]).collect() };
    prop_assert!(bits_eq(&remap(flows.aggregate()), cold_flows.aggregate()));
    for &t in dests {
        prop_assert!(bits_eq(
            &remap(flows.for_destination(t).unwrap()),
            cold_flows.for_destination(t).unwrap()
        ));
    }
    for &e in failed {
        prop_assert_eq!(flows.aggregate()[e.index()].to_bits(), 0.0f64.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A persistent engine walked through a random fail/restore script
    /// (constant weights — the failure-probe shape) matches a cold dense
    /// engine on the explicitly degraded topology at every step.
    #[test]
    fn fail_restore_scripts_match_cold_dense_on_degraded(
        (net, tm, script) in random_instance()
    ) {
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let circuits = net.duplex_circuits();
        let mut masked = vec![false; circuits.len()];
        let mut engine = RoutingEngine::new(net.graph());
        let mut flows = engine.distribute_fresh();
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();

        for &(sel, _) in &script {
            if !toggle_circuit(&mut engine, &net, &circuits, &mut masked, sel) {
                continue;
            }
            let failed = failed_union(&circuits, &masked);
            prop_assert_eq!(engine.masked_links(), failed.len());
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
            assert_matches_degraded(
                &engine, &flows, &net, &tm, &dests, &w, 0.0, &failed,
            )?;
        }
        let stats = engine.spf_stats();
        prop_assert!(stats.builds > 0);
        prop_assert!(stats.builds >= stats.incremental_builds);
    }

    /// Restoring every failed circuit lands the engine back on the intact
    /// network **exactly**: the mask gauge reads zero and distances and
    /// flows are bit-identical to an engine that was never masked.
    #[test]
    fn restore_all_matches_never_masked((net, tm, script) in random_instance()) {
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let circuits = net.duplex_circuits();
        let mut masked = vec![false; circuits.len()];
        let mut engine = RoutingEngine::new(net.graph());
        let mut flows = engine.distribute_fresh();
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();

        for &(sel, _) in &script {
            if toggle_circuit(&mut engine, &net, &circuits, &mut masked, sel) {
                // Build between toggles so restores patch live DAGs
                // rather than collapsing into a single no-op round trip.
                engine.build_dags(&w, &dests, 0.0).unwrap();
            }
        }
        for (c, down) in masked.iter_mut().enumerate() {
            if *down {
                engine.restore_links(&circuits[c]).unwrap();
                *down = false;
            }
        }
        prop_assert_eq!(engine.masked_links(), 0);
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();

        let mut pristine = RoutingEngine::new(net.graph());
        pristine.set_incremental(false);
        pristine.build_dags(&w, &dests, 0.0).unwrap();
        let mut pflows = pristine.distribute_fresh();
        pristine.distribute_into(&tm, SplitRule::EvenEcmp, &mut pflows).unwrap();
        prop_assert!(bits_eq(flows.aggregate(), pflows.aggregate()));
        for i in 0..dests.len() {
            prop_assert!(bits_eq(
                engine.dag_set().dag(i).distances(),
                pristine.dag_set().dag(i).distances()
            ));
        }
    }

    /// Weight deltas interleaved with topology toggles — the weight-search
    /// shape running on a degraded view — still match the cold dense
    /// engine on the degraded topology at every step.
    #[test]
    fn interleaved_weight_and_topology_deltas_match(
        (net, tm, script) in random_instance()
    ) {
        let m = net.link_count();
        let dests = tm.destinations();
        let mut w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let circuits = net.duplex_circuits();
        let mut masked = vec![false; circuits.len()];
        let mut engine = RoutingEngine::new(net.graph());
        let mut flows = engine.distribute_fresh();
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();

        for (k, (sel, deltas)) in script.iter().enumerate() {
            // Alternate toggle-then-retune with retune-only steps so
            // weight deltas hit both freshly-patched and settled masks.
            if k % 2 == 0 {
                toggle_circuit(&mut engine, &net, &circuits, &mut masked, *sel);
            }
            for &(raw_e, raw_w) in deltas {
                w[raw_e % m] = raw_w as f64 * 0.25;
            }
            let failed = failed_union(&circuits, &masked);
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
            assert_matches_degraded(
                &engine, &flows, &net, &tm, &dests, &w, 0.0, &failed,
            )?;
        }
    }

    /// The destination-tiled path reads the same masked CSR: with circuits
    /// failed, a tiled run into a separate buffer equals the untiled
    /// masked flows bit for bit, for every tile size.
    #[test]
    fn tiled_runs_agree_with_masked_engine(
        (net, tm, script) in random_instance(),
        tile in prop_oneof![Just(1usize), Just(3usize)],
    ) {
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let circuits = net.duplex_circuits();
        let mut masked = vec![false; circuits.len()];
        let mut engine = RoutingEngine::new(net.graph());
        let mut flows = engine.distribute_fresh();
        let mut tiled_out = engine.distribute_fresh();
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();

        for &(sel, _) in &script {
            if !toggle_circuit(&mut engine, &net, &circuits, &mut masked, sel) {
                continue;
            }
            engine
                .distribute_tiled(
                    &w, &dests, 0.0, &tm, SplitRule::EvenEcmp, tile, true,
                    &mut tiled_out, |_, _, _, _| Ok(()),
                )
                .unwrap();
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
            prop_assert!(bits_eq(tiled_out.aggregate(), flows.aggregate()));
            assert_matches_degraded(
                &engine, &flows, &net, &tm, &dests, &w, 0.0,
                &failed_union(&circuits, &masked),
            )?;
        }
    }
}
