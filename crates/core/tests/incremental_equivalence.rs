//! The incremental-SPF determinism contract: a persistent engine fed a
//! sequence of weight deltas (single- and multi-edge), demand swaps and
//! interleaved tiled runs produces DAGs and flows **bit-identical** to a
//! cold dense engine rebuilt from scratch at every step — for every tile
//! size, across cold-fallback boundaries (detach/re-attach, `invalidate`,
//! destination and tolerance changes), and through `TeWorkspace`
//! sessions with `clear_solutions` in between.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use spef_core::{
    ConvergenceCriteria, FrankWolfeConfig, Objective, RoutingEngine, SplitRule, TeInstance,
    TeSolver, TeWorkspace,
};
use spef_graph::NodeId;
use spef_topology::{gen, TrafficMatrix};

/// Bitwise equality for float slices — the contract is "no drift at all",
/// not "close".
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Strategy: a small random duplex network, a demand set, and a delta
/// script — per step, one to three `(edge, weight)` overwrites (most
/// steps are single-edge, the weight-search shape).
#[allow(clippy::type_complexity)]
fn random_instance(
) -> impl Strategy<Value = (spef_topology::Network, TrafficMatrix, Vec<Vec<(usize, u8)>>)> {
    let step = pvec((0usize..1 << 20, 1u8..40), 1..4);
    (4usize..10, 0u64..5000, 2usize..6, pvec(step, 3..8)).prop_map(|(n, seed, pairs, script)| {
        let links = 2 * (n - 1) + 2 * (n / 2);
        let net = gen::random_network("incr", n, links, seed);
        let mut tm = TrafficMatrix::new(n);
        for k in 0..pairs {
            let s = (seed as usize + k * 3) % n;
            let t = (seed as usize + k * 5 + 1) % n;
            if s != t {
                tm.set(NodeId::new(s), NodeId::new(t), 0.2 + (k as f64) * 0.13);
            }
        }
        if tm.pair_count() == 0 {
            tm.set(NodeId::new(0), NodeId::new(1), 0.3);
        }
        let tm = tm.scaled_to_network_load(&net, 0.03);
        (net, tm, script)
    })
}

/// One cold dense reference step: fresh engine, incremental off.
fn cold_flows(
    net: &spef_topology::Network,
    tm: &TrafficMatrix,
    dests: &[NodeId],
    w: &[f64],
    tol: f64,
    rule: SplitRule<'_>,
) -> spef_core::Flows {
    let mut engine = RoutingEngine::new(net.graph());
    engine.set_incremental(false);
    engine.build_dags(w, dests, tol).unwrap();
    let mut out = engine.distribute_fresh();
    engine.distribute_into(tm, rule, &mut out).unwrap();
    out
}

/// Asserts `flows` equals the cold dense reference bit for bit, per
/// destination and in aggregate, and that the persistent engine's DAG
/// distances match a cold build's.
#[allow(clippy::too_many_arguments)]
fn assert_step_matches(
    engine: &RoutingEngine<'_>,
    flows: &spef_core::Flows,
    net: &spef_topology::Network,
    tm: &TrafficMatrix,
    dests: &[NodeId],
    w: &[f64],
    tol: f64,
    rule: SplitRule<'_>,
) -> Result<(), TestCaseError> {
    let cold = cold_flows(net, tm, dests, w, tol, rule);
    prop_assert!(bits_eq(flows.aggregate(), cold.aggregate()));
    for &t in dests {
        prop_assert!(bits_eq(
            flows.for_destination(t).unwrap(),
            cold.for_destination(t).unwrap()
        ));
    }
    let mut cold_engine = RoutingEngine::new(net.graph());
    cold_engine.set_incremental(false);
    cold_engine.build_dags(w, dests, tol).unwrap();
    for i in 0..dests.len() {
        prop_assert!(bits_eq(
            engine.dag_set().dag(i).distances(),
            cold_engine.dag_set().dag(i).distances()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A persistent incremental engine walked through a random delta
    /// script matches a cold dense rebuild at every step, under both
    /// split rules and with a mid-script demand swap.
    #[test]
    fn delta_sequences_match_cold_dense((net, tm, script) in random_instance()) {
        let m = net.link_count();
        let dests = tm.destinations();
        let tm_hi = tm.scaled(1.3);
        let v: Vec<f64> = (0..m).map(|e| ((e * 7) % 5) as f64 * 0.31).collect();
        let mut w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();

        for rule in [SplitRule::EvenEcmp, SplitRule::Exponential(&v)] {
            let mut engine = RoutingEngine::new(net.graph());
            let mut flows = engine.distribute_fresh();
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine.distribute_into(&tm, rule, &mut flows).unwrap();
            for (k, step) in script.iter().enumerate() {
                for &(raw_e, raw_w) in step {
                    w[raw_e % m] = raw_w as f64 * 0.25;
                }
                // Alternate the demand matrix so demand-dirty columns are
                // exercised with both clean and dirty DAG slots.
                let demand = if k % 2 == 0 { &tm } else { &tm_hi };
                engine.build_dags(&w, &dests, 0.0).unwrap();
                engine.distribute_into(demand, rule, &mut flows).unwrap();
                assert_step_matches(&engine, &flows, &net, demand, &dests, &w, 0.0, rule)?;
            }
            prop_assert!(engine.spf_stats().builds >= engine.spf_stats().incremental_builds);
        }
    }

    /// Equal-cost tolerance in play: deltas under a coarse tolerance keep
    /// the incremental path bit-identical even when edges drift in and
    /// out of near-tie DAG membership without changing distances.
    #[test]
    fn delta_sequences_match_cold_dense_with_tolerance(
        (net, tm, script) in random_instance(),
        tol in prop_oneof![Just(0.0), Just(1e-9), Just(0.3)],
    ) {
        let m = net.link_count();
        let dests = tm.destinations();
        let mut w = vec![1.0; m];
        let mut engine = RoutingEngine::new(net.graph());
        let mut flows = engine.distribute_fresh();
        engine.build_dags(&w, &dests, tol).unwrap();
        engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
        for step in &script {
            for &(raw_e, raw_w) in step {
                // Steps of ±0.25·k around 1.0 interact with `tol = 0.3`.
                w[raw_e % m] = 1.0 + (raw_w % 5) as f64 * 0.25;
            }
            engine.build_dags(&w, &dests, tol).unwrap();
            engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
            assert_step_matches(
                &engine, &flows, &net, &tm, &dests, &w, tol, SplitRule::EvenEcmp,
            )?;
        }
    }

    /// Interleaved tiled runs (tile sizes 1, 3 and dense) neither corrupt
    /// the incremental state nor change any result: tiled output equals
    /// the untiled output, and the incremental path stays bit-identical
    /// after each tiled detour.
    #[test]
    fn tiled_interleaving_preserves_incremental_state(
        (net, tm, script) in random_instance(),
        tile in prop_oneof![Just(Some(1usize)), Just(Some(3usize)), Just(None::<usize>)],
    ) {
        let m = net.link_count();
        let dests = tm.destinations();
        let mut w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let mut engine = RoutingEngine::new(net.graph());
        let mut flows = engine.distribute_fresh();
        let mut tiled_out = engine.distribute_fresh();
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
        for step in &script {
            for &(raw_e, raw_w) in step {
                w[raw_e % m] = raw_w as f64 * 0.25;
            }
            // Tiled detour into a separate buffer (the untiled buffer's
            // stamp survives and the next incremental call may fire).
            if let Some(t) = tile {
                engine
                    .distribute_tiled(
                        &w, &dests, 0.0, &tm, SplitRule::EvenEcmp, t, true,
                        &mut tiled_out, |_, _, _, _| Ok(()),
                    )
                    .unwrap();
            }
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
            if tile.is_some() {
                prop_assert!(bits_eq(tiled_out.aggregate(), flows.aggregate()));
            }
            assert_step_matches(
                &engine, &flows, &net, &tm, &dests, &w, 0.0, SplitRule::EvenEcmp,
            )?;
        }
    }

    /// Cold-fallback boundaries: `invalidate`, a detach/re-attach round
    /// trip, a foreign-topology detour, and destination-set changes all
    /// land back on bit-identical results.
    #[test]
    fn cold_fallback_boundaries_stay_bit_identical((net, tm, script) in random_instance()) {
        let m = net.link_count();
        let dests = tm.destinations();
        let other = gen::random_network("other", 5, 12, 99);
        let other_w = vec![1.0; other.link_count()];
        let other_dests: Vec<NodeId> = vec![NodeId::new(0)];
        let mut w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let mut engine = RoutingEngine::new(net.graph());
        let mut flows = engine.distribute_fresh();
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
        for (k, step) in script.iter().enumerate() {
            for &(raw_e, raw_w) in step {
                w[raw_e % m] = raw_w as f64 * 0.25;
            }
            match k % 4 {
                // Plain incremental step.
                0 => {}
                // Fingerprint dropped: next build is dense, then the
                // sequence resumes incrementally.
                1 => engine = {
                    let mut s = engine.into_state();
                    s.invalidate();
                    RoutingEngine::with_state(net.graph(), s)
                },
                // Same-topology round trip: caches survive.
                2 => engine = RoutingEngine::with_state(net.graph(), engine.into_state()),
                // Foreign-topology detour: full cold fallback on return.
                _ => {
                    let mut detour =
                        RoutingEngine::with_state(other.graph(), engine.into_state());
                    detour.build_dags(&other_w, &other_dests, 0.0).unwrap();
                    engine = RoutingEngine::with_state(net.graph(), detour.into_state());
                }
            }
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
            assert_step_matches(
                &engine, &flows, &net, &tm, &dests, &w, 0.0, SplitRule::EvenEcmp,
            )?;
        }
        // Destination-set shrink and restore across the same engine.
        if dests.len() > 1 {
            engine.build_dags(&w, &dests[..1], 0.0).unwrap();
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows).unwrap();
            assert_step_matches(
                &engine, &flows, &net, &tm, &dests, &w, 0.0, SplitRule::EvenEcmp,
            )?;
        }
    }

    /// `TeWorkspace` exposure: warm Frank–Wolfe re-solves on an
    /// incremental workspace — with `clear_solutions` and an incremental
    /// toggle between solves — reproduce the cold solve bit for bit.
    #[test]
    fn workspace_sessions_match_cold_across_clear_solutions(
        (net, tm, _script) in random_instance(),
        scale in 1.05f64..1.6,
    ) {
        let obj = Objective::proportional(net.link_count());
        let fw = FrankWolfeConfig {
            convergence: ConvergenceCriteria::pinned(30),
            ..FrankWolfeConfig::default()
        };
        let tm_hi = tm.scaled(scale);
        let cold_lo = fw.solve(TeInstance::new(&net, &tm, &obj)).unwrap();
        let cold_hi = fw.solve(TeInstance::new(&net, &tm_hi, &obj)).unwrap();

        let mut ws = TeWorkspace::new();
        prop_assert!(ws.incremental());
        for (round, (demand, cold)) in [(&tm, &cold_lo), (&tm_hi, &cold_hi), (&tm, &cold_lo)]
            .into_iter()
            .enumerate()
        {
            match round {
                1 => ws.clear_solutions(),
                2 => ws.set_incremental(false),
                _ => {}
            }
            let warm = fw.solve_in(TeInstance::new(&net, demand, &obj), &mut ws).unwrap();
            prop_assert!(bits_eq(&warm.weights, &cold.weights));
            prop_assert!(bits_eq(warm.flows.aggregate(), cold.flows.aggregate()));
            prop_assert_eq!(warm.iterations, cold.iterations);
        }
    }
}
