//! Property tests: the flat CSR [`FibSet`] is **bit-identical** to the
//! legacy nested-`Vec` forwarding table it replaced.
//!
//! The reference implementation carried here is a faithful copy of the
//! pre-flat `ForwardingTable`: `tables[dest][node]` rows behind an
//! `O(dests)` destination scan, and the simulator's per-draw linear
//! accumulation walk (`acc += ratio; if x < acc`) with its trailing
//! `hops.last()` fallback. For every `(node, destination)` cell the flat
//! rows must match entry for entry, and for every uniform draw the
//! `partition_point` selection over precomputed cumulative probabilities
//! must pick the exact edge the linear walk picked — that equality, plus
//! the unchanged RNG stream, is what makes netsim `SimReport`s
//! bit-identical across the representation swap (pinned end-to-end by the
//! committed `BENCH_pre_pr5_nested_fib.json` sweep baseline in CI).

use proptest::prelude::*;
use spef_core::{FibSet, ForwardingTable, RoutingEngine, SplitRule};
use spef_graph::{EdgeId, NodeId};
use spef_topology::{gen, TrafficMatrix};

/// The legacy representation: owned nested rows + linear destination scan.
struct LegacyTable {
    dests: Vec<NodeId>,
    tables: Vec<Vec<Vec<(EdgeId, f64)>>>,
}

impl LegacyTable {
    fn next_hops(&self, node: NodeId, dest: NodeId) -> Option<&[(EdgeId, f64)]> {
        let di = self.dests.iter().position(|&d| d == dest)?;
        self.tables[di].get(node.index()).map(|v| v.as_slice())
    }
}

/// The legacy per-draw selection: linear accumulation with the silent
/// last-entry fallback for draws that float drift pushed past the sum.
fn legacy_select(hops: &[(EdgeId, f64)], x: f64) -> EdgeId {
    let mut acc = 0.0;
    for &(e, p) in hops {
        acc += p;
        if x < acc {
            return e;
        }
    }
    hops.last().expect("non-empty next-hop list").0
}

/// Strategy: a random duplex network, demands, and second weights — the
/// inputs the SPEF pipeline turns into split tables.
fn random_instance() -> impl Strategy<Value = (spef_topology::Network, TrafficMatrix, Vec<f64>)> {
    (4usize..10, 0u64..5000, 2usize..6, 0u64..97).prop_map(|(n, seed, pairs, vseed)| {
        let links = 2 * (n - 1) + 2 * (n / 2);
        let net = gen::random_network("prop", n, links, seed);
        let mut tm = TrafficMatrix::new(n);
        for k in 0..pairs {
            let s = (seed as usize + k * 3) % n;
            let t = (seed as usize + k * 5 + 1) % n;
            if s != t {
                tm.set(NodeId::new(s), NodeId::new(t), 0.2 + (k as f64) * 0.13);
            }
        }
        if tm.pair_count() == 0 {
            tm.set(NodeId::new(0), NodeId::new(1), 0.3);
        }
        let tm = tm.scaled_to_network_load(&net, 0.03);
        let v: Vec<f64> = (0..net.link_count())
            .map(|e| ((e as u64 * 13 + vseed) % 7) as f64 * 0.29)
            .collect();
        (net, tm, v)
    })
}

/// Builds the engine split tables and both representations from them.
fn build_pair(
    net: &spef_topology::Network,
    tm: &TrafficMatrix,
    v: &[f64],
) -> (ForwardingTable, LegacyTable) {
    let g = net.graph();
    let dests = tm.destinations();
    let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
    let mut engine = RoutingEngine::new(g);
    engine.build_dags(&w, &dests, 0.0).unwrap();
    let tables = engine
        .build_split_tables(SplitRule::Exponential(v))
        .unwrap();
    let flat = ForwardingTable::from_split_table_set(g.node_count(), &dests, tables);
    let rows: Vec<Vec<Vec<(EdgeId, f64)>>> = (0..tables.len())
        .map(|i| {
            let t = tables.table(i);
            (0..g.node_count())
                .map(|u| t.next_hops(NodeId::new(u)).to_vec())
                .collect()
        })
        .collect();
    let legacy = LegacyTable {
        dests: dests.clone(),
        tables: rows,
    };
    (flat, legacy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every `(node, dest)` lookup — hit, miss, and empty-row — agrees
    /// with the legacy nested rows entry for entry.
    #[test]
    fn lookups_match_legacy_bit_for_bit((net, tm, v) in random_instance()) {
        let (flat, legacy) = build_pair(&net, &tm, &v);
        let n = net.node_count();
        for d in 0..n {
            let dest = NodeId::new(d);
            for u in 0..n {
                let node = NodeId::new(u);
                prop_assert_eq!(flat.next_hops(node, dest), legacy.next_hops(node, dest));
            }
        }
        // Totals: the O(1) entry count equals the exhaustive legacy walk.
        let legacy_total: usize = legacy
            .tables
            .iter()
            .flat_map(|per_node| per_node.iter().map(Vec::len))
            .sum();
        prop_assert_eq!(flat.entry_count(), legacy_total);
    }

    /// The binary-search selection picks the same edge as the legacy
    /// linear walk for a dense sweep of draws — including draws on and
    /// around every cumulative boundary, where tie-breaking matters.
    #[test]
    fn selection_matches_legacy_walk((net, tm, v) in random_instance()) {
        let (flat, legacy) = build_pair(&net, &tm, &v);
        let set: &FibSet = flat.fib();
        for (slot, &dest) in set.destinations().iter().enumerate() {
            for u in 0..net.node_count() {
                let node = NodeId::new(u);
                let row = set.row(slot as u32, node);
                let hops = legacy.next_hops(node, dest).unwrap();
                prop_assert_eq!(row.hops(), hops);
                if row.is_empty() {
                    continue;
                }
                // Dense sweep over [0, 1).
                for k in 0..64 {
                    let x = k as f64 / 64.0;
                    prop_assert_eq!(row.select(x), legacy_select(hops, x), "x = {}", x);
                }
                // Adversarial draws at the exact float boundaries: the
                // running sums themselves (a tie goes right in both
                // implementations) and one ulp either side.
                let mut acc = 0.0f64;
                for &(_, p) in hops {
                    acc += p;
                    for x in [acc.next_down(), acc, acc.next_up(), 1.0f64.next_down()] {
                        if (0.0..1.0).contains(&x) {
                            prop_assert_eq!(row.select(x), legacy_select(hops, x), "x = {}", x);
                        }
                    }
                }
            }
        }
    }
}

/// Many equal ratios accumulate float drift (`k × 1/k ≠ 1` in binary):
/// the pinned final cumulative must still select exactly like the legacy
/// walk with its fallback, for draws up to the last representable value
/// below 1.
#[test]
fn drifted_rows_select_identically() {
    for k in [3usize, 6, 7, 9, 11, 13] {
        let hops: Vec<(EdgeId, f64)> = (0..k).map(|e| (EdgeId::new(e), 1.0 / k as f64)).collect();
        let fib = ForwardingTable::new(
            2,
            vec![NodeId::new(1)],
            vec![vec![hops.clone(), Vec::new()]],
        );
        let row = fib.fib().row(0, NodeId::new(0));
        let mut x = 0.0f64;
        while x < 1.0 {
            assert_eq!(row.select(x), legacy_select(&hops, x), "k = {k}, x = {x}");
            x = (x + 0.0099).min(1.0f64.next_down());
            if x == 1.0f64.next_down() {
                assert_eq!(row.select(x), legacy_select(&hops, x), "k = {k}, sup draw");
                break;
            }
        }
    }
}
