//! # SPEF — optimal OSPF traffic engineering with one more weight
//!
//! A faithful, production-quality implementation of
//! *"One More Weight is Enough: Toward the Optimal Traffic Engineering with
//! OSPF"* (Xu, Liu, Liu, Shen — ICDCS 2011 / arXiv:1011.5015).
//!
//! Optimising OSPF link weights for even ECMP splitting is NP-hard
//! (Fortz–Thorup); the paper sidesteps the hardness by giving each link a
//! **second weight**:
//!
//! 1. The **first weights** are the Lagrange multipliers of the utility-
//!    maximising multi-commodity flow problem `TE(V, G, c, D)` under the
//!    generic *(q, β) proportional load balance* objective ([`Objective`]).
//!    Theorem 3.1 shows all optimal flow travels on shortest paths under
//!    them — packets keep OSPF's destination-based hop-by-hop forwarding.
//! 2. The **second weights** come from *Network Entropy Maximization*
//!    ([`nem`]): each router independently turns them into exponential
//!    split ratios over its equal-cost next hops (Eq. 22), realising the
//!    optimal distribution exactly (Theorem 4.2).
//!
//! ## Crate layout
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`objective`] | (q, β) load-balance family, Eq. (4)/(11) |
//! | [`te`] | `TE(V,G,c,D)` (Eq. 5) and the β = 0 LP |
//! | [`frank_wolfe`] | high-accuracy primal reference solver |
//! | [`dual_decomp`] | **Algorithm 1** — first weights, Fig. 12(a) |
//! | [`traffic_dist`] | **Algorithm 3** — `TrafficDistribution(v)`, Eq. (22) |
//! | [`nem`] | **Algorithm 2** — second weights, Fig. 12(b) |
//! | [`weights`] | §V.G integer weights and Dijkstra tolerances |
//! | [`fib`] | TABLE II as a flat CSR arena ([`FibSet`]) |
//! | [`protocol`] | **Algorithm 4** — SPEF routing + TABLE II FIBs |
//! | [`metrics`] | MLU, normalized utility, TABLE V path census |
//! | [`solver`] | solver sessions: [`TeSolver`], [`TeWorkspace`] |
//!
//! ## Quickstart
//!
//! ```
//! use spef_core::{Objective, SpefConfig, TeInstance, TeSolver};
//! use spef_topology::{standard, TrafficMatrix};
//!
//! # fn main() -> Result<(), spef_core::SpefError> {
//! let net = standard::abilene();
//! let tm = TrafficMatrix::fortz_thorup(&net, 42).scaled_to_network_load(&net, 0.15);
//! let objective = Objective::proportional(net.link_count());
//!
//! let routing = SpefConfig::default().solve(TeInstance::new(&net, &tm, &objective))?;
//! println!("MLU = {:.3}", routing.max_link_utilization(&net));
//! assert!(routing.max_link_utilization(&net) < 1.0);
//! # Ok(())
//! # }
//! ```
//!
//! Sweeps over neighbouring instances should hold a [`TeWorkspace`] and
//! call [`TeSolver::solve_in`] instead — arenas persist and compatible
//! previous solutions warm-start the run (see [`solver`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod objective;

pub mod dual_decomp;
pub mod engine;
pub mod fib;
pub mod frank_wolfe;
pub mod metrics;
pub mod nem;
pub mod protocol;
pub mod solver;
pub mod te;
pub mod traffic_dist;
pub mod weights;

pub use error::SpefError;
pub use objective::Objective;

pub use dual_decomp::{DualDecompConfig, DualDecompOutcome, StepRule};
pub use engine::{EngineState, RoutingEngine, SpfStats};
pub use fib::{FibRow, FibSet};
pub use frank_wolfe::FrankWolfeConfig;
pub use nem::{NemConfig, NemOutcome};
pub use protocol::{ForwardingTable, SpefConfig, SpefRouting, TeSolverKind, WeightMode};
pub use solver::{
    ConvergenceCriteria, NemInstance, TeInstance, TeSolver, TeWorkspace, STALE_WEIGHT_DAG_RTOL,
};
#[allow(deprecated)]
pub use te::solve_te;
pub use te::TeSolution;
pub use traffic_dist::{
    build_dags, traffic_distribution, traffic_distribution_detailed, Flows, SplitRule, SplitTable,
    SplitTableRef, SplitTableSet,
};
