//! The generic (q, β) proportional load-balance objective (§II.B / §III.B).
//!
//! The paper's Theorem 3.3 characterises (q, β) proportional load balance
//! as utility maximisation with the per-link spare-capacity utility
//!
//! ```text
//! V_ij(s) = q_ij · log s                 if β = 1
//! V_ij(s) = q_ij · s^(1−β) / (1−β)       if β ≠ 1
//! ```
//!
//! Special members of the family (Examples 1–3 and Remark 2):
//!
//! * **β = 0, q = 1** — minimum-hop routing (linear utility),
//! * **β = 1** — proportional load balance / minimum average M/M/1 delay,
//!   with optimal weights `w = 1/(c−f)`,
//! * **q = c, β = 2** — minimises total M/M/1 queueing delay, weights
//!   `w = c/(c−f)²`,
//! * **β → ∞** — min-max load balance (minimises MLU).

use serde::{Deserialize, Serialize};
use spef_graph::EdgeId;

/// A (q, β) proportional load-balance objective over `m` links.
///
/// # Example
///
/// ```
/// use spef_core::Objective;
///
/// let obj = Objective::proportional(4); // β = 1, q = 1
/// assert_eq!(obj.beta(), 1.0);
/// // V(s) = log s, V'(s) = 1/s, V'⁻¹(w) = 1/w:
/// assert_eq!(obj.utility(0.into(), 1.0), 0.0);
/// assert_eq!(obj.marginal_utility(0.into(), 0.5), 2.0);
/// assert_eq!(obj.inverse_marginal(0.into(), 4.0), 0.25);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    q: Vec<f64>,
    beta: f64,
}

impl Objective {
    /// Creates an objective with uniform `q = 1` over `links` links and the
    /// given β.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative or not finite.
    pub fn uniform(beta: f64, links: usize) -> Self {
        Self::with_weights(vec![1.0; links], beta)
    }

    /// Creates an objective with per-link weights `q` and parameter β.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative/not finite or any `q` is non-positive
    /// or not finite. (The paper allows `q_ij = 0`; we require strictly
    /// positive `q` so that first weights `w = V'(s)` stay positive, which
    /// Theorem 3.1 presumes.)
    pub fn with_weights(q: Vec<f64>, beta: f64) -> Self {
        assert!(
            beta.is_finite() && beta >= 0.0,
            "beta must be finite and >= 0"
        );
        assert!(
            q.iter().all(|&x| x.is_finite() && x > 0.0),
            "q weights must be finite and positive"
        );
        Objective { q, beta }
    }

    /// The proportional load balance objective: β = 1, q = 1
    /// (Example 1; the objective the paper's evaluation uses for SPEF).
    pub fn proportional(links: usize) -> Self {
        Self::uniform(1.0, links)
    }

    /// The minimum-hop objective: β = 0, q = 1 (Example 3 with d = 1).
    pub fn min_hop(links: usize) -> Self {
        Self::uniform(0.0, links)
    }

    /// The total M/M/1 queueing-delay objective: q = c, β = 2 (Example 2).
    pub fn mm1_delay(capacities: &[f64]) -> Self {
        Self::with_weights(capacities.to_vec(), 2.0)
    }

    /// The β parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of links this objective is defined over.
    pub fn link_count(&self) -> usize {
        self.q.len()
    }

    /// The `q` weight of link `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn q(&self, e: EdgeId) -> f64 {
        self.q[e.index()]
    }

    /// Link utility `V_e(s)` of spare capacity `s` (Eq. 11).
    ///
    /// Returns `-∞` for `s ≤ 0` when β ≥ 1 (log/inverse-power barrier).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn utility(&self, e: EdgeId, s: f64) -> f64 {
        let q = self.q[e.index()];
        let b = self.beta;
        if (b - 1.0).abs() < 1e-12 {
            if s <= 0.0 {
                f64::NEG_INFINITY
            } else {
                q * s.ln()
            }
        } else if b < 1.0 {
            // s^(1-β)/(1-β) with 1-β in (0, 1]: finite at 0.
            if s <= 0.0 {
                0.0
            } else {
                q * s.powf(1.0 - b) / (1.0 - b)
            }
        } else {
            // β > 1: negative power, barrier at 0.
            if s <= 0.0 {
                f64::NEG_INFINITY
            } else {
                q * s.powf(1.0 - b) / (1.0 - b)
            }
        }
    }

    /// Marginal utility `V'_e(s) = q / s^β` — the optimal first weight of a
    /// link with spare capacity `s` (Eq. 6b).
    ///
    /// Returns `+∞` for `s ≤ 0` when β > 0.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn marginal_utility(&self, e: EdgeId, s: f64) -> f64 {
        let q = self.q[e.index()];
        if self.beta == 0.0 {
            return q;
        }
        if s <= 0.0 {
            f64::INFINITY
        } else if self.beta == 1.0 {
            // powf(s, 1.0) is exactly s (IEEE 754 pow special case), so this
            // fast path is bit-identical — and it keeps libm's powf out of
            // the solvers' innermost line-search loops for the common
            // proportional (β = 1) objective.
            q / s
        } else {
            q / s.powf(self.beta)
        }
    }

    /// Second derivative `V''_e(s) = −βq / s^(β+1)` (used by line searches).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn second_derivative(&self, e: EdgeId, s: f64) -> f64 {
        let q = self.q[e.index()];
        if self.beta == 0.0 {
            return 0.0;
        }
        if s <= 0.0 {
            f64::NEG_INFINITY
        } else {
            -self.beta * q / s.powf(self.beta + 1.0)
        }
    }

    /// Inverse marginal utility `(V'_e)⁻¹(w) = (q/w)^(1/β)` — the unique
    /// spare capacity at which link `e`'s marginal utility equals `w`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range, if `w ≤ 0`, or if β = 0 (the linear
    /// objective has no inverse; use [`link_optimal_spare`] instead).
    ///
    /// [`link_optimal_spare`]: Self::link_optimal_spare
    pub fn inverse_marginal(&self, e: EdgeId, w: f64) -> f64 {
        assert!(w > 0.0, "weight must be positive, got {w}");
        assert!(
            self.beta > 0.0,
            "inverse marginal utility is undefined for beta = 0"
        );
        let q = self.q[e.index()];
        if self.beta == 1.0 {
            // Exact: powf(x, 1.0) = x.
            q / w
        } else {
            (q / w).powf(1.0 / self.beta)
        }
    }

    /// Solves the per-link problem `Link_e(V_e; w)` of Eq. (7):
    /// `max V_e(s) − w·s  s.t.  0 ≤ s ≤ cap`.
    ///
    /// This is the closed-form step of Algorithm 1. For β > 0 the solution
    /// is `min(cap, (q/w)^(1/β))`; for β = 0 it is `cap` when `w ≤ q`
    /// (every unit of spare capacity is profitable) and `0` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `w < 0`.
    pub fn link_optimal_spare(&self, e: EdgeId, w: f64, cap: f64) -> f64 {
        assert!(w >= 0.0, "weight must be non-negative, got {w}");
        let q = self.q[e.index()];
        if self.beta == 0.0 {
            return if w <= q { cap } else { 0.0 };
        }
        if w == 0.0 {
            return cap; // marginal utility is always positive
        }
        self.inverse_marginal(e, w).min(cap)
    }

    /// Aggregate utility `Σ_e V_e(s_e)` of a spare-capacity vector.
    ///
    /// # Panics
    ///
    /// Panics if `spare.len() != self.link_count()`.
    pub fn aggregate_utility(&self, spare: &[f64]) -> f64 {
        assert_eq!(spare.len(), self.q.len(), "spare vector length");
        spare
            .iter()
            .enumerate()
            .map(|(i, &s)| self.utility(EdgeId::new(i), s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: EdgeId = EdgeId::new(0);

    #[test]
    fn beta_one_is_log_utility() {
        let obj = Objective::proportional(1);
        assert_eq!(obj.utility(E, 1.0), 0.0);
        assert!((obj.utility(E, std::f64::consts::E) - 1.0).abs() < 1e-12);
        assert_eq!(obj.utility(E, 0.0), f64::NEG_INFINITY);
        assert_eq!(obj.marginal_utility(E, 2.0), 0.5);
        assert_eq!(obj.inverse_marginal(E, 0.5), 2.0);
    }

    #[test]
    fn beta_zero_is_linear() {
        let obj = Objective::min_hop(1);
        assert_eq!(obj.utility(E, 3.0), 3.0);
        assert_eq!(obj.marginal_utility(E, 0.1), 1.0);
        assert_eq!(obj.marginal_utility(E, 100.0), 1.0);
        // Link subproblem: all spare if cheap, none if expensive.
        assert_eq!(obj.link_optimal_spare(E, 0.5, 7.0), 7.0);
        assert_eq!(obj.link_optimal_spare(E, 1.5, 7.0), 0.0);
    }

    #[test]
    fn beta_two_matches_example2() {
        // q = c = 4, β = 2: V(s) = -4/s, V'(s) = 4/s², so a link with
        // f = 2 (s = 2) has weight c/(c-f)² = 1.
        let obj = Objective::mm1_delay(&[4.0]);
        assert!((obj.utility(E, 2.0) - (-2.0)).abs() < 1e-12);
        assert!((obj.marginal_utility(E, 2.0) - 1.0).abs() < 1e-12);
        assert!((obj.inverse_marginal(E, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn marginal_is_derivative_numerically() {
        for beta in [0.5, 1.0, 2.0, 5.0] {
            let obj = Objective::with_weights(vec![1.7], beta);
            for s in [0.3, 1.0, 2.5] {
                let h = 1e-6;
                let numeric = (obj.utility(E, s + h) - obj.utility(E, s - h)) / (2.0 * h);
                let analytic = obj.marginal_utility(E, s);
                assert!(
                    (numeric - analytic).abs() < 1e-4 * analytic.abs().max(1.0),
                    "beta={beta} s={s}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn inverse_marginal_inverts() {
        for beta in [0.5, 1.0, 3.0] {
            let obj = Objective::with_weights(vec![2.0], beta);
            for s in [0.2, 1.0, 4.0] {
                let w = obj.marginal_utility(E, s);
                assert!((obj.inverse_marginal(E, w) - s).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn link_subproblem_caps_at_capacity() {
        let obj = Objective::proportional(1);
        // V'(s) = 1/s = w at s = 1/w = 10; capacity 3 binds.
        assert_eq!(obj.link_optimal_spare(E, 0.1, 3.0), 3.0);
        // Interior optimum.
        assert_eq!(obj.link_optimal_spare(E, 1.0, 3.0), 1.0);
        // Zero weight: take everything.
        assert_eq!(obj.link_optimal_spare(E, 0.0, 3.0), 3.0);
    }

    #[test]
    fn concavity_forces_load_balance() {
        // V(s1) + V(s2) is maximised at equal split for concave V.
        for beta in [0.5, 1.0, 2.0] {
            let obj = Objective::uniform(beta, 2);
            let balanced = obj.aggregate_utility(&[1.0, 1.0]);
            let skewed = obj.aggregate_utility(&[1.5, 0.5]);
            assert!(balanced > skewed, "beta={beta}");
        }
    }

    #[test]
    fn utility_increases_with_beta_sensitivity() {
        // As β grows, the penalty for a small spare capacity grows much
        // faster (min-max behaviour in the limit).
        let small = 0.1;
        let o1 = Objective::uniform(1.0, 1);
        let o5 = Objective::uniform(5.0, 1);
        let ratio1 = o1.marginal_utility(E, small) / o1.marginal_utility(E, 1.0);
        let ratio5 = o5.marginal_utility(E, small) / o5.marginal_utility(E, 1.0);
        assert!(ratio5 > ratio1 * 100.0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn negative_beta_rejected() {
        Objective::uniform(-1.0, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_q_rejected() {
        Objective::with_weights(vec![0.0], 1.0);
    }

    #[test]
    fn beta_below_one_finite_at_zero() {
        let obj = Objective::uniform(0.5, 1);
        assert_eq!(obj.utility(E, 0.0), 0.0);
        assert!(obj.utility(E, 1.0) > 0.0);
        assert_eq!(obj.marginal_utility(E, 0.0), f64::INFINITY);
    }
}
