//! Algorithm 2 of the paper: Network Entropy Maximization for the **second
//! link weights**.
//!
//! Given the optimal traffic distribution `f*` and the shortest-path DAGs
//! under the first weights, SPEF needs per-router split ratios over the
//! equal-cost paths that (a) reproduce `f*` and (b) are computable locally
//! from one extra weight per link. The paper obtains them by maximising the
//! path-split entropy (Eq. 17); the Lagrange duals `v` of the capacity
//! constraints `Σ_paths ∋ e  d_r p_k ≤ f*_e` are the second weights, and
//! the optimal splits are the exponential softmax of second-weight path
//! lengths (Eq. 18).
//!
//! Algorithm 2 is projected gradient on the dual:
//! `v ← (v − γ (f* − f(v)))₊`, where `f(v)` is the traffic distribution
//! induced by exponential splitting ([`traffic_distribution`] with
//! [`SplitRule::Exponential`]). The recorded dual-objective trace
//! `d(v) = Σ_r d_r · log Σ_k e^(−v^r_k) + Σ_e v_e f*_e` regenerates
//! Fig. 12(b).

use spef_graph::{Graph, ShortestPathDag};
use spef_topology::TrafficMatrix;

use crate::dual_decomp::StepRule;
use crate::solver::{ConvergenceCriteria, TeWorkspace};
use crate::traffic_dist::{distribute_batch, distribute_batch_tiled, Flows, SplitRule};
use crate::SpefError;

/// Configuration of Algorithm 2.
#[derive(Debug, Clone)]
pub struct NemConfig {
    /// Step-size schedule. The default is the paper's
    /// `γ = 1 / max_e f*_e` (§V.F).
    pub step: StepRule,
    /// Stopping rules. `max_iterations` defaults to 1000 (the x-range of
    /// Fig. 12(b)); `gap_tolerance` is the ε of `f_e ≤ f*_e + ε` on every
    /// link, `None` deriving `1e-4 · max_e f*_e`.
    pub convergence: ConvergenceCriteria,
    /// Record the dual objective every iteration (Fig. 12(b)).
    pub record_trace: bool,
}

impl Default for NemConfig {
    fn default() -> Self {
        NemConfig {
            step: StepRule::DefaultRatio(1.0),
            convergence: ConvergenceCriteria::budget(1000),
            record_trace: false,
        }
    }
}

/// Outcome of Algorithm 2.
#[derive(Debug, Clone)]
pub struct NemOutcome {
    /// The second link weights `v`.
    pub second_weights: Vec<f64>,
    /// The traffic distribution realised by exponential splitting under
    /// `v` — SPEF's actual flows.
    pub flows: Flows,
    /// Dual objective per iteration (Fig. 12(b)); empty unless
    /// `record_trace`.
    pub dual_objective_trace: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the ε-criterion was met. With *integerised* first weights
    /// the DAGs may not support `f*` exactly (§V.G), in which case the
    /// algorithm reports `false` and returns its best iterate.
    pub converged: bool,
}

/// Runs Algorithm 2: computes second weights `v` such that exponential
/// splitting over `dags` reproduces the target distribution within ε.
///
/// `dags` must be aligned with `traffic.destinations()` and
/// `target_flows` is the aggregate optimal distribution `f*`.
///
/// # Errors
///
/// * [`SpefError::InvalidInput`] on size mismatches,
/// * [`SpefError::UnroutableDemand`] if a demand pair has no path on its
///   DAG (can happen with aggressively rounded integer weights).
#[deprecated(
    note = "use the TeSolver session API: `config.solve(NemInstance::new(graph, dags, traffic, target_flows))` \
            or `solve_in` with a TeWorkspace"
)]
pub fn solve_second_weights(
    graph: &Graph,
    dags: &[ShortestPathDag],
    traffic: &TrafficMatrix,
    target_flows: &[f64],
    config: &NemConfig,
) -> Result<NemOutcome, SpefError> {
    solve_in(
        graph,
        dags,
        traffic,
        target_flows,
        config,
        &mut TeWorkspace::new(),
    )
}

/// The session entry point: split tables, demand columns, flow vectors
/// and the dual iterate `v` live in the workspace. A saved `v` for the
/// same graph and destination set seeds the run (any `v ≥ 0` is a valid
/// projected-gradient start); otherwise `v(0) = 0` as in §V.F. Reached
/// through the [`TeSolver`](crate::TeSolver) impl on [`NemConfig`].
pub(crate) fn solve_in(
    graph: &Graph,
    dags: &[ShortestPathDag],
    traffic: &TrafficMatrix,
    target_flows: &[f64],
    config: &NemConfig,
    ws: &mut TeWorkspace,
) -> Result<NemOutcome, SpefError> {
    if target_flows.len() != graph.edge_count() {
        return Err(SpefError::InvalidInput(format!(
            "target flow vector has length {}, expected {}",
            target_flows.len(),
            graph.edge_count()
        )));
    }
    let max_target = target_flows.iter().cloned().fold(0.0, f64::max);
    if max_target <= 0.0 {
        return Err(SpefError::InvalidInput(
            "target flows are all zero".to_string(),
        ));
    }
    if config.convergence.max_iterations == 0 {
        return Err(SpefError::InvalidInput(
            "max_iterations must be at least 1".to_string(),
        ));
    }
    let eps = config
        .convergence
        .gap_tolerance
        .unwrap_or(1e-4 * max_target);
    let pinned = config.convergence.pinned;
    let default_scale = 1.0 / max_target;

    let dests = traffic.destinations();
    // Effective tile: a tile covering every destination runs dense.
    let tile = ws.tile.filter(|&t| t < dests.len());
    let nem = &mut ws.nem;
    let warm = !pinned && nem.try_warm_start(graph, &dests, tile);
    // Until the run completes, nothing claims the buffers solve anything
    // (early `?` returns must not leave a stale fingerprint behind).
    nem.forget();
    if !warm {
        // §V.F: v(0) = 0 is a proper choice (and a good approximate dual).
        nem.v.clear();
        nem.v.resize(graph.edge_count(), 0.0);
    }
    let mut trace = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    for k in 0..config.convergence.max_iterations {
        iterations = k + 1;
        // d(v) = Σ_r d_r log Σ_k e^{-v^r_k} + Σ_e v_e f*_e; the demand
        // terms accumulate in ascending destination order on both paths
        // (the tiled closure folds them per tile while that tile's split
        // tables are live), so the trace is bit-identical either way.
        let mut dual = 0.0;
        if let Some(tile) = tile {
            let record = config.record_trace;
            distribute_batch_tiled(
                graph,
                &dests,
                dags.iter(),
                traffic,
                SplitRule::Exponential(&nem.v),
                tile,
                &mut nem.tables,
                &mut nem.scratch,
                &mut nem.tile_cols,
                &mut nem.flows,
                |_, chunk, tables| {
                    if record {
                        for (i, &t) in chunk.iter().enumerate() {
                            let table = tables.table(i);
                            traffic.demands_to_into(t, &mut nem.demand_buf);
                            for (s, &d) in nem.demand_buf.iter().enumerate() {
                                if d > 0.0 {
                                    dual += d * table.log_path_sum(s.into());
                                }
                            }
                        }
                    }
                    Ok(())
                },
            )?;
        } else {
            distribute_batch(
                graph,
                &dests,
                dags.iter(),
                traffic,
                SplitRule::Exponential(&nem.v),
                &mut nem.tables,
                &mut nem.scratch,
                &mut nem.flows,
            )?;
            if config.record_trace {
                for (i, &t) in dests.iter().enumerate() {
                    let table = nem.tables.table(i);
                    traffic.demands_to_into(t, &mut nem.demand_buf);
                    for (s, &d) in nem.demand_buf.iter().enumerate() {
                        if d > 0.0 {
                            dual += d * table.log_path_sum(s.into());
                        }
                    }
                }
            }
        }
        if config.record_trace {
            for (ve, fe) in nem.v.iter().zip(target_flows) {
                dual += ve * fe;
            }
            trace.push(dual);
        }

        // Convergence: f_e ≤ f*_e + ε everywhere.
        let worst = nem
            .flows
            .aggregate()
            .iter()
            .zip(target_flows)
            .map(|(f, t)| f - t)
            .fold(f64::NEG_INFINITY, f64::max);
        if worst <= eps {
            converged = true;
            if !pinned {
                break;
            }
        } else if pinned {
            // Pinned mode reports the final iterate's status.
            converged = false;
        }

        let step = config.step.step(k, default_scale);
        let agg = nem.flows.aggregate();
        for ((v, &target), &f) in nem.v.iter_mut().zip(target_flows).zip(agg) {
            *v = (*v - step * (target - f)).max(0.0);
        }
    }

    nem.record_solution(graph, &dests, tile);
    Ok(NemOutcome {
        second_weights: nem.v.clone(),
        flows: nem.flows.clone(),
        dual_objective_trace: trace,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frank_wolfe::FrankWolfeConfig;
    use crate::solver::{ConvergenceCriteria, TeInstance, TeSolver, TeWorkspace};
    use crate::traffic_dist::build_dags;
    use crate::Objective;
    use spef_graph::NodeId;
    use spef_topology::{standard, Network};

    /// Cold-solve helper: the module's tests exercise the algorithm, not the
    /// session machinery, so each call gets a fresh [`TeWorkspace`].
    fn solve_second_weights(
        graph: &Graph,
        dags: &[ShortestPathDag],
        traffic: &TrafficMatrix,
        target_flows: &[f64],
        config: &NemConfig,
    ) -> Result<NemOutcome, SpefError> {
        solve_in(
            graph,
            dags,
            traffic,
            target_flows,
            config,
            &mut TeWorkspace::new(),
        )
    }

    /// Diamond with asymmetric target split.
    fn diamond() -> (Graph, Vec<f64>) {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        (g, vec![1.0; 4])
    }

    #[test]
    fn reproduces_even_target_with_zero_weights() {
        let (g, w) = diamond();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 2.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        // Even target: v = 0 already realises it; Algorithm 2 must converge
        // immediately with zero weights.
        let target = vec![1.0, 1.0, 1.0, 1.0];
        let out = solve_second_weights(&g, &dags, &tm, &target, &NemConfig::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        assert!(out.second_weights.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn skewed_target_induces_positive_weight_on_hot_path() {
        let (g, w) = diamond();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        // Target: 30% on the upper path, 70% on the lower.
        let target = vec![0.3, 0.7, 0.3, 0.7];
        let cfg = NemConfig {
            convergence: ConvergenceCriteria::with_tolerance(5000, 1e-6),
            ..NemConfig::default()
        };
        let out = solve_second_weights(&g, &dags, &tm, &target, &cfg).unwrap();
        assert!(out.converged, "did not converge: {:?}", out.flows);
        let f = out.flows.aggregate();
        assert!((f[0] - 0.3).abs() < 1e-3, "upper {}", f[0]);
        assert!((f[1] - 0.7).abs() < 1e-3, "lower {}", f[1]);
        // The under-used (upper) path carries the positive second weight.
        let upper_len = out.second_weights[0] + out.second_weights[2];
        let lower_len = out.second_weights[1] + out.second_weights[3];
        assert!(upper_len > lower_len);
        // Eq. 18: p_upper/p_lower = e^{-(len_u - len_l)}.
        let expected_ratio = (-(upper_len - lower_len) as f64).exp();
        assert!((f[0] / f[1] - expected_ratio).abs() < 1e-3);
    }

    #[test]
    fn realizes_optimal_te_on_fig1() {
        // Theorem 4.2 end-to-end on the paper's Fig. 1: the β=1 optimal
        // distribution is realisable by exponential splitting over the
        // first-weight shortest paths.
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let obj = Objective::proportional(net.link_count());
        let te = FrankWolfeConfig::default()
            .solve(TeInstance::new(&net, &tm, &obj))
            .unwrap();
        // DAGs under the optimal first weights; small tolerance absorbs the
        // solver's finite accuracy.
        let tol = 1e-4;
        let dags = build_dags(net.graph(), &te.weights, &tm.destinations(), tol).unwrap();
        let cfg = NemConfig {
            convergence: ConvergenceCriteria::with_tolerance(20000, 1e-5),
            ..NemConfig::default()
        };
        let out =
            solve_second_weights(net.graph(), &dags, &tm, te.flows.aggregate(), &cfg).unwrap();
        assert!(out.converged);
        for (e, (f, t)) in out
            .flows
            .aggregate()
            .iter()
            .zip(te.flows.aggregate())
            .enumerate()
        {
            assert!((f - t).abs() < 1e-3, "edge {e}: {f} vs {t}");
        }
    }

    #[test]
    fn dual_trace_is_recorded_and_finite() {
        let (g, w) = diamond();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        let cfg = NemConfig {
            record_trace: true,
            convergence: ConvergenceCriteria::with_tolerance(50, 0.0),
            ..NemConfig::default()
        };
        let target = vec![0.4, 0.6, 0.4, 0.6];
        let out = solve_second_weights(&g, &dags, &tm, &target, &cfg).unwrap();
        assert!(!out.dual_objective_trace.is_empty());
        assert!(out.dual_objective_trace.iter().all(|d| d.is_finite()));
        // The dual objective of the final iterate is near-minimal over the
        // trace (gradient descent on a convex dual).
        let last = *out.dual_objective_trace.last().unwrap();
        let min = out
            .dual_objective_trace
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(last - min < 1e-2);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (g, w) = diamond();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        assert!(matches!(
            solve_second_weights(&g, &dags, &tm, &[1.0; 2], &NemConfig::default()),
            Err(SpefError::InvalidInput(_))
        ));
        assert!(matches!(
            solve_second_weights(&g, &dags, &tm, &[0.0; 4], &NemConfig::default()),
            Err(SpefError::InvalidInput(_))
        ));
    }

    #[test]
    fn unreachable_target_flow_reports_nonconvergence() {
        // Target below what any split can achieve on one mandatory edge:
        // chain 0→1→2 must carry all demand on both edges; target says 0.5.
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        let w = vec![1.0, 1.0];
        let mut tm = TrafficMatrix::new(3);
        tm.set(0.into(), 2.into(), 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        let cfg = NemConfig {
            convergence: ConvergenceCriteria::with_tolerance(50, 1e-9),
            ..NemConfig::default()
        };
        let out = solve_second_weights(&g, &dags, &tm, &[0.5, 0.5], &cfg).unwrap();
        assert!(!out.converged);
        // The flow is still the only feasible one.
        assert_eq!(out.flows.aggregate(), &[1.0, 1.0]);
        let _ = Network::builder("unused");
        let _ = NodeId::new(0);
    }
}
