//! The SPEF forwarding plane: TABLE II as a flat CSR arena.
//!
//! A forwarding information base answers one question on every packet hop:
//! *which next-hop links, with which split probabilities, does router `u`
//! use toward destination `t`?* The legacy representation — a
//! `Vec<Vec<Vec<(EdgeId, f64)>>>` indexed `[dest][node][entry]` plus a
//! linear scan to find the destination's index — put three pointer chases
//! and an `O(dests)` search on the per-packet hot path of the simulator.
//!
//! [`FibSet`] stores the same table as three flat arrays:
//!
//! ```text
//! dest_index : node id      → dest slot   (u32, sentinel for non-dests)
//! row_offsets: slot·n + u   → entry range (CSR prefix offsets, len+1)
//! hops / cum : entry        → (EdgeId, ratio) and cumulative probability
//! ```
//!
//! `next_hops(u, t)` is two index operations; sampling a next hop from a
//! uniform draw is a `partition_point` binary search over the precomputed
//! cumulative probabilities. The cumulative array is built with exactly the
//! running sum the legacy per-draw accumulation performed (`cum[i] = r₀ +
//! r₁ + … + rᵢ` in entry order), so for every draw `x ∈ [0, 1)` the
//! selected edge is **bit-identical** to the old linear walk; the final
//! cumulative of each non-empty row is pinned to exactly `1.0` after the
//! build-time validation that the ratios sum to 1 within `1e-6`, so the
//! search can never fall off the end of a row (the invariant the legacy
//! walk silently papered over with a `hops.last()` fallback per draw).
//!
//! [`ForwardingTable`] — the public type the protocol, baselines and the
//! simulator exchange — is a thin facade over a `FibSet` that keeps the
//! pre-flat constructor and lookup API unchanged.

use std::fmt;

use spef_graph::{EdgeId, NodeId};

use crate::traffic_dist::{SplitTable, SplitTableSet};

/// Sentinel in `dest_index` marking a node that is not a destination.
const NO_DEST: u32 = u32::MAX;

/// The SPEF forwarding information base as a flat CSR arena: per
/// `(destination, router)` the next-hop links, their split ratios, and the
/// precomputed cumulative probabilities the simulator samples against —
/// the operational reduction of the paper's TABLE II. See the [module
/// docs](self) for the layout.
///
/// A `FibSet` is also a reusable workspace: the `rebuild_*` methods clear
/// and refill the arenas without dropping their allocations, so repeated
/// builds over same-shaped inputs are allocation-free.
#[derive(Clone, PartialEq, Default)]
pub struct FibSet {
    node_count: usize,
    dests: Vec<NodeId>,
    /// `dest_index[t] = slot` for destinations, [`NO_DEST`] otherwise.
    dest_index: Vec<u32>,
    /// CSR prefix offsets over `(slot, node)` cells: the entries of cell
    /// `slot·node_count + u` live at `hops[row_offsets[c]..row_offsets[c+1]]`.
    row_offsets: Vec<u32>,
    /// The `(edge, ratio)` entry arena, rows concatenated in cell order.
    hops: Vec<(EdgeId, f64)>,
    /// `cum[i]` = running ratio sum through entry `i` of its row; the last
    /// entry of every non-empty row is exactly `1.0`.
    cum: Vec<f64>,
}

impl FibSet {
    /// Creates an empty set; arenas grow on first build.
    pub fn new() -> FibSet {
        FibSet::default()
    }

    /// Builds a `FibSet` from a batched [`SplitTableSet`] (the routing
    /// engine's arena form) without materialising any owned rows.
    ///
    /// # Panics
    ///
    /// Panics if `tables.len() != dests.len()`, a destination id is out of
    /// range or duplicated, or a non-empty row's ratios do not sum to 1
    /// within `1e-6`.
    pub fn from_split_table_set(
        node_count: usize,
        dests: &[NodeId],
        tables: &SplitTableSet,
    ) -> FibSet {
        let mut set = FibSet::new();
        set.rebuild_from_split_table_set(node_count, dests, tables);
        set
    }

    /// Like [`FibSet::from_split_table_set`], but refills `self` in place,
    /// reusing the arenas — allocation-free once warmed on the shape.
    ///
    /// # Panics
    ///
    /// Same conditions as [`FibSet::from_split_table_set`].
    pub fn rebuild_from_split_table_set(
        &mut self,
        node_count: usize,
        dests: &[NodeId],
        tables: &SplitTableSet,
    ) {
        assert_eq!(tables.len(), dests.len(), "one table per destination");
        self.begin(node_count);
        for (i, &t) in dests.iter().enumerate() {
            let table = tables.table(i);
            self.push_destination(t, |u| table.next_hops(NodeId::new(u)));
        }
    }

    /// Starts an incremental rebuild: clears the arenas (keeping their
    /// allocations) and fixes the node count. Follow with one
    /// [`push_destination`](Self::push_destination) call per destination.
    pub fn begin(&mut self, node_count: usize) {
        self.node_count = node_count;
        self.dests.clear();
        self.dest_index.clear();
        self.dest_index.resize(node_count, NO_DEST);
        self.row_offsets.clear();
        self.row_offsets.push(0);
        self.hops.clear();
        self.cum.clear();
    }

    /// Appends one destination's rows: `row(u)` must yield node `u`'s
    /// `(edge, ratio)` next-hop entries toward `dest` (empty for the
    /// destination itself and for nodes that cannot reach it). Entries are
    /// copied into the arena together with their running cumulative
    /// probability; the row's final cumulative is pinned to exactly `1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range or already pushed, a ratio is
    /// negative or NaN, or a non-empty row's ratios do not sum to 1 within
    /// `1e-6`.
    pub fn push_destination<'a, F>(&mut self, dest: NodeId, row: F)
    where
        F: Fn(usize) -> &'a [(EdgeId, f64)],
    {
        assert!(
            dest.index() < self.node_count,
            "destination {dest} outside the {}-node graph",
            self.node_count
        );
        assert!(
            self.dest_index[dest.index()] == NO_DEST,
            "duplicate destination {dest}"
        );
        self.dest_index[dest.index()] = self.dests.len() as u32;
        self.dests.push(dest);
        for u in 0..self.node_count {
            let hops = row(u);
            if !hops.is_empty() {
                // The cumulative is the exact running sum the legacy
                // per-draw walk accumulated, term order preserved.
                let mut acc = 0.0f64;
                for &(e, r) in hops {
                    assert!(r >= 0.0, "next-hop ratio {r} is negative or NaN");
                    acc += r;
                    self.hops.push((e, r));
                    self.cum.push(acc);
                }
                assert!(
                    (acc - 1.0).abs() < 1e-6,
                    "next-hop ratios sum to {acc}, expected 1"
                );
                // Pin the row's sup to exactly 1.0: every draw in [0, 1)
                // now lands strictly inside the row, by construction.
                let last = self.cum.len() - 1;
                self.cum[last] = 1.0;
            }
            self.row_offsets.push(self.hops.len() as u32);
        }
    }

    /// Number of nodes (routers) each destination's table covers.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Destinations the FIB covers, in slot order.
    pub fn destinations(&self) -> &[NodeId] {
        &self.dests
    }

    /// Total `(edge, ratio)` entries across all `(destination, router)`
    /// rows — the control-plane state size, in `O(1)`.
    pub fn entry_count(&self) -> usize {
        self.hops.len()
    }

    /// Bytes reserved by the FIB arenas (capacities, not lengths) — the
    /// high-water mark of the forwarding-plane state, since the arenas
    /// never shrink across rebuilds.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.dests.capacity() * size_of::<NodeId>()
            + self.dest_index.capacity() * size_of::<u32>()
            + self.row_offsets.capacity() * size_of::<u32>()
            + self.hops.capacity() * size_of::<(EdgeId, f64)>()
            + self.cum.capacity() * size_of::<f64>()
    }

    /// The dense slot of `dest`, or `None` if it is not a covered
    /// destination — the `O(dests)` scan of the legacy table reduced to
    /// one array load. Callers on a per-packet path should resolve the
    /// slot once and use [`row`](Self::row) per hop.
    #[inline]
    pub fn dest_slot(&self, dest: NodeId) -> Option<u32> {
        match self.dest_index.get(dest.index()) {
            Some(&s) if s != NO_DEST => Some(s),
            _ => None,
        }
    }

    /// The next-hop row of `node` toward the destination in `slot` (from
    /// [`dest_slot`](Self::dest_slot)): two index operations.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a valid slot or `node` is out of range.
    #[inline]
    pub fn row(&self, slot: u32, node: NodeId) -> FibRow<'_> {
        let cell = slot as usize * self.node_count + node.index();
        let start = self.row_offsets[cell] as usize;
        let end = self.row_offsets[cell + 1] as usize;
        FibRow {
            hops: &self.hops[start..end],
            cum: &self.cum[start..end],
        }
    }

    /// Next-hop `(edge, ratio)` entries of `node` toward `dest`, or `None`
    /// if `dest` is not a covered destination. An empty slice means the
    /// node is the destination itself or cannot reach it.
    pub fn next_hops(&self, node: NodeId, dest: NodeId) -> Option<&[(EdgeId, f64)]> {
        let slot = self.dest_slot(dest)?;
        if node.index() >= self.node_count {
            return None;
        }
        Some(self.row(slot, node).hops())
    }

    /// Iterates every `(destination, router, row)` cell in arena order.
    pub fn rows(&self) -> impl Iterator<Item = (NodeId, NodeId, FibRow<'_>)> + '_ {
        self.dests.iter().enumerate().flat_map(move |(slot, &t)| {
            (0..self.node_count).map(move |u| {
                let node = NodeId::new(u);
                (t, node, self.row(slot as u32, node))
            })
        })
    }
}

impl fmt::Debug for FibSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FibSet")
            .field("node_count", &self.node_count)
            .field("dests", &self.dests)
            .field("entries", &self.hops.len())
            .finish()
    }
}

/// One `(destination, router)` row of a [`FibSet`]: the `(edge, ratio)`
/// entries plus their cumulative probabilities.
#[derive(Debug, Clone, Copy)]
pub struct FibRow<'a> {
    hops: &'a [(EdgeId, f64)],
    cum: &'a [f64],
}

impl<'a> FibRow<'a> {
    /// The `(edge, ratio)` next-hop entries.
    #[inline]
    pub fn hops(&self) -> &'a [(EdgeId, f64)] {
        self.hops
    }

    /// `true` when the row has no next hops (the node is the destination
    /// or cannot reach it).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Number of next-hop entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Selects the next-hop edge for a uniform draw `x ∈ [0, 1)`: the
    /// first entry whose cumulative probability exceeds `x`, found by
    /// binary search — the same edge the legacy linear accumulation
    /// (`acc += ratio; if x < acc`) selected, for every representable `x`
    /// (a negative `x` selects the first entry, exactly as the legacy
    /// walk did; the contract is debug-asserted).
    ///
    /// # Panics
    ///
    /// Panics if the row is empty or `x ≥ 1` (the build-time cumulative
    /// invariant pins every row's sup to exactly 1.0, so draws in
    /// `[0, 1)` always land on an entry).
    #[inline]
    pub fn select(&self, x: f64) -> EdgeId {
        debug_assert!((0.0..1.0).contains(&x), "draw {x} outside [0, 1)");
        let i = self.cum.partition_point(|&c| c <= x);
        self.hops[i].0
    }

    /// The cumulative probability through entry `i` (the last entry of a
    /// non-empty row is exactly `1.0`).
    #[inline]
    pub fn cum_prob(&self, i: usize) -> f64 {
        self.cum[i]
    }
}

/// The SPEF forwarding tables exchanged between the protocol, the
/// baselines and the simulator — a thin facade over [`FibSet`] that keeps
/// the pre-flat constructor and lookup API. New code that sits on a
/// per-packet path should fetch the backing set once via
/// [`fib`](ForwardingTable::fib) and use slot-based lookups.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardingTable {
    set: FibSet,
}

impl ForwardingTable {
    /// Builds a forwarding table from explicit per-destination next-hop
    /// ratio rows. `tables[d][node]` lists `(edge, ratio)` entries; rows
    /// must be empty or have ratios summing to ≈ 1.
    ///
    /// # Panics
    ///
    /// Panics if `tables.len() != dests.len()`, a destination is out of
    /// range or duplicated, a per-node table does not have exactly
    /// `node_count` rows, or some non-empty row's ratios do not sum to 1
    /// within 1e-6.
    pub fn new(
        node_count: usize,
        dests: Vec<NodeId>,
        tables: Vec<Vec<Vec<(EdgeId, f64)>>>,
    ) -> ForwardingTable {
        assert_eq!(tables.len(), dests.len(), "one table per destination");
        let mut set = FibSet::new();
        set.begin(node_count);
        for (per_node, &t) in tables.iter().zip(&dests) {
            assert_eq!(per_node.len(), node_count, "one row per node");
            set.push_destination(t, |u| per_node[u].as_slice());
        }
        ForwardingTable { set }
    }

    /// Builds the table from per-destination [`SplitTable`]s.
    pub fn from_split_tables(
        node_count: usize,
        dests: &[NodeId],
        tables: &[SplitTable],
    ) -> ForwardingTable {
        assert_eq!(tables.len(), dests.len(), "one table per destination");
        let mut set = FibSet::new();
        set.begin(node_count);
        for (table, &t) in tables.iter().zip(dests) {
            set.push_destination(t, |u| table.next_hops(NodeId::new(u)));
        }
        ForwardingTable { set }
    }

    /// Builds the table from a batched [`SplitTableSet`] (the engine's
    /// arena form) — a zero-copy flattening, no owned rows materialised.
    ///
    /// # Panics
    ///
    /// Panics if `tables.len() != dests.len()` or a non-empty row's ratios
    /// do not sum to 1 within 1e-6.
    pub fn from_split_table_set(
        node_count: usize,
        dests: &[NodeId],
        tables: &SplitTableSet,
    ) -> ForwardingTable {
        ForwardingTable {
            set: FibSet::from_split_table_set(node_count, dests, tables),
        }
    }

    /// Destinations the table covers.
    pub fn destinations(&self) -> &[NodeId] {
        self.set.destinations()
    }

    /// Next-hop `(edge, ratio)` entries of `node` toward `dest`, or `None`
    /// if `dest` is not a covered destination. An empty slice means the
    /// node is the destination itself or cannot reach it.
    pub fn next_hops(&self, node: NodeId, dest: NodeId) -> Option<&[(EdgeId, f64)]> {
        self.set.next_hops(node, dest)
    }

    /// Total next-hop entries across all `(destination, router)` rows, in
    /// `O(1)` — the control-plane state count the scaling ablation
    /// reports.
    pub fn entry_count(&self) -> usize {
        self.set.entry_count()
    }

    /// The backing flat [`FibSet`] — what per-packet consumers (the
    /// simulator) resolve destination slots against.
    pub fn fib(&self) -> &FibSet {
        &self.set
    }

    /// Bytes reserved by the backing FIB arenas (capacities, not lengths).
    pub fn arena_bytes(&self) -> usize {
        self.set.arena_bytes()
    }
}

impl From<FibSet> for ForwardingTable {
    fn from(set: FibSet) -> ForwardingTable {
        ForwardingTable { set }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_table() -> ForwardingTable {
        // One destination (node 3): node 0 splits 0.3/0.7, nodes 1 and 2
        // forward deterministically.
        ForwardingTable::new(
            4,
            vec![NodeId::new(3)],
            vec![vec![
                vec![(EdgeId::new(0), 0.3), (EdgeId::new(1), 0.7)],
                vec![(EdgeId::new(2), 1.0)],
                vec![(EdgeId::new(3), 1.0)],
                vec![],
            ]],
        )
    }

    #[test]
    fn lookup_matches_construction() {
        let fib = diamond_table();
        assert_eq!(fib.destinations(), &[NodeId::new(3)]);
        assert_eq!(fib.entry_count(), 4);
        let hops = fib.next_hops(NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(hops, &[(EdgeId::new(0), 0.3), (EdgeId::new(1), 0.7)]);
        assert!(fib
            .next_hops(NodeId::new(3), NodeId::new(3))
            .unwrap()
            .is_empty());
        assert!(fib.next_hops(NodeId::new(0), NodeId::new(1)).is_none());
    }

    #[test]
    fn slot_lookup_and_selection() {
        let fib = diamond_table();
        let set = fib.fib();
        let slot = set.dest_slot(NodeId::new(3)).unwrap();
        assert_eq!(set.dest_slot(NodeId::new(1)), None);
        let row = set.row(slot, NodeId::new(0));
        assert_eq!(row.len(), 2);
        // Below 0.3 → edge 0; at/above → edge 1 (the legacy `x < acc`
        // strictness: a draw equal to a boundary goes right).
        assert_eq!(row.select(0.0), EdgeId::new(0));
        assert_eq!(row.select(0.29999), EdgeId::new(0));
        assert_eq!(row.select(0.3), EdgeId::new(1));
        assert_eq!(row.select(0.999_999_999), EdgeId::new(1));
        // The final cumulative is pinned to exactly 1.0.
        assert_eq!(row.cum_prob(1), 1.0);
    }

    #[test]
    fn rows_iterates_every_cell() {
        let fib = diamond_table();
        let cells: Vec<_> = fib.fib().rows().collect();
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|&(t, _, _)| t == NodeId::new(3)));
        let total: usize = cells.iter().map(|(_, _, r)| r.len()).sum();
        assert_eq!(total, fib.entry_count());
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn duplicate_destinations_rejected() {
        let rows = vec![vec![], vec![]];
        ForwardingTable::new(
            2,
            vec![NodeId::new(1), NodeId::new(1)],
            vec![rows.clone(), rows],
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_destination_rejected() {
        ForwardingTable::new(2, vec![NodeId::new(5)], vec![vec![vec![], vec![]]]);
    }

    #[test]
    fn warm_rebuild_reuses_and_matches() {
        use crate::engine::RoutingEngine;
        use crate::traffic_dist::SplitRule;
        use spef_topology::standard;

        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let w = vec![1.0; net.link_count()];
        let mut engine = RoutingEngine::new(net.graph());
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine.build_split_tables(SplitRule::EvenEcmp).unwrap();

        let fresh = FibSet::from_split_table_set(net.node_count(), &dests, engine.split_tables());
        let mut warm = FibSet::new();
        for _ in 0..3 {
            warm.rebuild_from_split_table_set(net.node_count(), &dests, engine.split_tables());
            assert!(warm == fresh, "warm rebuild must match a fresh build");
        }
    }
}
