//! Algorithm 1 of the paper: distributed dual decomposition for the first
//! link weights.
//!
//! The Lagrangian dual of `TE(V, G, c, D)` separates per link and per
//! destination. Each iteration with weights `w(k)`:
//!
//! 1. every link solves `Link_e(V_e; w_e)` in closed form
//!    ([`Objective::link_optimal_spare`]),
//! 2. every destination solves `Route_t(w; d^t)` — a min-cost flow without
//!    capacities, i.e. *all demand on shortest paths under `w(k)`* (we split
//!    evenly across ties, a valid subgradient choice),
//! 3. every link updates its weight by projected subgradient, Eq. (16):
//!    `w ← (w − γ_k (c − f − s))₊`.
//!
//! The optimality measure is the paper's dual gap
//! `gap(w, s, f) = Σ_e w_e (f_e + s_e − c_e)`, and the recorded
//! dual-objective trace regenerates Fig. 12(a).
//!
//! Theorem 4.1: with `Σγ_k = ∞, γ_k → 0` the weights converge to the
//! optimal `w*`; with no saturated links `w*` is unique and
//! `s* = V'⁻¹(w*)`, `f* = c − s*`.

use spef_graph::NodeId;
use spef_topology::{Network, TrafficMatrix};

use crate::engine::RoutingEngine;
use crate::solver::{ConvergenceCriteria, DdSession, TeWorkspace};
use crate::traffic_dist::{Flows, SplitRule};
use crate::{Objective, SpefError};

/// Step-size schedule for the subgradient updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepRule {
    /// Fixed step `γ_k = γ`.
    Constant(f64),
    /// The paper's default, scaled: `γ_k = ratio / max_e c_e`
    /// (§V.F: "setting the step size to the reciprocal of the maximum link
    /// capacity performs well in practice"; `ratio` is the multiplier shown
    /// in the legends of Fig. 12).
    DefaultRatio(f64),
    /// Diminishing `γ_k = γ₀ / (1 + k)` — satisfies the convergence
    /// conditions of Theorem 4.1 exactly.
    Diminishing(f64),
}

impl StepRule {
    /// Resolves the step size for iteration `k` given the problem scale
    /// `default_scale` (the `1/max c` or `1/max f*` reference value).
    pub fn step(self, k: usize, default_scale: f64) -> f64 {
        match self {
            StepRule::Constant(g) => g,
            StepRule::DefaultRatio(r) => r * default_scale,
            StepRule::Diminishing(g0) => g0 / (1.0 + k as f64),
        }
    }
}

/// Configuration of Algorithm 1.
#[derive(Debug, Clone)]
pub struct DualDecompConfig {
    /// Step-size schedule (default: the paper's `1/max c`).
    pub step: StepRule,
    /// Stopping rules. Defaults to a 2000-iteration budget (the x-range of
    /// Fig. 12(a)) with the derived tolerance `1e-6 × total demand` on the
    /// absolute dual gap.
    pub convergence: ConvergenceCriteria,
    /// Record the dual objective every iteration (Fig. 12(a)). Default true.
    pub record_trace: bool,
}

impl Default for DualDecompConfig {
    fn default() -> Self {
        DualDecompConfig {
            step: StepRule::DefaultRatio(1.0),
            convergence: ConvergenceCriteria::budget(2000),
            record_trace: true,
        }
    }
}

/// Outcome of Algorithm 1.
#[derive(Debug, Clone)]
pub struct DualDecompOutcome {
    /// Final first link weights `w(k)`.
    pub weights: Vec<f64>,
    /// Final per-link spare capacities `s(k)` (solutions of `Link_e`).
    pub spare: Vec<f64>,
    /// Final routing `f(k)` (the `Route_t` flows). Note these are
    /// all-or-nothing shortest-path flows and oscillate between iterates;
    /// use [`average_flows`](Self::average_flows) for a primal solution.
    pub flows: Flows,
    /// Ergodic mean of the `Route_t` flows over all iterations — the
    /// standard primal recovery for subgradient methods, converging to an
    /// optimal multi-commodity flow.
    pub average_flows: Vec<f64>,
    /// Dual objective value per iteration (Fig. 12(a)); empty unless
    /// `record_trace`.
    pub dual_objective_trace: Vec<f64>,
    /// Dual gap per iteration; empty unless `record_trace`.
    pub gap_trace: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the gap tolerance was met.
    pub converged: bool,
}

/// Weight floor applied before shortest-path computation. The projection
/// `(·)₊` can park weights at exactly zero, where equal-distance ties would
/// strand nodes in the DAG (see `spef-graph`); the paper's optimal weights
/// are strictly positive (Theorem 3.1), so the floor is semantically
/// neutral.
pub const WEIGHT_FLOOR: f64 = 1e-9;

/// Runs Algorithm 1 cold on a fresh workspace.
///
/// # Errors
///
/// * [`SpefError::InvalidInput`] on size mismatches or an empty matrix,
/// * [`SpefError::UnroutableDemand`] if a demand pair is disconnected.
#[deprecated(
    since = "0.6.0",
    note = "use `TeSolver::solve` / `solve_in` on `DualDecompConfig`"
)]
pub fn solve(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &DualDecompConfig,
) -> Result<DualDecompOutcome, SpefError> {
    solve_in(network, traffic, objective, config, &mut TeWorkspace::new())
}

/// Runs Algorithm 1 in the caller's workspace.
///
/// A topology/destination-compatible saved multiplier vector seeds `w(0)`
/// (any `w ≥ 0` is a valid dual start, so no further checks are needed);
/// otherwise the paper's cold start `w(0) = 1/c` is used. Under
/// [`ConvergenceCriteria::pinned`] the saved state is ignored and exactly
/// `max_iterations` subgradient steps run.
pub(crate) fn solve_in(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &DualDecompConfig,
    ws: &mut TeWorkspace,
) -> Result<DualDecompOutcome, SpefError> {
    crate::te::validate_sizes(network, traffic, objective)?;
    let dests = traffic.destinations();
    if dests.is_empty() {
        return Err(SpefError::InvalidInput(
            "traffic matrix is empty".to_string(),
        ));
    }
    if config.convergence.max_iterations == 0 {
        return Err(SpefError::InvalidInput(
            "max_iterations must be at least 1".to_string(),
        ));
    }
    let g = network.graph();
    let caps = network.capacities();
    let max_cap = caps.iter().cloned().fold(0.0, f64::max);
    let default_scale = 1.0 / max_cap;
    let gap_tol = config
        .convergence
        .gap_tolerance
        .unwrap_or(1e-6 * traffic.total_demand().max(1.0));

    // Effective tile: a tile covering every destination runs dense.
    let tile = ws.tile.filter(|&t| t < dests.len());
    let mut engine = RoutingEngine::with_state(g, ws.take_engine(g));
    let dd = &mut ws.dd;
    let warm = !config.convergence.pinned && dd.try_warm_start(g, &dests, tile);
    // Until the run completes, nothing claims the buffers solve anything.
    dd.forget();
    if !warm {
        // Paper §V.F: w(0) = 1/c is a proper choice.
        dd.weights.clear();
        dd.weights.extend(caps.iter().map(|c| 1.0 / c));
    }
    let result = run(
        traffic,
        objective,
        config,
        &dests,
        caps,
        gap_tol,
        default_scale,
        tile,
        &mut engine,
        dd,
    );
    ws.put_engine(engine.into_state());
    match result {
        Ok((dual_trace, gap_trace, iterations, converged)) => {
            let dd = &mut ws.dd;
            dd.record_solution(g, &dests, tile);
            Ok(DualDecompOutcome {
                weights: dd.weights.clone(),
                spare: dd.spare.clone(),
                flows: dd.flows.clone(),
                average_flows: dd.average_flows.clone(),
                dual_objective_trace: dual_trace,
                gap_trace,
                iterations,
                converged,
            })
        }
        Err(e) => {
            ws.dd.forget();
            Err(e)
        }
    }
}

/// The subgradient loop, operating on the session buffers. `dd.weights`
/// must hold the starting multipliers on entry and holds the final ones on
/// successful exit.
#[allow(clippy::too_many_arguments)]
fn run(
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &DualDecompConfig,
    dests: &[NodeId],
    caps: &[f64],
    gap_tol: f64,
    default_scale: f64,
    tile: Option<usize>,
    engine: &mut RoutingEngine<'_>,
    dd: &mut DdSession,
) -> Result<(Vec<f64>, Vec<f64>, usize, bool), SpefError> {
    let m = caps.len();
    let pinned = config.convergence.pinned;
    let mut dual_trace = Vec::new();
    let mut gap_trace = Vec::new();
    dd.spare.clear();
    dd.spare.resize(m, 0.0);
    dd.floored.clear();
    dd.floored.resize(m, 0.0);
    dd.average_flows.clear();
    dd.average_flows.resize(m, 0.0);
    let mut converged = false;
    let mut iterations = 0;

    for k in 0..config.convergence.max_iterations {
        iterations = k + 1;
        // Per-link subproblem.
        for (e, (sp, (&w, &c))) in dd
            .spare
            .iter_mut()
            .zip(dd.weights.iter().zip(caps))
            .enumerate()
        {
            *sp = objective.link_optimal_spare(e.into(), w, c);
        }
        // Route_t: all demand on shortest paths under w(k).
        for (fl, w) in dd.floored.iter_mut().zip(&dd.weights) {
            *fl = w.max(WEIGHT_FLOOR);
        }
        // Dual objective: Σ_e [V(s) − w·s + w·c] − Σ_t Σ_s d^t_s · dist_t(s).
        // Both paths fold it in the same order — link terms first, then the
        // destination terms in ascending order (the tiled closure folds
        // them per tile while that tile's DAGs are live) — so the trace is
        // bit-identical either way.
        if let Some(tile) = tile {
            let record = config.record_trace;
            let mut dual = 0.0;
            if record {
                for (e, ((&s, &w), &c)) in dd.spare.iter().zip(&dd.weights).zip(caps).enumerate() {
                    dual += objective.utility(e.into(), s) - w * s + w * c;
                }
            }
            // DD only needs the aggregate Route_t flows: tiled distribution
            // drops the per-destination columns entirely.
            engine.distribute_tiled(
                &dd.floored,
                dests,
                0.0,
                traffic,
                SplitRule::EvenEcmp,
                tile,
                false,
                &mut dd.flows,
                |_, chunk, dags, _| {
                    if record {
                        for (i, &t) in chunk.iter().enumerate() {
                            let dag = dags.dag(i);
                            traffic.demands_to_into(t, &mut dd.demand_buf);
                            for (s, &d) in dd.demand_buf.iter().enumerate() {
                                if d > 0.0 {
                                    dual -= d * dag.distance(s.into());
                                }
                            }
                        }
                    }
                    Ok(())
                },
            )?;
            if record {
                dual_trace.push(dual);
            }
        } else {
            engine.build_dags(&dd.floored, dests, 0.0)?;
            engine.distribute_into(traffic, SplitRule::EvenEcmp, &mut dd.flows)?;

            if config.record_trace {
                let mut dual = 0.0;
                for (e, ((&s, &w), &c)) in dd.spare.iter().zip(&dd.weights).zip(caps).enumerate() {
                    dual += objective.utility(e.into(), s) - w * s + w * c;
                }
                for (i, &t) in dests.iter().enumerate() {
                    let dag = engine.dag_set().dag(i);
                    traffic.demands_to_into(t, &mut dd.demand_buf);
                    for (s, &d) in dd.demand_buf.iter().enumerate() {
                        if d > 0.0 {
                            dual -= d * dag.distance(s.into());
                        }
                    }
                }
                dual_trace.push(dual);
            }
        }

        // Dual gap (the paper's optimality measure).
        let gap: f64 = (0..m)
            .map(|e| dd.weights[e] * (dd.flows.aggregate()[e] + dd.spare[e] - caps[e]))
            .sum();
        if config.record_trace {
            gap_trace.push(gap);
        }
        let step = config.step.step(k, default_scale);
        // Subgradient of the dual at w is (c − f − s); project onto w ≥ 0.
        let agg = dd.flows.aggregate();
        for ((w, &c), (&f, &s)) in dd
            .weights
            .iter_mut()
            .zip(caps)
            .zip(agg.iter().zip(&dd.spare))
        {
            *w = (*w - step * (c - f - s)).max(0.0);
        }
        // Ergodic primal recovery: running mean over iterations.
        let kf = (k + 1) as f64;
        for (avg, cur) in dd.average_flows.iter_mut().zip(dd.flows.aggregate()) {
            *avg += (cur - *avg) / kf;
        }
        if gap.abs() < gap_tol {
            converged = true;
            if !pinned {
                break;
            }
        } else if pinned {
            converged = false;
        }
    }

    Ok((dual_trace, gap_trace, iterations, converged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frank_wolfe::FrankWolfeConfig;
    use crate::solver::{TeInstance, TeSolver};
    use crate::te::TeSolution;
    use spef_topology::standard;

    /// Cold-solve helpers: these tests exercise the algorithms, not the
    /// session machinery, so each call gets a fresh workspace.
    fn solve(
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        config: &DualDecompConfig,
    ) -> Result<DualDecompOutcome, SpefError> {
        solve_in(network, traffic, objective, config, &mut TeWorkspace::new())
    }

    fn fw_reference(
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
    ) -> TeSolution {
        FrankWolfeConfig::default()
            .solve(TeInstance::new(network, traffic, objective))
            .unwrap()
    }

    fn fig1_setup() -> (Network, TrafficMatrix, Objective) {
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let obj = Objective::proportional(net.link_count());
        (net, tm, obj)
    }

    #[test]
    fn dual_objective_decreases_toward_optimum() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            convergence: ConvergenceCriteria::budget(3000),
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        let primal = fw_reference(&net, &tm, &obj).utility;
        // Weak duality: every dual value upper-bounds the primal optimum.
        for &d in &out.dual_objective_trace {
            assert!(d >= primal - 1e-6, "dual {d} below primal {primal}");
        }
        // And the trace approaches it.
        let last = *out.dual_objective_trace.last().unwrap();
        assert!(
            last - primal < 0.05 * primal.abs().max(1.0),
            "dual {last} far from primal {primal}"
        );
    }

    #[test]
    fn weights_converge_to_marginal_utilities() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            convergence: ConvergenceCriteria::budget(6000),
            step: StepRule::DefaultRatio(1.0),
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        let fw = fw_reference(&net, &tm, &obj);
        // TABLE I β=1 weights: 3, 10, 1.5, 1.5 (within subgradient accuracy).
        for e in 0..4 {
            assert!(
                (out.weights[e] - fw.weights[e]).abs() < 0.15 * fw.weights[e],
                "edge {e}: dual {} vs primal {}",
                out.weights[e],
                fw.weights[e]
            );
        }
    }

    #[test]
    fn larger_step_oscillates_more() {
        // §V.F: "too large a step size would cause a little oscillation".
        // Measure trace variance over the tail.
        let (net, tm, obj) = fig1_setup();
        let variance_of = |ratio: f64| {
            let cfg = DualDecompConfig {
                step: StepRule::DefaultRatio(ratio),
                convergence: ConvergenceCriteria::budget(800),
                ..DualDecompConfig::default()
            };
            let out = solve(&net, &tm, &obj, &cfg).unwrap();
            let tail = &out.dual_objective_trace[600..];
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / tail.len() as f64
        };
        // A 20x step produces visibly more oscillation than the default.
        assert!(variance_of(20.0) > variance_of(1.0));
    }

    #[test]
    fn diminishing_steps_converge() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            step: StepRule::Diminishing(1.0),
            convergence: ConvergenceCriteria::budget(4000),
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        let fw = fw_reference(&net, &tm, &obj);
        let last = *out.dual_objective_trace.last().unwrap();
        assert!(last - fw.utility < 0.1 * fw.utility.abs().max(1.0));
    }

    #[test]
    fn gap_trace_matches_definition() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            convergence: ConvergenceCriteria::budget(50),
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        assert_eq!(out.gap_trace.len(), out.iterations);
        assert_eq!(out.dual_objective_trace.len(), out.iterations);
    }

    #[test]
    fn trace_disabled_when_not_recording() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            record_trace: false,
            convergence: ConvergenceCriteria::budget(20),
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        assert!(out.dual_objective_trace.is_empty());
        assert!(out.gap_trace.is_empty());
    }

    #[test]
    fn step_rule_arithmetic() {
        assert_eq!(StepRule::Constant(0.5).step(10, 0.1), 0.5);
        assert_eq!(StepRule::DefaultRatio(2.0).step(3, 0.1), 0.2);
        assert_eq!(StepRule::Diminishing(1.0).step(0, 0.1), 1.0);
        assert_eq!(StepRule::Diminishing(1.0).step(9, 0.1), 0.1);
    }

    #[test]
    fn rejects_empty_traffic() {
        let net = standard::fig1();
        let tm = TrafficMatrix::new(4);
        let obj = Objective::proportional(net.link_count());
        assert!(matches!(
            solve(&net, &tm, &obj, &DualDecompConfig::default()),
            Err(SpefError::InvalidInput(_))
        ));
    }
}
