//! Algorithm 1 of the paper: distributed dual decomposition for the first
//! link weights.
//!
//! The Lagrangian dual of `TE(V, G, c, D)` separates per link and per
//! destination. Each iteration with weights `w(k)`:
//!
//! 1. every link solves `Link_e(V_e; w_e)` in closed form
//!    ([`Objective::link_optimal_spare`]),
//! 2. every destination solves `Route_t(w; d^t)` — a min-cost flow without
//!    capacities, i.e. *all demand on shortest paths under `w(k)`* (we split
//!    evenly across ties, a valid subgradient choice),
//! 3. every link updates its weight by projected subgradient, Eq. (16):
//!    `w ← (w − γ_k (c − f − s))₊`.
//!
//! The optimality measure is the paper's dual gap
//! `gap(w, s, f) = Σ_e w_e (f_e + s_e − c_e)`, and the recorded
//! dual-objective trace regenerates Fig. 12(a).
//!
//! Theorem 4.1: with `Σγ_k = ∞, γ_k → 0` the weights converge to the
//! optimal `w*`; with no saturated links `w*` is unique and
//! `s* = V'⁻¹(w*)`, `f* = c − s*`.

use spef_topology::{Network, TrafficMatrix};

use crate::engine::RoutingEngine;
use crate::traffic_dist::{Flows, SplitRule};
use crate::{Objective, SpefError};

/// Step-size schedule for the subgradient updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepRule {
    /// Fixed step `γ_k = γ`.
    Constant(f64),
    /// The paper's default, scaled: `γ_k = ratio / max_e c_e`
    /// (§V.F: "setting the step size to the reciprocal of the maximum link
    /// capacity performs well in practice"; `ratio` is the multiplier shown
    /// in the legends of Fig. 12).
    DefaultRatio(f64),
    /// Diminishing `γ_k = γ₀ / (1 + k)` — satisfies the convergence
    /// conditions of Theorem 4.1 exactly.
    Diminishing(f64),
}

impl StepRule {
    /// Resolves the step size for iteration `k` given the problem scale
    /// `default_scale` (the `1/max c` or `1/max f*` reference value).
    pub fn step(self, k: usize, default_scale: f64) -> f64 {
        match self {
            StepRule::Constant(g) => g,
            StepRule::DefaultRatio(r) => r * default_scale,
            StepRule::Diminishing(g0) => g0 / (1.0 + k as f64),
        }
    }
}

/// Configuration of Algorithm 1.
#[derive(Debug, Clone)]
pub struct DualDecompConfig {
    /// Step-size schedule (default: the paper's `1/max c`).
    pub step: StepRule,
    /// Iteration budget (default 2000, the x-range of Fig. 12(a)).
    pub max_iterations: usize,
    /// Stop when `|gap|` falls below this (default 1e-6 × total demand).
    pub gap_tolerance: Option<f64>,
    /// Record the dual objective every iteration (Fig. 12(a)). Default true.
    pub record_trace: bool,
}

impl Default for DualDecompConfig {
    fn default() -> Self {
        DualDecompConfig {
            step: StepRule::DefaultRatio(1.0),
            max_iterations: 2000,
            gap_tolerance: None,
            record_trace: true,
        }
    }
}

/// Outcome of Algorithm 1.
#[derive(Debug, Clone)]
pub struct DualDecompOutcome {
    /// Final first link weights `w(k)`.
    pub weights: Vec<f64>,
    /// Final per-link spare capacities `s(k)` (solutions of `Link_e`).
    pub spare: Vec<f64>,
    /// Final routing `f(k)` (the `Route_t` flows). Note these are
    /// all-or-nothing shortest-path flows and oscillate between iterates;
    /// use [`average_flows`](Self::average_flows) for a primal solution.
    pub flows: Flows,
    /// Ergodic mean of the `Route_t` flows over all iterations — the
    /// standard primal recovery for subgradient methods, converging to an
    /// optimal multi-commodity flow.
    pub average_flows: Vec<f64>,
    /// Dual objective value per iteration (Fig. 12(a)); empty unless
    /// `record_trace`.
    pub dual_objective_trace: Vec<f64>,
    /// Dual gap per iteration; empty unless `record_trace`.
    pub gap_trace: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the gap tolerance was met.
    pub converged: bool,
}

/// Weight floor applied before shortest-path computation. The projection
/// `(·)₊` can park weights at exactly zero, where equal-distance ties would
/// strand nodes in the DAG (see `spef-graph`); the paper's optimal weights
/// are strictly positive (Theorem 3.1), so the floor is semantically
/// neutral.
pub const WEIGHT_FLOOR: f64 = 1e-9;

/// Runs Algorithm 1.
///
/// # Errors
///
/// * [`SpefError::InvalidInput`] on size mismatches or an empty matrix,
/// * [`SpefError::UnroutableDemand`] if a demand pair is disconnected.
pub fn solve(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &DualDecompConfig,
) -> Result<DualDecompOutcome, SpefError> {
    crate::te::validate_sizes(network, traffic, objective)?;
    let dests = traffic.destinations();
    if dests.is_empty() {
        return Err(SpefError::InvalidInput(
            "traffic matrix is empty".to_string(),
        ));
    }
    let g = network.graph();
    let m = g.edge_count();
    let caps = network.capacities();
    let max_cap = caps.iter().cloned().fold(0.0, f64::max);
    let default_scale = 1.0 / max_cap;
    let gap_tol = config
        .gap_tolerance
        .unwrap_or(1e-6 * traffic.total_demand().max(1.0));
    if config.max_iterations == 0 {
        return Err(SpefError::InvalidInput(
            "max_iterations must be at least 1".to_string(),
        ));
    }

    // Paper §V.F: w(0) = 1/c is a proper choice.
    let mut weights: Vec<f64> = caps.iter().map(|c| 1.0 / c).collect();
    let mut dual_trace = Vec::new();
    let mut gap_trace = Vec::new();

    let mut spare = vec![0.0; m];
    let mut average_flows = vec![0.0; m];
    let mut converged = false;
    let mut iterations = 0;

    // Batched routing engine with buffers reused across iterations.
    let mut engine = RoutingEngine::new(g);
    let mut f = Flows::empty();
    let mut floored = vec![0.0; m];
    let mut demands = Vec::new();

    for k in 0..config.max_iterations {
        iterations = k + 1;
        // Per-link subproblem.
        for e in 0..m {
            spare[e] = objective.link_optimal_spare(e.into(), weights[e], caps[e]);
        }
        // Route_t: all demand on shortest paths under w(k).
        for (fl, w) in floored.iter_mut().zip(&weights) {
            *fl = w.max(WEIGHT_FLOOR);
        }
        engine.build_dags(&floored, &dests, 0.0)?;
        engine.distribute_into(traffic, SplitRule::EvenEcmp, &mut f)?;

        // Dual objective: Σ_e [V(s) − w·s + w·c] − Σ_t Σ_s d^t_s · dist_t(s).
        if config.record_trace {
            let mut dual = 0.0;
            for e in 0..m {
                dual += objective.utility(e.into(), spare[e]) - weights[e] * spare[e]
                    + weights[e] * caps[e];
            }
            for (i, &t) in dests.iter().enumerate() {
                let dag = engine.dag_set().dag(i);
                traffic.demands_to_into(t, &mut demands);
                for (s, &d) in demands.iter().enumerate() {
                    if d > 0.0 {
                        dual -= d * dag.distance(s.into());
                    }
                }
            }
            dual_trace.push(dual);
        }

        // Dual gap (the paper's optimality measure).
        let gap: f64 = (0..m)
            .map(|e| weights[e] * (f.aggregate()[e] + spare[e] - caps[e]))
            .sum();
        if config.record_trace {
            gap_trace.push(gap);
        }
        let step = config.step.step(k, default_scale);
        // Subgradient of the dual at w is (c − f − s); project onto w ≥ 0.
        for e in 0..m {
            weights[e] = (weights[e] - step * (caps[e] - f.aggregate()[e] - spare[e])).max(0.0);
        }
        // Ergodic primal recovery: running mean over iterations.
        let kf = (k + 1) as f64;
        for (avg, cur) in average_flows.iter_mut().zip(f.aggregate()) {
            *avg += (cur - *avg) / kf;
        }
        if gap.abs() < gap_tol {
            converged = true;
            break;
        }
    }

    Ok(DualDecompOutcome {
        weights,
        spare,
        flows: f,
        average_flows,
        dual_objective_trace: dual_trace,
        gap_trace,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frank_wolfe::{self, FrankWolfeConfig};
    use spef_topology::standard;

    fn fig1_setup() -> (Network, TrafficMatrix, Objective) {
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let obj = Objective::proportional(net.link_count());
        (net, tm, obj)
    }

    #[test]
    fn dual_objective_decreases_toward_optimum() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            max_iterations: 3000,
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        let primal = frank_wolfe::solve(&net, &tm, &obj, &FrankWolfeConfig::default())
            .unwrap()
            .utility;
        // Weak duality: every dual value upper-bounds the primal optimum.
        for &d in &out.dual_objective_trace {
            assert!(d >= primal - 1e-6, "dual {d} below primal {primal}");
        }
        // And the trace approaches it.
        let last = *out.dual_objective_trace.last().unwrap();
        assert!(
            last - primal < 0.05 * primal.abs().max(1.0),
            "dual {last} far from primal {primal}"
        );
    }

    #[test]
    fn weights_converge_to_marginal_utilities() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            max_iterations: 6000,
            step: StepRule::DefaultRatio(1.0),
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        let fw = frank_wolfe::solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        // TABLE I β=1 weights: 3, 10, 1.5, 1.5 (within subgradient accuracy).
        for e in 0..4 {
            assert!(
                (out.weights[e] - fw.weights[e]).abs() < 0.15 * fw.weights[e],
                "edge {e}: dual {} vs primal {}",
                out.weights[e],
                fw.weights[e]
            );
        }
    }

    #[test]
    fn larger_step_oscillates_more() {
        // §V.F: "too large a step size would cause a little oscillation".
        // Measure trace variance over the tail.
        let (net, tm, obj) = fig1_setup();
        let variance_of = |ratio: f64| {
            let cfg = DualDecompConfig {
                step: StepRule::DefaultRatio(ratio),
                max_iterations: 800,
                ..DualDecompConfig::default()
            };
            let out = solve(&net, &tm, &obj, &cfg).unwrap();
            let tail = &out.dual_objective_trace[600..];
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / tail.len() as f64
        };
        // A 20x step produces visibly more oscillation than the default.
        assert!(variance_of(20.0) > variance_of(1.0));
    }

    #[test]
    fn diminishing_steps_converge() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            step: StepRule::Diminishing(1.0),
            max_iterations: 4000,
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        let fw = frank_wolfe::solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        let last = *out.dual_objective_trace.last().unwrap();
        assert!(last - fw.utility < 0.1 * fw.utility.abs().max(1.0));
    }

    #[test]
    fn gap_trace_matches_definition() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            max_iterations: 50,
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        assert_eq!(out.gap_trace.len(), out.iterations);
        assert_eq!(out.dual_objective_trace.len(), out.iterations);
    }

    #[test]
    fn trace_disabled_when_not_recording() {
        let (net, tm, obj) = fig1_setup();
        let cfg = DualDecompConfig {
            record_trace: false,
            max_iterations: 20,
            ..DualDecompConfig::default()
        };
        let out = solve(&net, &tm, &obj, &cfg).unwrap();
        assert!(out.dual_objective_trace.is_empty());
        assert!(out.gap_trace.is_empty());
    }

    #[test]
    fn step_rule_arithmetic() {
        assert_eq!(StepRule::Constant(0.5).step(10, 0.1), 0.5);
        assert_eq!(StepRule::DefaultRatio(2.0).step(3, 0.1), 0.2);
        assert_eq!(StepRule::Diminishing(1.0).step(0, 0.1), 1.0);
        assert_eq!(StepRule::Diminishing(1.0).step(9, 0.1), 0.1);
    }

    #[test]
    fn rejects_empty_traffic() {
        let net = standard::fig1();
        let tm = TrafficMatrix::new(4);
        let obj = Objective::proportional(net.link_count());
        assert!(matches!(
            solve(&net, &tm, &obj, &DualDecompConfig::default()),
            Err(SpefError::InvalidInput(_))
        ));
    }
}
