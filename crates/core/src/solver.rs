//! Solver sessions: the unified [`TeSolver`] trait, the [`TeWorkspace`]
//! that persists across solves, and the shared [`ConvergenceCriteria`].
//!
//! Every TE-style solver in this crate — Frank–Wolfe (with the β = 0 LP
//! fallback), Algorithm 1 (dual decomposition), Algorithm 2 (NEM) and the
//! full SPEF pipeline — exposes the same two entry points, mirroring
//! `LinearProgram::solve`/`resolve` from `spef-lp`:
//!
//! * [`TeSolver::solve`] — a **cold** solve on a fresh workspace;
//! * [`TeSolver::solve_in`] — a solve **in** a caller-held
//!   [`TeWorkspace`]: arenas (CSR adjacency, DAG sets, split tables, flow
//!   and demand buffers, the simplex tableau) are reused across calls,
//!   and when the workspace holds a compatible previous solution the
//!   solver **warm-starts** from it.
//!
//! ## Warm-start and cold-fallback rules
//!
//! A saved solution is only used when its fingerprint matches the new
//! instance exactly: same topology (node count and edge list, bit for
//! bit), same capacities, same objective (β and every `q_e`), same
//! destination set — and, for Frank–Wolfe, the new demand columns must be
//! per-destination *proportional* to the saved ones (the case produced by
//! load sweeps, which scale a whole matrix uniformly), so the saved flows
//! rescale into a conservation-feasible starting point. Any mismatch
//! falls back to the cold initial point automatically; warm-starting is
//! never a correctness hazard, only a trajectory change.
//!
//! ## Determinism contract
//!
//! * `solve()` is bit-identical to the pre-session free functions.
//! * `solve_in` on a workspace with **no saved solution** (fresh, or
//!   after [`TeWorkspace::clear_solutions`]) is bit-identical to
//!   `solve()`: arena reuse and the SPF skip in
//!   [`RoutingEngine`](crate::RoutingEngine) never change results.
//! * With [`ConvergenceCriteria::pinned`] set, `solve_in` ignores any
//!   saved solution and runs exactly `max_iterations` iterations from
//!   the cold start — the bit-exactness gate used by the equivalence
//!   proptests and the regression-gated sweeps.

use spef_graph::{Graph, NodeId, ShortestPathDag};
use spef_lp::simplex::SimplexWorkspace;
use spef_topology::{Network, TrafficMatrix};

use crate::engine::EngineState;
use crate::traffic_dist::{DistScratch, Flows, SplitTableSet};
use crate::{Objective, SpefError};

/// Relative tolerance of the per-destination demand proportionality check
/// that gates the Frank–Wolfe warm start.
const PROPORTIONALITY_RTOL: f64 = 1e-9;

/// Stopping rules shared by every solver configuration, replacing the
/// former per-config field dialects (`max_iterations` +
/// `relative_gap_tolerance` / `epsilon` / `gap_tolerance`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriteria {
    /// Iteration budget.
    pub max_iterations: usize,
    /// Convergence tolerance; the meaning is solver-specific (Frank–Wolfe:
    /// relative duality gap; NEM: the ε of `f_e ≤ f*_e + ε`; dual
    /// decomposition: absolute dual gap). `None` derives each solver's
    /// documented default.
    pub gap_tolerance: Option<f64>,
    /// Pinned-iteration mode: run exactly `max_iterations` iterations —
    /// no early termination on the tolerance — and ignore any saved
    /// solution in the workspace (always the cold trajectory). This makes
    /// results a pure function of the instance, independent of workspace
    /// history: the bit-exactness gate.
    pub pinned: bool,
}

impl ConvergenceCriteria {
    /// A budget-only criterion: stop on the solver's default tolerance or
    /// after `max_iterations`, whichever comes first.
    pub const fn budget(max_iterations: usize) -> ConvergenceCriteria {
        ConvergenceCriteria {
            max_iterations,
            gap_tolerance: None,
            pinned: false,
        }
    }

    /// A budget with an explicit tolerance.
    pub const fn with_tolerance(max_iterations: usize, tolerance: f64) -> ConvergenceCriteria {
        ConvergenceCriteria {
            max_iterations,
            gap_tolerance: Some(tolerance),
            pinned: false,
        }
    }

    /// Exactly `iterations` iterations, cold trajectory, no early exit.
    pub const fn pinned(iterations: usize) -> ConvergenceCriteria {
        ConvergenceCriteria {
            max_iterations: iterations,
            gap_tolerance: None,
            pinned: true,
        }
    }
}

/// A TE problem instance: the triple every network-level solver consumes.
/// Cheap to copy; borrows everything.
#[derive(Debug, Clone, Copy)]
pub struct TeInstance<'a> {
    /// The network (graph + capacities).
    pub network: &'a Network,
    /// The demand matrix `D`.
    pub traffic: &'a TrafficMatrix,
    /// The utility objective `V`.
    pub objective: &'a Objective,
}

impl<'a> TeInstance<'a> {
    /// Bundles a TE instance.
    pub fn new(
        network: &'a Network,
        traffic: &'a TrafficMatrix,
        objective: &'a Objective,
    ) -> TeInstance<'a> {
        TeInstance {
            network,
            traffic,
            objective,
        }
    }
}

/// An Algorithm 2 (NEM) instance: the second-weight computation runs over
/// already-built shortest-path DAGs against a target distribution.
#[derive(Debug, Clone, Copy)]
pub struct NemInstance<'a> {
    /// The graph the DAGs live on.
    pub graph: &'a Graph,
    /// Per-destination shortest-path DAGs under the first weights,
    /// aligned with `traffic.destinations()`.
    pub dags: &'a [ShortestPathDag],
    /// The demand matrix.
    pub traffic: &'a TrafficMatrix,
    /// The aggregate target distribution `f*`.
    pub target_flows: &'a [f64],
}

impl<'a> NemInstance<'a> {
    /// Bundles a NEM instance.
    pub fn new(
        graph: &'a Graph,
        dags: &'a [ShortestPathDag],
        traffic: &'a TrafficMatrix,
        target_flows: &'a [f64],
    ) -> NemInstance<'a> {
        NemInstance {
            graph,
            dags,
            traffic,
            target_flows,
        }
    }
}

/// The unified solver interface. Implemented by [`FrankWolfeConfig`]
/// (β = 0 dispatches to the exact LP), [`DualDecompConfig`], [`NemConfig`]
/// and [`SpefConfig`] — the configuration *is* the solver; the instance
/// carries the problem data.
///
/// [`FrankWolfeConfig`]: crate::FrankWolfeConfig
/// [`DualDecompConfig`]: crate::DualDecompConfig
/// [`NemConfig`]: crate::NemConfig
/// [`SpefConfig`]: crate::SpefConfig
pub trait TeSolver {
    /// The instance type this solver consumes ([`TeInstance`] for the
    /// network-level solvers, [`NemInstance`] for Algorithm 2).
    type Instance<'i>;
    /// The solution type this solver produces.
    type Output;

    /// Solves `instance` in the caller's workspace: arenas are reused and
    /// a fingerprint-compatible saved solution warm-starts the run (see
    /// the [module docs](self) for the exact rules).
    ///
    /// # Errors
    ///
    /// The same conditions as the solver's documented cold path.
    fn solve_in(
        &self,
        instance: Self::Instance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<Self::Output, SpefError>;

    /// Cold solve on a fresh workspace; bit-identical to the pre-session
    /// free functions.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TeSolver::solve_in`].
    fn solve(&self, instance: Self::Instance<'_>) -> Result<Self::Output, SpefError> {
        self.solve_in(instance, &mut TeWorkspace::new())
    }
}

/// Structural + data fingerprint shared by the per-solver saved states:
/// the topology (node count, edge list) and destination set a solution
/// was computed for.
#[derive(Debug, Default)]
pub(crate) struct TopoFingerprint {
    nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    dests: Vec<NodeId>,
}

impl TopoFingerprint {
    fn matches(&self, graph: &Graph, dests: &[NodeId]) -> bool {
        self.nodes == graph.node_count()
            && self.edges.len() == graph.edge_count()
            && self.dests.as_slice() == dests
            && graph
                .edges()
                .zip(&self.edges)
                .all(|((_, u, v), &(su, sv))| u == su && v == sv)
    }

    fn record(&mut self, graph: &Graph, dests: &[NodeId]) {
        self.nodes = graph.node_count();
        self.edges.clear();
        self.edges.extend(graph.edges().map(|(_, u, v)| (u, v)));
        self.dests.clear();
        self.dests.extend_from_slice(dests);
    }
}

/// Bitwise equality of two f64 slices.
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Frank–Wolfe session state: working buffers that double as the saved
/// solution (after a successful solve, `flows`/`spare` hold the optimum
/// and `saved` describes the instance they solve).
#[derive(Debug, Default)]
pub(crate) struct FwSession {
    pub(crate) flows: Flows,
    pub(crate) target: Flows,
    pub(crate) spare: Vec<f64>,
    pub(crate) kappa: Vec<f64>,
    pub(crate) delta: Vec<f64>,
    pub(crate) init_weights: Vec<f64>,
    demand_buf: Vec<f64>,
    ratio: Vec<f64>,
    saved: Option<FwFingerprint>,
    /// An invalidated fingerprint kept only for its buffer capacity, so
    /// warm re-solves record their solution without reallocating.
    stale: Option<FwFingerprint>,
}

#[derive(Debug, Default)]
struct FwFingerprint {
    topo: TopoFingerprint,
    capacities: Vec<f64>,
    q: Vec<f64>,
    beta: f64,
    smoothing: f64,
    /// Demand columns (one per destination) the saved flows route.
    demands: Vec<Vec<f64>>,
}

impl FwSession {
    /// Checks whether the saved solution can warm-start `(network,
    /// traffic, objective)` and, if so, rescales `self.flows` in place
    /// into a starting point for the new demands. Returns `false` (and
    /// leaves the buffers free for a cold init) on any mismatch.
    pub(crate) fn try_warm_start(
        &mut self,
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        smoothing_fraction: f64,
        dests: &[NodeId],
    ) -> bool {
        let Some(saved) = &self.saved else {
            return false;
        };
        if !saved.topo.matches(network.graph(), dests)
            || !bits_eq(&saved.capacities, network.capacities())
            || saved.beta.to_bits() != objective.beta().to_bits()
            || saved.smoothing.to_bits() != smoothing_fraction.to_bits()
            || saved.q.len() != objective.link_count()
            || !(0..objective.link_count())
                .all(|e| saved.q[e].to_bits() == objective.q(e.into()).to_bits())
        {
            return false;
        }
        // Per-destination proportionality: d'^t = r_t · d^t within a tiny
        // relative tolerance, so r_t · f^t stays conservation-feasible.
        self.ratio.clear();
        for (i, &t) in dests.iter().enumerate() {
            traffic.demands_to_into(t, &mut self.demand_buf);
            let old = &saved.demands[i];
            if old.len() != self.demand_buf.len() {
                return false;
            }
            let (peak_idx, peak) = old
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .map(|(i, &v)| (i, v))
                .unwrap_or((0, 0.0));
            if peak <= 0.0 {
                return false;
            }
            let r = self.demand_buf[peak_idx] / peak;
            if !r.is_finite() || r < 0.0 {
                return false;
            }
            let tol = PROPORTIONALITY_RTOL * peak * r.max(1.0);
            if self
                .demand_buf
                .iter()
                .zip(old)
                .any(|(new, old)| (new - r * old).abs() > tol)
            {
                return false;
            }
            self.ratio.push(r);
        }
        self.flows.scale_per_destination(&self.ratio);
        // The rescaled buffer is a starting point, not a solution: until
        // the next successful solve records a fresh fingerprint, nothing
        // claims it solves anything. The stale fingerprint is parked for
        // its buffer capacity.
        self.stale = self.saved.take();
        true
    }

    /// Records the instance the current `flows` buffer solves.
    pub(crate) fn record_solution(
        &mut self,
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        smoothing_fraction: f64,
        dests: &[NodeId],
    ) {
        let mut saved = self
            .saved
            .take()
            .or_else(|| self.stale.take())
            .unwrap_or_default();
        saved.topo.record(network.graph(), dests);
        saved.capacities.clear();
        saved.capacities.extend_from_slice(network.capacities());
        saved.q.clear();
        saved
            .q
            .extend((0..objective.link_count()).map(|e| objective.q(e.into())));
        saved.beta = objective.beta();
        saved.smoothing = smoothing_fraction;
        if saved.demands.len() != dests.len() {
            saved.demands.resize_with(dests.len(), Vec::new);
        }
        for (col, &t) in saved.demands.iter_mut().zip(dests) {
            traffic.demands_to_into(t, col);
        }
        self.saved = Some(saved);
    }

    /// Forgets the saved solution (arenas are kept).
    pub(crate) fn forget(&mut self) {
        self.saved = None;
    }
}

/// NEM session state: the dual iterate `v` doubles as the saved solution.
#[derive(Debug, Default)]
pub(crate) struct NemSession {
    pub(crate) v: Vec<f64>,
    pub(crate) flows: Flows,
    pub(crate) tables: SplitTableSet,
    pub(crate) scratch: DistScratch,
    pub(crate) demand_buf: Vec<f64>,
    saved: Option<TopoFingerprint>,
}

impl NemSession {
    /// True when the saved `v` may seed the new run (same graph and
    /// destination set; any `v ≥ 0` is a valid projected-gradient start,
    /// so no further checks are needed).
    pub(crate) fn try_warm_start(&mut self, graph: &Graph, dests: &[NodeId]) -> bool {
        let warm = self
            .saved
            .as_ref()
            .is_some_and(|s| s.matches(graph, dests) && self.v.len() == graph.edge_count());
        self.saved = None;
        warm
    }

    /// Records the instance the current `v` solves.
    pub(crate) fn record_solution(&mut self, graph: &Graph, dests: &[NodeId]) {
        let mut saved = self.saved.take().unwrap_or_default();
        saved.record(graph, dests);
        self.saved = Some(saved);
    }

    pub(crate) fn forget(&mut self) {
        self.saved = None;
    }
}

/// Dual-decomposition session state: the multiplier vector `weights`
/// doubles as the saved solution.
#[derive(Debug, Default)]
pub(crate) struct DdSession {
    pub(crate) weights: Vec<f64>,
    pub(crate) spare: Vec<f64>,
    pub(crate) average_flows: Vec<f64>,
    pub(crate) floored: Vec<f64>,
    pub(crate) flows: Flows,
    pub(crate) demand_buf: Vec<f64>,
    saved: Option<TopoFingerprint>,
}

impl DdSession {
    /// True when the saved multipliers may seed the new run (same graph
    /// and destination set; any `w ≥ 0` is a valid dual start).
    pub(crate) fn try_warm_start(&mut self, graph: &Graph, dests: &[NodeId]) -> bool {
        let warm = self
            .saved
            .as_ref()
            .is_some_and(|s| s.matches(graph, dests) && self.weights.len() == graph.edge_count());
        self.saved = None;
        warm
    }

    /// Records the instance the current `weights` solve.
    pub(crate) fn record_solution(&mut self, graph: &Graph, dests: &[NodeId]) {
        let mut saved = self.saved.take().unwrap_or_default();
        saved.record(graph, dests);
        self.saved = Some(saved);
    }

    pub(crate) fn forget(&mut self) {
        self.saved = None;
    }
}

/// A reusable solver workspace: every arena and saved iterate the solvers
/// in this crate can carry from one solve to the next.
///
/// One workspace serves all four solvers — the SPEF pipeline threads the
/// same workspace through its TE, DAG and NEM stages, so a chained sweep
/// (same topology, neighbouring loads) reuses the CSR adjacency, DAG
/// arenas, flow/split/demand buffers, the simplex tableau (β = 0), and —
/// unless cleared or pinned — the previous grid point's solution as a
/// warm start. See the [module docs](self) for the fingerprint rules.
#[derive(Debug, Default)]
pub struct TeWorkspace {
    engine: Option<EngineState>,
    pub(crate) simplex: SimplexWorkspace,
    pub(crate) fw: FwSession,
    pub(crate) nem: NemSession,
    pub(crate) dd: DdSession,
}

impl TeWorkspace {
    /// An empty workspace; arenas grow on first use.
    pub fn new() -> TeWorkspace {
        TeWorkspace::default()
    }

    /// Drops every saved solution while keeping all arenas, so subsequent
    /// `solve_in` calls run the cold trajectory (bit-identical to
    /// [`TeSolver::solve`]) at warm-buffer speed. The result-preserving
    /// mode used by the regression-gated sweep harness.
    pub fn clear_solutions(&mut self) {
        self.fw.forget();
        self.nem.forget();
        self.dd.forget();
    }

    /// Detaches the engine state for attaching to a borrowed graph.
    pub(crate) fn take_engine(&mut self) -> EngineState {
        self.engine.take().unwrap_or_default()
    }

    /// Returns the engine state after a session.
    pub(crate) fn put_engine(&mut self, state: EngineState) {
        self.engine = Some(state);
    }

    /// Number of SPF batch builds the workspace's engine has executed —
    /// skipped (fingerprint-identical) builds are not counted. Exposed
    /// for tests and benches.
    pub fn spf_builds(&self) -> u64 {
        self.engine.as_ref().map_or(0, EngineState::spf_builds)
    }
}

impl TeSolver for crate::FrankWolfeConfig {
    type Instance<'i> = TeInstance<'i>;
    type Output = crate::TeSolution;

    fn solve_in(
        &self,
        instance: TeInstance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<crate::TeSolution, SpefError> {
        crate::te::solve_te_in(
            instance.network,
            instance.traffic,
            instance.objective,
            self,
            workspace,
        )
    }
}

impl TeSolver for crate::DualDecompConfig {
    type Instance<'i> = TeInstance<'i>;
    type Output = crate::DualDecompOutcome;

    fn solve_in(
        &self,
        instance: TeInstance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<crate::DualDecompOutcome, SpefError> {
        crate::dual_decomp::solve_in(
            instance.network,
            instance.traffic,
            instance.objective,
            self,
            workspace,
        )
    }
}

impl TeSolver for crate::NemConfig {
    type Instance<'i> = NemInstance<'i>;
    type Output = crate::NemOutcome;

    fn solve_in(
        &self,
        instance: NemInstance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<crate::NemOutcome, SpefError> {
        crate::nem::solve_in(
            instance.graph,
            instance.dags,
            instance.traffic,
            instance.target_flows,
            self,
            workspace,
        )
    }
}

impl TeSolver for crate::SpefConfig {
    type Instance<'i> = TeInstance<'i>;
    type Output = crate::SpefRouting;

    fn solve_in(
        &self,
        instance: TeInstance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<crate::SpefRouting, SpefError> {
        crate::protocol::build_in(
            instance.network,
            instance.traffic,
            instance.objective,
            self,
            workspace,
        )
    }
}
