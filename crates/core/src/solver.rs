//! Solver sessions: the unified [`TeSolver`] trait, the [`TeWorkspace`]
//! that persists across solves, and the shared [`ConvergenceCriteria`].
//!
//! Every TE-style solver in this crate — Frank–Wolfe (with the β = 0 LP
//! fallback), Algorithm 1 (dual decomposition), Algorithm 2 (NEM) and the
//! full SPEF pipeline — exposes the same two entry points, mirroring
//! `LinearProgram::solve`/`resolve` from `spef-lp`:
//!
//! * [`TeSolver::solve`] — a **cold** solve on a fresh workspace;
//! * [`TeSolver::solve_in`] — a solve **in** a caller-held
//!   [`TeWorkspace`]: arenas (CSR adjacency, DAG sets, split tables, flow
//!   and demand buffers, the simplex tableau) are reused across calls,
//!   and when the workspace holds a compatible previous solution the
//!   solver **warm-starts** from it.
//!
//! ## Warm-start and cold-fallback rules
//!
//! A saved solution is only used when its fingerprint matches the new
//! instance exactly: same topology (node count and edge list, bit for
//! bit), same capacities, same objective (β and every `q_e`), same
//! destination set — and, for Frank–Wolfe, the new demand columns must be
//! per-destination *proportional* to the saved ones (the case produced by
//! load sweeps, which scale a whole matrix uniformly), so the saved flows
//! rescale into a conservation-feasible starting point, **or** an
//! arbitrary demand perturbation whose relative L1 norm is small enough
//! that routing each per-source difference along a shortest path repairs
//! conservation without leaving the saved optimum's neighbourhood.
//! Frank–Wolfe additionally accepts a **link-removal** instance — the new edge list
//! an order-preserving strict subsequence of the saved one with
//! bit-identical endpoints, capacities and `q_e` (what
//! [`Network::without_links`] produces) — by projecting the saved flows
//! onto the surviving edges and re-routing each removed edge's flow along
//! a surviving shortest path, so failure chains restart from the intact
//! optimum instead of cold-solving every degraded topology. Any mismatch
//! falls back to the cold initial point automatically; warm-starting is
//! never a correctness hazard, only a trajectory change.
//!
//! ## Determinism contract
//!
//! * `solve()` is bit-identical to the pre-session free functions.
//! * `solve_in` on a workspace with **no saved solution** (fresh, or
//!   after [`TeWorkspace::clear_solutions`]) is bit-identical to
//!   `solve()`: arena reuse and the SPF skip in
//!   [`RoutingEngine`](crate::RoutingEngine) never change results.
//! * With [`ConvergenceCriteria::pinned`] set, `solve_in` ignores any
//!   saved solution and runs exactly `max_iterations` iterations from
//!   the cold start — the bit-exactness gate used by the equivalence
//!   proptests and the regression-gated sweeps.

use spef_graph::{dijkstra, Graph, NodeId, ShortestPathDag};
use spef_lp::simplex::SimplexWorkspace;
use spef_topology::{Network, TrafficMatrix};

use crate::engine::EngineState;
use crate::traffic_dist::{DistScratch, Flows, SplitTableSet};
use crate::{Objective, SpefError};

/// Relative tolerance of the per-destination demand proportionality check
/// that gates the Frank–Wolfe warm start.
const PROPORTIONALITY_RTOL: f64 = 1e-9;

/// Upper bound on the relative L1 norm of a demand change —
/// `Σ|d'−d| / Σ|d|` over all columns — below which the Frank–Wolfe
/// delta-repair warm start accepts an arbitrary (non-proportional) demand
/// perturbation. Beyond it the saved flows are too far from feasible for
/// the repaired point to beat the cold init's trajectory.
const WARM_START_MAX_REL_L1: f64 = 0.05;

/// Relative Dijkstra tie threshold for reconverging *stale* continuous
/// weights on a degraded topology: two paths count as equal-cost when
/// their lengths differ by at most `STALE_WEIGHT_DAG_RTOL · max_e w_e`.
///
/// Contract: solver-produced weights (marginal utilities) are continuous,
/// so after a failure the surviving weights almost never tie exactly and
/// a zero threshold would collapse every ECMP split to a single path —
/// overstating the stale-weight MLU. Fresh SPEF solves derive their
/// adaptive tolerance from the Bellman slack over the optimal support
/// (§V.G, [`crate::SpefConfig::dijkstra_tolerance`]); on a degraded
/// topology the stale weights solve *nothing*, there is no support to
/// probe, so this coarse threshold — relative to the **maximum** current
/// weight, which keeps it meaningful across objectives where β changes
/// weight magnitudes by orders of magnitude — stands in. Every failure
/// study must use this one constant so stale and re-optimised routings
/// are compared under the same tie rule.
pub const STALE_WEIGHT_DAG_RTOL: f64 = 1e-2;

/// Stopping rules shared by every solver configuration, replacing the
/// former per-config field dialects (`max_iterations` +
/// `relative_gap_tolerance` / `epsilon` / `gap_tolerance`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriteria {
    /// Iteration budget.
    pub max_iterations: usize,
    /// Convergence tolerance; the meaning is solver-specific (Frank–Wolfe:
    /// relative duality gap; NEM: the ε of `f_e ≤ f*_e + ε`; dual
    /// decomposition: absolute dual gap). `None` derives each solver's
    /// documented default.
    pub gap_tolerance: Option<f64>,
    /// Pinned-iteration mode: run exactly `max_iterations` iterations —
    /// no early termination on the tolerance — and ignore any saved
    /// solution in the workspace (always the cold trajectory). This makes
    /// results a pure function of the instance, independent of workspace
    /// history: the bit-exactness gate.
    pub pinned: bool,
}

impl ConvergenceCriteria {
    /// A budget-only criterion: stop on the solver's default tolerance or
    /// after `max_iterations`, whichever comes first.
    pub const fn budget(max_iterations: usize) -> ConvergenceCriteria {
        ConvergenceCriteria {
            max_iterations,
            gap_tolerance: None,
            pinned: false,
        }
    }

    /// A budget with an explicit tolerance.
    pub const fn with_tolerance(max_iterations: usize, tolerance: f64) -> ConvergenceCriteria {
        ConvergenceCriteria {
            max_iterations,
            gap_tolerance: Some(tolerance),
            pinned: false,
        }
    }

    /// Exactly `iterations` iterations, cold trajectory, no early exit.
    pub const fn pinned(iterations: usize) -> ConvergenceCriteria {
        ConvergenceCriteria {
            max_iterations: iterations,
            gap_tolerance: None,
            pinned: true,
        }
    }
}

/// A TE problem instance: the triple every network-level solver consumes.
/// Cheap to copy; borrows everything.
#[derive(Debug, Clone, Copy)]
pub struct TeInstance<'a> {
    /// The network (graph + capacities).
    pub network: &'a Network,
    /// The demand matrix `D`.
    pub traffic: &'a TrafficMatrix,
    /// The utility objective `V`.
    pub objective: &'a Objective,
}

impl<'a> TeInstance<'a> {
    /// Bundles a TE instance.
    pub fn new(
        network: &'a Network,
        traffic: &'a TrafficMatrix,
        objective: &'a Objective,
    ) -> TeInstance<'a> {
        TeInstance {
            network,
            traffic,
            objective,
        }
    }
}

/// An Algorithm 2 (NEM) instance: the second-weight computation runs over
/// already-built shortest-path DAGs against a target distribution.
#[derive(Debug, Clone, Copy)]
pub struct NemInstance<'a> {
    /// The graph the DAGs live on.
    pub graph: &'a Graph,
    /// Per-destination shortest-path DAGs under the first weights,
    /// aligned with `traffic.destinations()`.
    pub dags: &'a [ShortestPathDag],
    /// The demand matrix.
    pub traffic: &'a TrafficMatrix,
    /// The aggregate target distribution `f*`.
    pub target_flows: &'a [f64],
}

impl<'a> NemInstance<'a> {
    /// Bundles a NEM instance.
    pub fn new(
        graph: &'a Graph,
        dags: &'a [ShortestPathDag],
        traffic: &'a TrafficMatrix,
        target_flows: &'a [f64],
    ) -> NemInstance<'a> {
        NemInstance {
            graph,
            dags,
            traffic,
            target_flows,
        }
    }
}

/// The unified solver interface. Implemented by [`FrankWolfeConfig`]
/// (β = 0 dispatches to the exact LP), [`DualDecompConfig`], [`NemConfig`]
/// and [`SpefConfig`] — the configuration *is* the solver; the instance
/// carries the problem data.
///
/// [`FrankWolfeConfig`]: crate::FrankWolfeConfig
/// [`DualDecompConfig`]: crate::DualDecompConfig
/// [`NemConfig`]: crate::NemConfig
/// [`SpefConfig`]: crate::SpefConfig
pub trait TeSolver {
    /// The instance type this solver consumes ([`TeInstance`] for the
    /// network-level solvers, [`NemInstance`] for Algorithm 2).
    type Instance<'i>;
    /// The solution type this solver produces.
    type Output;

    /// Solves `instance` in the caller's workspace: arenas are reused and
    /// a fingerprint-compatible saved solution warm-starts the run (see
    /// the [module docs](self) for the exact rules).
    ///
    /// # Errors
    ///
    /// The same conditions as the solver's documented cold path.
    fn solve_in(
        &self,
        instance: Self::Instance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<Self::Output, SpefError>;

    /// Cold solve on a fresh workspace; bit-identical to the pre-session
    /// free functions.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TeSolver::solve_in`].
    fn solve(&self, instance: Self::Instance<'_>) -> Result<Self::Output, SpefError> {
        self.solve_in(instance, &mut TeWorkspace::new())
    }
}

/// Structural + data fingerprint shared by the per-solver saved states:
/// the topology (node count, edge list) and destination set a solution
/// was computed for.
#[derive(Debug, Default)]
pub(crate) struct TopoFingerprint {
    nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    dests: Vec<NodeId>,
    /// The effective destination tile size the solution was produced
    /// under (`None` = dense/untiled). Tiled and untiled runs are
    /// bit-identical by contract, but a saved iterate only warm-starts a
    /// run on the same execution path so trajectories stay a pure
    /// function of (instance, tile knob).
    tile: Option<usize>,
}

impl TopoFingerprint {
    fn matches(&self, graph: &Graph, dests: &[NodeId], tile: Option<usize>) -> bool {
        self.nodes == graph.node_count()
            && self.edges.len() == graph.edge_count()
            && self.dests.as_slice() == dests
            && self.tile == tile
            && graph
                .edges()
                .zip(&self.edges)
                .all(|((_, u, v), &(su, sv))| u == su && v == sv)
    }

    fn record(&mut self, graph: &Graph, dests: &[NodeId], tile: Option<usize>) {
        self.nodes = graph.node_count();
        self.edges.clear();
        self.edges.extend(graph.edges().map(|(_, u, v)| (u, v)));
        self.dests.clear();
        self.dests.extend_from_slice(dests);
        self.tile = tile;
    }
}

/// Bitwise equality of two f64 slices.
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// How a Frank–Wolfe run was seeded (see [`FwSession::warm_start`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FwStart {
    /// Cold init: even-ECMP on InvCap weights.
    Cold,
    /// Same topology, per-destination proportional demands: the saved
    /// flows rescaled in place (load sweeps).
    Rescaled,
    /// Same topology, arbitrary small demand delta (relative L1 under
    /// [`WARM_START_MAX_REL_L1`]): the saved flows patched by routing
    /// each per-source demand difference along a surviving shortest path
    /// to its destination — the same conservation repair the removal
    /// projection uses, driven by demand deltas instead of removed edges.
    DeltaRepaired,
    /// Edge-subset topology (link removal): the saved flows projected
    /// onto the surviving edges with conservation repair (failure
    /// chains).
    RemovalProjected,
}

/// Frank–Wolfe session state: working buffers that double as the saved
/// solution (after a successful solve, `flows`/`spare` hold the optimum
/// and `saved` describes the instance they solve).
#[derive(Debug, Default)]
pub(crate) struct FwSession {
    pub(crate) flows: Flows,
    pub(crate) target: Flows,
    pub(crate) spare: Vec<f64>,
    pub(crate) kappa: Vec<f64>,
    pub(crate) delta: Vec<f64>,
    pub(crate) init_weights: Vec<f64>,
    demand_buf: Vec<f64>,
    ratio: Vec<f64>,
    saved: Option<FwFingerprint>,
    /// An invalidated fingerprint kept only for its buffer capacity, so
    /// warm re-solves record their solution without reallocating.
    stale: Option<FwFingerprint>,
    /// The last *full-topology* solution of the session: its own flows
    /// snapshot plus the instance it solves. Removal warm starts fall
    /// back to projecting from here, so a failure chain (intact → circuit
    /// 1 down, intact → circuit 2 down, …) warm-starts every degraded
    /// solve from the one intact optimum instead of cold-solving each.
    /// Only non-removal solves refresh it; survives solve errors (the
    /// snapshot is untouched by a failed run's half-blended buffers).
    base: Option<FwFingerprint>,
    base_flows: Flows,
}

#[derive(Debug, Default)]
struct FwFingerprint {
    topo: TopoFingerprint,
    capacities: Vec<f64>,
    q: Vec<f64>,
    beta: f64,
    smoothing: f64,
    /// Demand columns (one per destination) the saved flows route.
    demands: Vec<Vec<f64>>,
}

impl FwFingerprint {
    /// Overwrites `self` with the given instance, reusing buffers.
    fn record_instance(
        &mut self,
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        smoothing_fraction: f64,
        dests: &[NodeId],
        tile: Option<usize>,
    ) {
        self.topo.record(network.graph(), dests, tile);
        self.capacities.clear();
        self.capacities.extend_from_slice(network.capacities());
        self.q.clear();
        self.q
            .extend((0..objective.link_count()).map(|e| objective.q(e.into())));
        self.beta = objective.beta();
        self.smoothing = smoothing_fraction;
        if self.demands.len() != dests.len() {
            self.demands.resize_with(dests.len(), Vec::new);
        }
        for (col, &t) in self.demands.iter_mut().zip(dests) {
            traffic.demands_to_into(t, col);
        }
    }
}

/// Per-destination proportionality gate shared by both warm starts:
/// `d'^t = r_t · d^t` within [`PROPORTIONALITY_RTOL`] for every saved
/// column, with the ratios written to `ratio`. Returns `false` on any
/// mismatch (wrong shape, zero/negative/non-finite ratio, non-proportional
/// column).
fn proportional_ratios(
    saved_demands: &[Vec<f64>],
    traffic: &TrafficMatrix,
    dests: &[NodeId],
    demand_buf: &mut Vec<f64>,
    ratio: &mut Vec<f64>,
) -> bool {
    ratio.clear();
    if saved_demands.len() != dests.len() {
        return false;
    }
    for (i, &t) in dests.iter().enumerate() {
        traffic.demands_to_into(t, demand_buf);
        let old = &saved_demands[i];
        if old.len() != demand_buf.len() {
            return false;
        }
        let (peak_idx, peak) = old
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .map(|(i, &v)| (i, v))
            .unwrap_or((0, 0.0));
        if peak <= 0.0 {
            return false;
        }
        let r = demand_buf[peak_idx] / peak;
        if !r.is_finite() || r < 0.0 {
            return false;
        }
        let tol = PROPORTIONALITY_RTOL * peak * r.max(1.0);
        if demand_buf
            .iter()
            .zip(old)
            .any(|(new, old)| (new - r * old).abs() > tol)
        {
            return false;
        }
        ratio.push(r);
    }
    true
}

/// Greedy InvCap shortest-path descent from `u` toward `v`: repeatedly
/// steps along the out-edge minimising `w_e + dist(target)` (id-tiebroken)
/// and pushes the edge indices onto `path`. Positive weights make `dist`
/// strictly decrease per hop, so this terminates in under `n` hops (bound
/// checked anyway). Returns `false` when `u` cannot reach `v` under
/// `dist`; `path` is cleared first either way.
fn descent_path(
    g: &Graph,
    invcap: &[f64],
    dist: &[f64],
    u: NodeId,
    v: NodeId,
    path: &mut Vec<usize>,
) -> bool {
    path.clear();
    if !dist[u.index()].is_finite() {
        return false;
    }
    let mut x = u;
    let mut hops = 0usize;
    while x != v {
        hops += 1;
        if hops > g.node_count() {
            return false;
        }
        let Some(e) = g.out_edges(x).iter().copied().min_by(|&a, &b| {
            (invcap[a.index()] + dist[g.target(a).index()])
                .total_cmp(&(invcap[b.index()] + dist[g.target(b).index()]))
                .then_with(|| a.index().cmp(&b.index()))
        }) else {
            return false;
        };
        path.push(e.index());
        x = g.target(e);
    }
    true
}

impl FwSession {
    /// Checks whether the saved solution can warm-start `(network,
    /// traffic, objective)` and, if so, rescales `self.flows` in place
    /// into a starting point for the new demands. Returns `false` (and
    /// leaves the buffers free for a cold init) on any mismatch.
    pub(crate) fn try_warm_start(
        &mut self,
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        smoothing_fraction: f64,
        dests: &[NodeId],
        tile: Option<usize>,
    ) -> bool {
        let Some(saved) = &self.saved else {
            return false;
        };
        if !saved.topo.matches(network.graph(), dests, tile)
            || !bits_eq(&saved.capacities, network.capacities())
            || saved.beta.to_bits() != objective.beta().to_bits()
            || saved.smoothing.to_bits() != smoothing_fraction.to_bits()
            || saved.q.len() != objective.link_count()
            || !(0..objective.link_count())
                .all(|e| saved.q[e].to_bits() == objective.q(e.into()).to_bits())
        {
            return false;
        }
        // Per-destination proportionality: d'^t = r_t · d^t within a tiny
        // relative tolerance, so r_t · f^t stays conservation-feasible.
        if !proportional_ratios(
            &saved.demands,
            traffic,
            dests,
            &mut self.demand_buf,
            &mut self.ratio,
        ) {
            return false;
        }
        self.flows.scale_per_destination(&self.ratio);
        // The rescaled buffer is a starting point, not a solution: until
        // the next successful solve records a fresh fingerprint, nothing
        // claims it solves anything. The stale fingerprint is parked for
        // its buffer capacity.
        self.stale = self.saved.take();
        true
    }

    /// The arbitrary-small-delta warm start: same instance fingerprint as
    /// [`try_warm_start`](Self::try_warm_start) except the demands, which
    /// may differ in any pattern as long as the relative L1 norm of the
    /// change (`Σ|d'−d| / Σ|d|` over all columns) stays under
    /// [`WARM_START_MAX_REL_L1`]. Each per-source difference is routed
    /// (signed) along a surviving InvCap shortest path to its
    /// destination — the removal projection's conservation repair, driven
    /// by demand deltas — so the patched flows satisfy the new
    /// conservation constraints exactly. Transiently negative edge flows
    /// are possible and harmless: Frank–Wolfe's target blend pulls the
    /// iterate into the feasible hull and the smoothed barrier keeps the
    /// objective well-defined off it.
    ///
    /// Returns `false` on any mismatch. The fingerprint is parked as
    /// stale *before* patching, so a mid-repair bail (an unreachable
    /// source) leaves a dirty buffer no fingerprint claims — the caller
    /// then cold-inits over it.
    fn try_delta_repair(
        &mut self,
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        smoothing_fraction: f64,
        dests: &[NodeId],
        tile: Option<usize>,
    ) -> bool {
        let g = network.graph();
        let m = g.edge_count();
        {
            let Some(saved) = &self.saved else {
                return false;
            };
            if !saved.topo.matches(g, dests, tile)
                || !bits_eq(&saved.capacities, network.capacities())
                || saved.beta.to_bits() != objective.beta().to_bits()
                || saved.smoothing.to_bits() != smoothing_fraction.to_bits()
                || saved.q.len() != objective.link_count()
                || !(0..objective.link_count())
                    .all(|e| saved.q[e].to_bits() == objective.q(e.into()).to_bits())
                || saved.demands.len() != dests.len()
                || self.flows.destinations() != dests
                || (0..dests.len()).any(|i| self.flows.column(i).len() != m)
            {
                return false;
            }
            let mut total = 0.0f64;
            let mut base = 0.0f64;
            for (i, &t) in dests.iter().enumerate() {
                traffic.demands_to_into(t, &mut self.demand_buf);
                let old = &saved.demands[i];
                if old.len() != self.demand_buf.len() {
                    return false;
                }
                for (new, old) in self.demand_buf.iter().zip(old) {
                    total += (new - old).abs();
                    base += old.abs();
                }
            }
            if !total.is_finite() || base <= 0.0 || total > WARM_START_MAX_REL_L1 * base {
                return false;
            }
        }
        let saved = self.saved.take().expect("checked above");
        let invcap: Vec<f64> = network.capacities().iter().map(|c| 1.0 / c).collect();
        let mut path: Vec<usize> = Vec::new();
        let mut ok = true;
        let (columns, aggregate) = self.flows.parts_mut();
        'columns: for (i, &t) in dests.iter().enumerate() {
            traffic.demands_to_into(t, &mut self.demand_buf);
            let old = &saved.demands[i];
            // Distances are only computed when the column has a changed
            // source (one Dijkstra per dirty column, none per clean one).
            let mut dist: Option<Vec<f64>> = None;
            for s in g.nodes() {
                if s == t {
                    continue;
                }
                let delta = self.demand_buf[s.index()] - old[s.index()];
                if delta == 0.0 {
                    continue;
                }
                if dist.is_none() {
                    match dijkstra::distances_to(g, &invcap, t) {
                        Ok(d) => dist = Some(d),
                        Err(_) => {
                            ok = false;
                            break 'columns;
                        }
                    }
                }
                let d = dist.as_ref().expect("set above");
                if !descent_path(g, &invcap, d, s, t, &mut path) {
                    ok = false;
                    break 'columns;
                }
                let col = &mut columns[i];
                for &pe in &path {
                    col[pe] += delta;
                }
            }
        }
        self.stale = Some(saved);
        if !ok {
            return false;
        }
        // Re-fold the aggregate in ascending destination order.
        aggregate.fill(0.0);
        for col in columns.iter() {
            for (a, x) in aggregate.iter_mut().zip(col.iter()) {
                *a += *x;
            }
        }
        true
    }

    /// The combined warm-start entry: tries, in order, (a) the in-place
    /// proportional rescale on an identical topology, (b) the
    /// delta-repair of an arbitrary small demand change (relative L1
    /// under [`WARM_START_MAX_REL_L1`]), (c) a link-removal projection
    /// from the most recent solution (covers cascading failures:
    /// degraded → further degraded), (d) a link-removal projection from
    /// the session's base (intact) solution — the failure chain case,
    /// where every single-circuit solve restarts from the one intact
    /// optimum. Falls back to [`FwStart::Cold`] when nothing matches;
    /// never a correctness hazard, only a trajectory change.
    pub(crate) fn warm_start(
        &mut self,
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        smoothing_fraction: f64,
        dests: &[NodeId],
        tile: Option<usize>,
    ) -> FwStart {
        if self.try_warm_start(network, traffic, objective, smoothing_fraction, dests, tile) {
            return FwStart::Rescaled;
        }
        if self.try_delta_repair(network, traffic, objective, smoothing_fraction, dests, tile) {
            return FwStart::DeltaRepaired;
        }
        if let Some(saved) = &self.saved {
            if let Some(projected) = removal_projection(
                saved,
                &self.flows,
                network,
                traffic,
                objective,
                smoothing_fraction,
                dests,
                tile,
                &mut self.demand_buf,
                &mut self.ratio,
            ) {
                self.flows = projected;
                self.stale = self.saved.take();
                return FwStart::RemovalProjected;
            }
        }
        if let Some(base) = &self.base {
            if let Some(projected) = removal_projection(
                base,
                &self.base_flows,
                network,
                traffic,
                objective,
                smoothing_fraction,
                dests,
                tile,
                &mut self.demand_buf,
                &mut self.ratio,
            ) {
                self.flows = projected;
                if let Some(s) = self.saved.take() {
                    self.stale = Some(s);
                }
                return FwStart::RemovalProjected;
            }
        }
        FwStart::Cold
    }

    /// Records the instance the current `flows` buffer solves. Unless the
    /// run was seeded by a removal projection (`degraded`), the solution
    /// is also snapshotted as the session's base for future failure-chain
    /// restarts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_solution(
        &mut self,
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        smoothing_fraction: f64,
        dests: &[NodeId],
        tile: Option<usize>,
        degraded: bool,
    ) {
        let mut saved = self
            .saved
            .take()
            .or_else(|| self.stale.take())
            .unwrap_or_default();
        saved.record_instance(network, traffic, objective, smoothing_fraction, dests, tile);
        self.saved = Some(saved);
        if !degraded {
            let mut base = self.base.take().unwrap_or_default();
            base.record_instance(network, traffic, objective, smoothing_fraction, dests, tile);
            self.base_flows.copy_from(&self.flows);
            self.base = Some(base);
        }
    }

    /// Forgets the saved solution (arenas are kept). The base snapshot
    /// survives: it lives in its own buffers, so a failed solve's
    /// half-blended iterate never corrupts it.
    pub(crate) fn forget(&mut self) {
        self.saved = None;
    }

    /// Forgets the saved solution *and* the base snapshot — the full
    /// history reset behind [`TeWorkspace::clear_solutions`], after which
    /// no warm start of any kind can fire.
    pub(crate) fn forget_all(&mut self) {
        self.saved = None;
        self.base = None;
    }
}

/// Builds a conservation-feasible Frank–Wolfe starting point on an
/// edge-subset topology from a saved solution of the full topology.
///
/// Match rule: the new edge list must be an order-preserving subsequence
/// of the saved one — same endpoints, bitwise-identical capacity and
/// `q_e` — with strictly fewer edges, same node count, destination set,
/// β and smoothing (exactly what [`Network::without_links`] produces),
/// and the new demands per-destination proportional to the saved ones.
///
/// Projection: kept edges inherit `r_t · f^t_e`; each removed edge's flow
/// is re-routed along a surviving shortest path between its endpoints
/// (InvCap weights — cheap, deterministic, biased toward spare capacity),
/// which restores per-destination conservation exactly: dropping edge
/// `(u,v)` removes `x` from `u`'s outflow and `v`'s inflow, and the path
/// puts exactly `x` back. Capacity overshoot on the repair path is fine —
/// Frank–Wolfe's smoothed barrier keeps over-capacity iterates
/// well-defined and the line search pulls them back.
///
/// Returns `None` on any mismatch (caller falls back to the next source
/// or the cold init); `self`-free so disjoint session fields can be
/// borrowed around it.
#[allow(clippy::too_many_arguments)]
fn removal_projection(
    source: &FwFingerprint,
    source_flows: &Flows,
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    smoothing_fraction: f64,
    dests: &[NodeId],
    tile: Option<usize>,
    demand_buf: &mut Vec<f64>,
    ratio: &mut Vec<f64>,
) -> Option<Flows> {
    let g = network.graph();
    let m_new = g.edge_count();
    let m_old = source.topo.edges.len();
    if m_new >= m_old
        || source.topo.nodes != g.node_count()
        || source.topo.dests.as_slice() != dests
        || source.topo.tile != tile
        || source.beta.to_bits() != objective.beta().to_bits()
        || source.smoothing.to_bits() != smoothing_fraction.to_bits()
        || source_flows.destinations() != dests
    {
        return None;
    }
    // Greedy order-preserving subsequence match of the new edge list
    // against the saved one (`without_links` keeps relative edge order,
    // so greedy matching is exact for genuine removals).
    let mut kept: Vec<usize> = Vec::with_capacity(m_new);
    let mut oi = 0usize;
    for (e, u, v) in g.edges() {
        let cap = network.capacity(e).to_bits();
        let q = objective.q(e).to_bits();
        loop {
            if oi == m_old {
                return None;
            }
            let cursor = oi;
            oi += 1;
            if source.topo.edges[cursor] == (u, v)
                && source.capacities[cursor].to_bits() == cap
                && source.q[cursor].to_bits() == q
            {
                kept.push(cursor);
                break;
            }
        }
    }
    if !proportional_ratios(&source.demands, traffic, dests, demand_buf, ratio) {
        return None;
    }
    // Project the kept edges' flows, scaled per destination.
    let mut per_dest: Vec<Vec<f64>> = Vec::with_capacity(dests.len());
    for (i, r) in ratio.iter().enumerate() {
        let old = source_flows.column(i);
        if old.len() != m_old {
            return None;
        }
        per_dest.push(kept.iter().map(|&o| r * old[o]).collect());
    }
    // Conservation repair for the removed edges.
    let removed = {
        let mut removed = Vec::with_capacity(m_old - m_new);
        let mut k = 0usize;
        for o in 0..m_old {
            if k < kept.len() && kept[k] == o {
                k += 1;
            } else {
                removed.push(o);
            }
        }
        removed
    };
    let invcap: Vec<f64> = network.capacities().iter().map(|c| 1.0 / c).collect();
    let mut path: Vec<usize> = Vec::new();
    for &o in &removed {
        if !(0..dests.len()).any(|i| ratio[i] * source_flows.column(i)[o] > 0.0) {
            continue;
        }
        let (u, v) = source.topo.edges[o];
        let dist = dijkstra::distances_to(g, &invcap, v).ok()?;
        if !descent_path(g, &invcap, &dist, u, v, &mut path) {
            return None;
        }
        for (i, f) in per_dest.iter_mut().enumerate() {
            let flow = ratio[i] * source_flows.column(i)[o];
            if flow > 0.0 {
                for &pe in &path {
                    f[pe] += flow;
                }
            }
        }
    }
    let mut aggregate = vec![0.0; m_new];
    for f in &per_dest {
        for (a, x) in aggregate.iter_mut().zip(f) {
            *a += *x;
        }
    }
    Some(Flows::new_unchecked(dests.to_vec(), per_dest, aggregate))
}

/// NEM session state: the dual iterate `v` doubles as the saved solution.
#[derive(Debug, Default)]
pub(crate) struct NemSession {
    pub(crate) v: Vec<f64>,
    pub(crate) flows: Flows,
    pub(crate) tables: SplitTableSet,
    pub(crate) scratch: DistScratch,
    /// Tile-sized per-destination flow columns for the tiled
    /// distribution path (NEM only needs the aggregate).
    pub(crate) tile_cols: Vec<Vec<f64>>,
    pub(crate) demand_buf: Vec<f64>,
    saved: Option<TopoFingerprint>,
}

impl NemSession {
    /// True when the saved `v` may seed the new run (same graph and
    /// destination set; any `v ≥ 0` is a valid projected-gradient start,
    /// so no further checks are needed).
    pub(crate) fn try_warm_start(
        &mut self,
        graph: &Graph,
        dests: &[NodeId],
        tile: Option<usize>,
    ) -> bool {
        let warm = self
            .saved
            .as_ref()
            .is_some_and(|s| s.matches(graph, dests, tile) && self.v.len() == graph.edge_count());
        self.saved = None;
        warm
    }

    /// Records the instance the current `v` solves.
    pub(crate) fn record_solution(&mut self, graph: &Graph, dests: &[NodeId], tile: Option<usize>) {
        let mut saved = self.saved.take().unwrap_or_default();
        saved.record(graph, dests, tile);
        self.saved = Some(saved);
    }

    pub(crate) fn forget(&mut self) {
        self.saved = None;
    }
}

/// Dual-decomposition session state: the multiplier vector `weights`
/// doubles as the saved solution.
#[derive(Debug, Default)]
pub(crate) struct DdSession {
    pub(crate) weights: Vec<f64>,
    pub(crate) spare: Vec<f64>,
    pub(crate) average_flows: Vec<f64>,
    pub(crate) floored: Vec<f64>,
    pub(crate) flows: Flows,
    pub(crate) demand_buf: Vec<f64>,
    saved: Option<TopoFingerprint>,
}

impl DdSession {
    /// True when the saved multipliers may seed the new run (same graph
    /// and destination set; any `w ≥ 0` is a valid dual start).
    pub(crate) fn try_warm_start(
        &mut self,
        graph: &Graph,
        dests: &[NodeId],
        tile: Option<usize>,
    ) -> bool {
        let warm = self.saved.as_ref().is_some_and(|s| {
            s.matches(graph, dests, tile) && self.weights.len() == graph.edge_count()
        });
        self.saved = None;
        warm
    }

    /// Records the instance the current `weights` solve.
    pub(crate) fn record_solution(&mut self, graph: &Graph, dests: &[NodeId], tile: Option<usize>) {
        let mut saved = self.saved.take().unwrap_or_default();
        saved.record(graph, dests, tile);
        self.saved = Some(saved);
    }

    pub(crate) fn forget(&mut self) {
        self.saved = None;
    }
}

/// A reusable solver workspace: every arena and saved iterate the solvers
/// in this crate can carry from one solve to the next.
///
/// One workspace serves all four solvers — the SPEF pipeline threads the
/// same workspace through its TE, DAG and NEM stages, so a chained sweep
/// (same topology, neighbouring loads) reuses the CSR adjacency, DAG
/// arenas, flow/split/demand buffers, the simplex tableau (β = 0), and —
/// unless cleared or pinned — the previous grid point's solution as a
/// warm start. See the [module docs](self) for the fingerprint rules.
#[derive(Debug, Default)]
pub struct TeWorkspace {
    engine: Option<EngineState>,
    /// Second engine slot. A failure chain alternates between the intact
    /// topology (the warm-start base solve) and a degraded one (the
    /// re-optimisation); with a single slot each alternation re-attached
    /// the state to a different graph, rebuilding the CSR and losing the
    /// SPF skip fingerprint both ways. Two slots keep one engine per
    /// topology: [`TeWorkspace::take_engine`] hands out whichever slot
    /// matches the requested graph, so both sides of the alternation stay
    /// warm.
    engine_alt: Option<EngineState>,
    /// `true` disables the engine's delta-aware incremental rebuild
    /// paths (dense rebuilds only); default `false` = incremental on.
    full_rebuild_only: bool,
    /// Destination tile size for the iterative solvers' build/distribute
    /// cycles; `None` = dense (one arena over all destinations).
    pub(crate) tile: Option<usize>,
    pub(crate) simplex: SimplexWorkspace,
    pub(crate) fw: FwSession,
    pub(crate) nem: NemSession,
    pub(crate) dd: DdSession,
}

impl TeWorkspace {
    /// An empty workspace; arenas grow on first use.
    pub fn new() -> TeWorkspace {
        TeWorkspace::default()
    }

    /// Sets the destination tile size for subsequent solves: the FW/NEM/DD
    /// inner loops and the SPEF pipeline then build DAGs and split tables
    /// in tiles of at most `tile` destinations, bounding peak routing-
    /// arena memory at O(tile·edges) instead of O(dests·edges). Results
    /// are **bit-identical** to the dense path for every tile size (the
    /// determinism contract pinned by `tests/tile_equivalence.rs`); only
    /// memory and the warm-start fingerprint (which includes the
    /// effective tile) change. `None` or `Some(0)` restores the dense
    /// path; tiles at least as large as the destination set also run
    /// dense, keeping the SPF skip fingerprint active.
    pub fn set_tile_size(&mut self, tile: Option<usize>) {
        self.tile = tile.filter(|&t| t > 0);
    }

    /// The configured destination tile size (`None` = dense).
    pub fn tile_size(&self) -> Option<usize> {
        self.tile
    }

    /// Bytes currently reserved by the workspace's routing arenas (DAG
    /// sets, split tables, flow buffers, Dijkstra scratch), by capacity —
    /// the high-water mark over every solve this workspace has run, since
    /// the arenas never shrink. The scaling ablation prints this as its
    /// peak-memory column.
    pub fn arena_bytes(&self) -> usize {
        self.engine.as_ref().map_or(0, EngineState::arena_bytes)
            + self.engine_alt.as_ref().map_or(0, EngineState::arena_bytes)
            + self.nem.tables.arena_bytes()
            + self.nem.flows.arena_bytes()
            + self
                .nem
                .tile_cols
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<f64>())
                .sum::<usize>()
            + self.fw.flows.arena_bytes()
            + self.fw.target.arena_bytes()
            + self.dd.flows.arena_bytes()
    }

    /// Drops every saved solution while keeping all arenas, so subsequent
    /// `solve_in` calls run the cold trajectory (bit-identical to
    /// [`TeSolver::solve`]) at warm-buffer speed. The result-preserving
    /// mode used by the regression-gated sweep harness.
    pub fn clear_solutions(&mut self) {
        self.fw.forget_all();
        self.nem.forget();
        self.dd.forget();
    }

    /// Enables/disables the engine's delta-aware incremental rebuild
    /// paths for subsequent solves (enabled by default). After a small
    /// weight delta, an incremental re-solve rebuilds only the dirty
    /// destinations' DAGs and split tables; results are bit-identical to
    /// dense rebuilds either way — only wall clock changes.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.full_rebuild_only = !enabled;
        for engine in [self.engine.as_mut(), self.engine_alt.as_mut()]
            .into_iter()
            .flatten()
        {
            engine.set_incremental(enabled);
        }
    }

    /// Whether the incremental engine paths are enabled.
    pub fn incremental(&self) -> bool {
        !self.full_rebuild_only
    }

    /// The SPF build counters summed over both engine slots (zeroes
    /// before the first solve); `last_dirty` is the maximum over the
    /// slots, as "most recent" is meaningless across two engines.
    pub fn spf_stats(&self) -> crate::SpfStats {
        let mut total = crate::SpfStats::default();
        for engine in [self.engine.as_ref(), self.engine_alt.as_ref()]
            .into_iter()
            .flatten()
        {
            let s = engine.spf_stats();
            total.builds += s.builds;
            total.incremental_builds += s.incremental_builds;
            total.slots_rebuilt += s.slots_rebuilt;
            total.last_dirty = total.last_dirty.max(s.last_dirty);
            total.topology_builds += s.topology_builds;
            total.masked_links += s.masked_links;
        }
        total
    }

    /// Detaches an engine state for attaching to `graph`: the slot that
    /// last routed over this topology if one exists (its CSR, arenas and
    /// SPF fingerprint survive), otherwise an empty state, otherwise the
    /// secondary slot's arenas. The primary slot is never recycled for a
    /// new topology while occupied, so a chain's intact-topology engine
    /// outlives any number of degraded-topology solves in between.
    pub(crate) fn take_engine(&mut self, graph: &Graph) -> EngineState {
        let primary_matches = self
            .engine
            .as_ref()
            .is_some_and(|s| s.matches_topology(graph));
        let mut state = if primary_matches {
            self.engine.take().expect("checked above")
        } else if self
            .engine_alt
            .as_ref()
            .is_some_and(|s| s.matches_topology(graph))
        {
            self.engine_alt.take().expect("checked above")
        } else if self.engine.is_none() || self.engine_alt.is_none() {
            EngineState::new()
        } else {
            // Both slots warm on other topologies: recycle the secondary
            // slot's arenas for the new one.
            self.engine_alt.take().expect("checked above")
        };
        state.set_incremental(!self.full_rebuild_only);
        state
    }

    /// Returns the engine state after a session, into the first free slot
    /// (the secondary slot is overwritten when both are somehow full).
    pub(crate) fn put_engine(&mut self, state: EngineState) {
        if self.engine.is_none() {
            self.engine = Some(state);
        } else {
            self.engine_alt = Some(state);
        }
    }

    /// Number of SPF batch builds the workspace's engines have executed —
    /// skipped (fingerprint-identical) builds are not counted. Exposed
    /// for tests and benches.
    pub fn spf_builds(&self) -> u64 {
        self.engine.as_ref().map_or(0, EngineState::spf_builds)
            + self.engine_alt.as_ref().map_or(0, EngineState::spf_builds)
    }
}

impl TeSolver for crate::FrankWolfeConfig {
    type Instance<'i> = TeInstance<'i>;
    type Output = crate::TeSolution;

    fn solve_in(
        &self,
        instance: TeInstance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<crate::TeSolution, SpefError> {
        crate::te::solve_te_in(
            instance.network,
            instance.traffic,
            instance.objective,
            self,
            workspace,
        )
    }
}

impl TeSolver for crate::DualDecompConfig {
    type Instance<'i> = TeInstance<'i>;
    type Output = crate::DualDecompOutcome;

    fn solve_in(
        &self,
        instance: TeInstance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<crate::DualDecompOutcome, SpefError> {
        crate::dual_decomp::solve_in(
            instance.network,
            instance.traffic,
            instance.objective,
            self,
            workspace,
        )
    }
}

impl TeSolver for crate::NemConfig {
    type Instance<'i> = NemInstance<'i>;
    type Output = crate::NemOutcome;

    fn solve_in(
        &self,
        instance: NemInstance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<crate::NemOutcome, SpefError> {
        crate::nem::solve_in(
            instance.graph,
            instance.dags,
            instance.traffic,
            instance.target_flows,
            self,
            workspace,
        )
    }
}

impl TeSolver for crate::SpefConfig {
    type Instance<'i> = TeInstance<'i>;
    type Output = crate::SpefRouting;

    fn solve_in(
        &self,
        instance: TeInstance<'_>,
        workspace: &mut TeWorkspace,
    ) -> Result<crate::SpefRouting, SpefError> {
        crate::protocol::build_in(
            instance.network,
            instance.traffic,
            instance.objective,
            self,
            workspace,
        )
    }
}
