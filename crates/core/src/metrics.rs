//! Traffic-engineering metrics used throughout the paper's evaluation.
//!
//! * **MLU** — maximum link utilization;
//! * **normalized utility** — `Σ_(i,j) log(1 − u_ij)` (§V.B: "The utility
//!   is normalized ... The utility is −∞ if MLU is greater than 1"), the
//!   y-axis of Fig. 10 and Fig. 13;
//! * **sorted utilizations** — the curves of Fig. 9;
//! * **equal-cost-path census** — TABLE V.

use std::collections::BTreeMap;

use spef_graph::{NodeId, ShortestPathDag};
use spef_topology::Network;

/// Maximum link utilization of a flow vector.
///
/// # Panics
///
/// Panics if `flows.len() != network.link_count()`.
pub fn max_link_utilization(network: &Network, flows: &[f64]) -> f64 {
    network.utilizations(flows).into_iter().fold(0.0, f64::max)
}

/// The paper's normalized utility `Σ_e log(1 − u_e)`, or `−∞` if any link
/// is at or above capacity.
///
/// # Panics
///
/// Panics if `flows.len() != network.link_count()`.
pub fn normalized_utility(network: &Network, flows: &[f64]) -> f64 {
    let mut total = 0.0;
    for u in network.utilizations(flows) {
        if u >= 1.0 {
            return f64::NEG_INFINITY;
        }
        total += (1.0 - u).ln();
    }
    total
}

/// Link utilizations sorted in decreasing order (the presentation of
/// Fig. 9).
///
/// # Panics
///
/// Panics if `flows.len() != network.link_count()`.
pub fn sorted_utilizations(network: &Network, flows: &[f64]) -> Vec<f64> {
    let mut u = network.utilizations(flows);
    u.sort_by(|a, b| b.total_cmp(a));
    u
}

/// TABLE V: for every ordered ingress–egress pair, counts the equal-cost
/// shortest paths the routing offers, and histograms the pairs by that
/// count.
///
/// `n(i)` is the paper's `n_i` — the number of pairs with exactly `i`
/// equal-cost paths.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathCensus {
    histogram: BTreeMap<u64, usize>,
}

impl PathCensus {
    /// Builds the census from per-destination shortest-path DAGs: every
    /// ordered pair `(s, t)` with `s ≠ t` and `t` a DAG target contributes
    /// its shortest-path count.
    pub fn from_dags(dags: &[ShortestPathDag]) -> PathCensus {
        let mut histogram = BTreeMap::new();
        for dag in dags {
            let n = dag.distances().len();
            for s in 0..n {
                let s = NodeId::new(s);
                if s == dag.target() {
                    continue;
                }
                let count = dag.path_count(s);
                *histogram.entry(count).or_insert(0) += 1;
            }
        }
        PathCensus { histogram }
    }

    /// Number of pairs with exactly `i` equal-cost paths (the paper's
    /// `n_i`).
    pub fn n(&self, i: u64) -> usize {
        self.histogram.get(&i).copied().unwrap_or(0)
    }

    /// Total ordered pairs counted.
    pub fn total_pairs(&self) -> usize {
        self.histogram.values().sum()
    }

    /// The underlying histogram `path count → #pairs`, ascending by count.
    pub fn histogram(&self) -> &BTreeMap<u64, usize> {
        &self.histogram
    }

    /// Number of pairs with more than one equal-cost path (the pairs where
    /// flow-splitting is actually exercised).
    pub fn multipath_pairs(&self) -> usize {
        self.histogram
            .iter()
            .filter(|(&k, _)| k > 1)
            .map(|(_, &v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_graph::Graph;
    use spef_topology::Network;

    fn two_link_net() -> Network {
        let mut b = Network::builder("two");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (1.0, 0.0));
        b.add_link(a, c, 10.0);
        b.add_link(c, a, 5.0);
        b.build().unwrap()
    }

    #[test]
    fn mlu_takes_the_max() {
        let net = two_link_net();
        assert_eq!(max_link_utilization(&net, &[5.0, 4.0]), 0.8);
        assert_eq!(max_link_utilization(&net, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn normalized_utility_sums_logs() {
        let net = two_link_net();
        let u = normalized_utility(&net, &[5.0, 2.5]);
        assert!((u - (0.5f64.ln() + 0.5f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn normalized_utility_is_neg_infinity_at_saturation() {
        let net = two_link_net();
        assert_eq!(normalized_utility(&net, &[10.0, 0.0]), f64::NEG_INFINITY);
        assert_eq!(normalized_utility(&net, &[11.0, 0.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn sorted_utilizations_descend() {
        let net = two_link_net();
        let s = sorted_utilizations(&net, &[2.0, 2.0]);
        assert_eq!(s, vec![0.4, 0.2]);
    }

    #[test]
    fn path_census_on_diamond() {
        // Diamond 0 → {1,2} → 3 plus direct link 1 → 2.
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let w = vec![1.0; 4];
        let dag = spef_graph::ShortestPathDag::build(&g, &w, 3.into(), 0.0).unwrap();
        let census = PathCensus::from_dags(&[dag]);
        // Pairs toward 3: node 0 has 2 paths, nodes 1 and 2 have 1 each.
        assert_eq!(census.n(1), 2);
        assert_eq!(census.n(2), 1);
        assert_eq!(census.total_pairs(), 3);
        assert_eq!(census.multipath_pairs(), 1);
    }

    #[test]
    fn path_census_counts_unreachable_as_zero() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        let dag = spef_graph::ShortestPathDag::build(&g, &[1.0], 1.into(), 0.0).unwrap();
        let census = PathCensus::from_dags(&[dag]);
        assert_eq!(census.n(0), 1); // node 2 cannot reach 1
        assert_eq!(census.n(1), 1);
    }
}
