//! `TrafficDistribution` — Algorithm 3 of the paper.
//!
//! Given the per-destination shortest-path DAGs `ON_t` (built from the
//! *first* link weights) and a split rule, this module computes the exact
//! link flows that hop-by-hop forwarding produces:
//!
//! * [`SplitRule::EvenEcmp`] — OSPF behaviour: traffic toward `t` splits
//!   evenly over all next hops on shortest paths;
//! * [`SplitRule::Exponential`] — SPEF behaviour (Eq. 22): traffic splits
//!   over next hops proportionally to `Σ_paths e^(−len₂(path))` where
//!   `len₂` is the path length under the *second* weights.
//!
//! The paper's TABLE II materialises, per (router, destination), the list
//! of second-weight path lengths through each next hop; enumerating paths
//! is exponential, so we instead evaluate the identical quantity with the
//! DAG recursion
//!
//! ```text
//! Z_t(t) = 1,   Z_t(u) = Σ_{(u,x) ∈ ON_t} e^(−v_ux) · Z_t(x)
//! ```
//!
//! giving `Γ_t(s, k) ∝ e^(−v_{s,n_k}) · Z_t(n_k)` — exactly Eq. (22),
//! computed in `O(|J|)` per destination (in log-space for numerical
//! stability).
//!
//! Nodes are processed "in the decreasing distance order" exactly as
//! Algorithm 3 prescribes, so each node's incoming flow
//! `d̄_st = d_st + Σ_{(j,s)} f^t_js` is complete before its outgoing flow
//! is assigned.
//!
//! Two execution paths produce identical results:
//!
//! * the **legacy per-destination path** ([`build_dags`] →
//!   [`traffic_distribution`]) with owned [`ShortestPathDag`]s and
//!   [`SplitTable`]s — the readable reference;
//! * the **batched path** ([`crate::RoutingEngine`]) where DAGs, split
//!   tables and flows live in flat reusable arenas ([`SplitTableSet`])
//!   and a solver iteration performs zero steady-state allocations.
//!
//! Both funnel through the same distribution kernel, generic over
//! [`DagAccess`], and the public wrappers here now ride the batched CSR
//! engine internally.

use spef_graph::batch::{build_dag_set, DagAccess, DagSet, Parallelism, RoutingWorkspace};
use spef_graph::{Csr, EdgeId, Graph, GraphError, NodeId, ShortestPathDag};
use spef_topology::TrafficMatrix;

use crate::SpefError;

/// How a router splits traffic across the equal-cost next hops of one
/// destination.
#[derive(Debug, Clone, Copy)]
pub enum SplitRule<'a> {
    /// OSPF ECMP: even split over all shortest-path next hops.
    EvenEcmp,
    /// SPEF: exponential split driven by the second link weights
    /// (one `f64` per edge).
    Exponential(&'a [f64]),
}

/// Per-destination split ratios on a shortest-path DAG, plus the log-domain
/// path sums `log Z_t(u)` used by the NEM dual objective.
#[derive(Debug, Clone)]
pub struct SplitTable {
    /// `ratios[u]` lists `(edge, fraction)` for every DAG successor edge of
    /// `u`; fractions sum to 1 for reachable non-target nodes.
    ratios: Vec<Vec<(EdgeId, f64)>>,
    /// `log Σ_paths e^(−len₂(path))` from each node to the target
    /// (`0` at the target, `−∞` when unreachable). Under
    /// [`SplitRule::EvenEcmp`] the convention `v = 0` applies, so this is
    /// `log(#paths)`.
    log_path_sum: Vec<f64>,
}

impl SplitTable {
    /// Builds the split table for one destination DAG.
    ///
    /// # Errors
    ///
    /// Returns [`SpefError::InvalidInput`] if an [`SplitRule::Exponential`]
    /// weight vector has the wrong length or contains negative/NaN entries.
    pub fn build(
        graph: &Graph,
        dag: &ShortestPathDag,
        rule: SplitRule<'_>,
    ) -> Result<SplitTable, SpefError> {
        if let SplitRule::Exponential(v) = rule {
            if v.len() != graph.edge_count() {
                return Err(SpefError::InvalidInput(format!(
                    "second weight vector has length {}, expected {}",
                    v.len(),
                    graph.edge_count()
                )));
            }
            if let Some((i, &w)) = v.iter().enumerate().find(|(_, &w)| w.is_nan() || w < 0.0) {
                return Err(SpefError::InvalidInput(format!(
                    "second weight of edge e{i} is {w}"
                )));
            }
        }

        let n = graph.node_count();
        let mut ratios = vec![Vec::new(); n];
        let mut log_z = vec![f64::NEG_INFINITY; n];
        log_z[dag.target().index()] = 0.0;

        // Increasing distance: reverse of the decreasing-distance order.
        for &u in dag.nodes_by_decreasing_distance().iter().rev() {
            if u == dag.target() {
                continue;
            }
            let succ = dag.successors(u);
            if succ.is_empty() {
                continue; // stranded node; caught later only if it has demand
            }
            // Per-successor log-terms: -v_e + log Z(next).
            let terms: Vec<(EdgeId, f64)> = succ
                .iter()
                .map(|&e| {
                    let x = graph.target(e);
                    let v_e = match rule {
                        SplitRule::EvenEcmp => 0.0,
                        SplitRule::Exponential(v) => v[e.index()],
                    };
                    (e, -v_e + log_z[x.index()])
                })
                .collect();
            let max_term = terms
                .iter()
                .map(|&(_, t)| t)
                .fold(f64::NEG_INFINITY, f64::max);
            if max_term == f64::NEG_INFINITY {
                continue; // all successors stranded
            }
            let sum_exp: f64 = terms.iter().map(|&(_, t)| (t - max_term).exp()).sum();
            let lz = max_term + sum_exp.ln();
            log_z[u.index()] = lz;
            ratios[u.index()] = terms
                .into_iter()
                .map(|(e, t)| (e, (t - lz).exp()))
                .collect();
        }

        Ok(SplitTable {
            ratios,
            log_path_sum: log_z,
        })
    }

    /// The `(edge, fraction)` next-hop entries of node `u` — one row of the
    /// paper's TABLE II forwarding table, already reduced to split ratios.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn next_hops(&self, u: NodeId) -> &[(EdgeId, f64)] {
        &self.ratios[u.index()]
    }

    /// `log Σ_k e^(−v^r_k)` over all equal-cost shortest paths from `u` to
    /// the target — the per-pair partition function of the NEM dual.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn log_path_sum(&self, u: NodeId) -> f64 {
        self.log_path_sum[u.index()]
    }

    /// Materialises an owned table from an arena-backed view.
    fn from_ref(view: SplitTableRef<'_>, n: usize) -> SplitTable {
        SplitTable {
            ratios: (0..n)
                .map(|u| view.next_hops(NodeId::new(u)).to_vec())
                .collect(),
            log_path_sum: view.log_z.to_vec(),
        }
    }
}

/// Split tables for a whole destination set, stored as flat arenas.
///
/// The batched analogue of `Vec<SplitTable>`: per-destination rows live in
/// contiguous blocks of shared vectors, reused across
/// [`crate::RoutingEngine::distribute_into`] calls so the NEM / Frank–Wolfe
/// iteration loops allocate nothing in the steady state. Access
/// per-destination views through [`SplitTableSet::table`].
#[derive(Debug, Clone, Default)]
pub struct SplitTableSet {
    n: usize,
    count: usize,
    /// `(start, len)` into `entries` per `(dest, node)` — spans rather than
    /// prefix offsets because rows are produced in decreasing-distance
    /// order, not node-id order.
    spans: Vec<(usize, usize)>,
    entries: Vec<(EdgeId, f64)>,
    /// `log Z_t(u)` per `(dest, node)`.
    log_z: Vec<f64>,
    /// Entry slots orphaned by in-place [`SplitTableSet::rebuild_table`]
    /// calls (rebuilt rows append fresh entries and abandon the old ones).
    /// Once garbage outweighs live entries the arena is compacted.
    garbage: usize,
}

impl SplitTableSet {
    /// Creates an empty set; arenas grow on first use.
    pub fn new() -> SplitTableSet {
        SplitTableSet::default()
    }

    /// Number of destinations covered.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if the set covers no destinations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// A cheap view of destination `i`'s split table.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn table(&self, i: usize) -> SplitTableRef<'_> {
        assert!(i < self.count, "table index {i} out of range");
        SplitTableRef {
            spans: &self.spans[i * self.n..(i + 1) * self.n],
            entries: &self.entries,
            log_z: &self.log_z[i * self.n..(i + 1) * self.n],
        }
    }

    pub(crate) fn reset(&mut self, n: usize) {
        self.n = n;
        self.count = 0;
        self.spans.clear();
        self.entries.clear();
        self.log_z.clear();
        self.garbage = 0;
    }

    /// Bytes currently reserved by the split-table arenas (capacity, not
    /// length) — a high-water mark, since `Vec` capacity never shrinks
    /// across `reset` calls.
    pub fn arena_bytes(&self) -> usize {
        self.spans.capacity() * std::mem::size_of::<(usize, usize)>()
            + self.entries.capacity() * std::mem::size_of::<(EdgeId, f64)>()
            + self.log_z.capacity() * std::mem::size_of::<f64>()
    }

    /// Appends the split table of one destination DAG. Mirrors
    /// [`SplitTable::build`] operation for operation so ratios and log
    /// path sums come out bit-identical; the rule's weight vector must be
    /// pre-validated.
    pub(crate) fn push_table<D: DagAccess>(&mut self, graph: &Graph, dag: &D, rule: SplitRule<'_>) {
        let n = self.n;
        let span_base = self.spans.len();
        self.spans.resize(span_base + n, (0, 0));
        self.log_z.resize(span_base + n, f64::NEG_INFINITY);
        self.build_block(self.count, graph, dag, rule);
        self.count += 1;
    }

    /// Rebuilds destination `i`'s split table **in place** against its
    /// (freshly rebuilt) DAG — the delta step of the incremental
    /// distribution path. The old rows become arena garbage; new entries
    /// are appended and the arena compacts once garbage outweighs live
    /// rows. Row values are produced by the exact operation sequence of
    /// [`SplitTableSet::push_table`], so a rebuilt table is bit-identical
    /// to a dense rebuild of the whole set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub(crate) fn rebuild_table<D: DagAccess>(
        &mut self,
        i: usize,
        graph: &Graph,
        dag: &D,
        rule: SplitRule<'_>,
    ) {
        assert!(i < self.count, "table index {i} out of range");
        let n = self.n;
        let base = i * n;
        let mut freed = 0usize;
        for span in &mut self.spans[base..base + n] {
            freed += span.1;
            *span = (0, 0);
        }
        self.garbage += freed;
        for z in &mut self.log_z[base..base + n] {
            *z = f64::NEG_INFINITY;
        }
        self.build_block(i, graph, dag, rule);
        if self.garbage > self.entries.len() - self.garbage {
            self.compact();
        }
    }

    /// Left-compacts the live entry spans (in arena order, preserving
    /// every row's contents and relative layout) and drops the garbage.
    fn compact(&mut self) {
        let mut live: Vec<usize> = (0..self.spans.len())
            .filter(|&s| self.spans[s].1 > 0)
            .collect();
        live.sort_unstable_by_key(|&s| self.spans[s].0);
        let mut write = 0usize;
        for &s in &live {
            let (start, len) = self.spans[s];
            self.entries.copy_within(start..start + len, write);
            self.spans[s] = (write, len);
            write += len;
        }
        self.entries.truncate(write);
        self.garbage = 0;
    }

    /// The shared row-construction body of [`SplitTableSet::push_table`]
    /// and [`SplitTableSet::rebuild_table`]: fills block `block`'s spans
    /// and log-Z slots (which must already be cleared) by appending entry
    /// rows, mirroring [`SplitTable::build`] operation for operation.
    fn build_block<D: DagAccess>(
        &mut self,
        block: usize,
        graph: &Graph,
        dag: &D,
        rule: SplitRule<'_>,
    ) {
        let span_base = block * self.n;
        let lz_base = span_base;
        let target = dag.dag_target();
        self.log_z[lz_base + target.index()] = 0.0;

        for &u in dag.dag_order_desc().iter().rev() {
            if u == target {
                continue;
            }
            let succ = dag.dag_successors(u);
            if succ.is_empty() {
                continue;
            }
            let start = self.entries.len();
            for &e in succ {
                let x = graph.target(e);
                let v_e = match rule {
                    SplitRule::EvenEcmp => 0.0,
                    SplitRule::Exponential(v) => v[e.index()],
                };
                self.entries
                    .push((e, -v_e + self.log_z[lz_base + x.index()]));
            }
            let max_term = self.entries[start..]
                .iter()
                .map(|&(_, t)| t)
                .fold(f64::NEG_INFINITY, f64::max);
            if max_term == f64::NEG_INFINITY {
                self.entries.truncate(start);
                continue; // all successors stranded
            }
            let sum_exp: f64 = self.entries[start..]
                .iter()
                .map(|&(_, t)| (t - max_term).exp())
                .sum();
            let lz = max_term + sum_exp.ln();
            self.log_z[lz_base + u.index()] = lz;
            for slot in &mut self.entries[start..] {
                slot.1 = (slot.1 - lz).exp();
            }
            self.spans[span_base + u.index()] = (start, succ.len());
        }
    }
}

/// A borrowed view of one destination's split table inside a
/// [`SplitTableSet`]; mirrors the accessor surface of [`SplitTable`].
#[derive(Debug, Clone, Copy)]
pub struct SplitTableRef<'a> {
    spans: &'a [(usize, usize)],
    entries: &'a [(EdgeId, f64)],
    log_z: &'a [f64],
}

impl<'a> SplitTableRef<'a> {
    /// The `(edge, fraction)` next-hop entries of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn next_hops(&self, u: NodeId) -> &'a [(EdgeId, f64)] {
        let (start, len) = self.spans[u.index()];
        &self.entries[start..start + len]
    }

    /// `log Σ_k e^(−v^r_k)` from `u` to the target.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn log_path_sum(&self, u: NodeId) -> f64 {
        self.log_z[u.index()]
    }
}

/// Reusable scratch for the distribution kernel: the per-destination
/// demand column and in-transit flow accumulator.
#[derive(Debug, Default)]
pub(crate) struct DistScratch {
    pub(crate) demands: Vec<f64>,
    pub(crate) incoming: Vec<f64>,
}

/// Monotone counter behind [`Flows`] freshness stamps: each successful
/// engine distribution stamps its output buffer with a fresh value, and
/// any mutation clears the stamp — so a stamp match proves the buffer
/// still holds exactly the columns the engine last wrote (the
/// precondition of the incremental re-distribution path, whose cache *is*
/// the caller's buffer).
static FLOW_STAMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

pub(crate) fn next_flow_stamp() -> u64 {
    FLOW_STAMP.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The flows produced by a traffic distribution: per-destination edge flows
/// and their aggregate.
#[derive(Debug, Clone, Default)]
pub struct Flows {
    dests: Vec<NodeId>,
    per_dest: Vec<Vec<f64>>,
    aggregate: Vec<f64>,
    /// Freshness stamp (see [`next_flow_stamp`]); `0` = unstamped. Every
    /// mutating method clears it; only the engine sets it. Excluded from
    /// equality — it is an identity token, not data.
    stamp: u64,
}

impl PartialEq for Flows {
    fn eq(&self, other: &Flows) -> bool {
        self.dests == other.dests
            && self.per_dest == other.per_dest
            && self.aggregate == other.aggregate
    }
}

impl Flows {
    /// The destinations (commodities), in ascending node order.
    pub fn destinations(&self) -> &[NodeId] {
        &self.dests
    }

    /// Edge flows of the commodity destined to `t`, if `t` is a commodity
    /// and the per-destination columns were kept (tiled aggregate-only
    /// distributions drop them to bound peak memory).
    pub fn for_destination(&self, t: NodeId) -> Option<&[f64]> {
        self.dests
            .iter()
            .position(|&d| d == t)
            .and_then(|i| self.per_dest.get(i))
            .map(|f| f.as_slice())
    }

    /// Aggregate edge flows `f_e = Σ_t f^t_e`.
    pub fn aggregate(&self) -> &[f64] {
        &self.aggregate
    }

    /// Consumes the flows, returning the aggregate vector.
    pub fn into_aggregate(self) -> Vec<f64> {
        self.aggregate
    }

    /// Assembles a `Flows` value from per-destination flow vectors,
    /// computing the aggregate — the constructor external routing schemes
    /// (e.g. the PEFT baseline) use to interoperate with the metrics and
    /// simulator APIs.
    ///
    /// # Panics
    ///
    /// Panics if `per_dest` is misaligned with `dests` or the per-
    /// destination vectors have inconsistent lengths.
    pub fn assemble(dests: Vec<NodeId>, per_dest: Vec<Vec<f64>>, aggregate: Vec<f64>) -> Flows {
        assert_eq!(
            dests.len(),
            per_dest.len(),
            "one flow vector per destination"
        );
        for f in &per_dest {
            assert_eq!(f.len(), aggregate.len(), "flow vector length mismatch");
        }
        Flows {
            dests,
            per_dest,
            aggregate,
            stamp: 0,
        }
    }

    pub(crate) fn new_unchecked(
        dests: Vec<NodeId>,
        per_dest: Vec<Vec<f64>>,
        aggregate: Vec<f64>,
    ) -> Flows {
        Flows {
            dests,
            per_dest,
            aggregate,
            stamp: 0,
        }
    }

    /// The freshness stamp (`0` = no engine distribution owns this
    /// buffer's contents).
    pub(crate) fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Marks the buffer as holding exactly what an engine distribution
    /// just wrote. Only [`crate::RoutingEngine`] calls this.
    pub(crate) fn set_stamp(&mut self, stamp: u64) {
        self.stamp = stamp;
    }

    /// The flow vector of destination *index* `i` (aligned with
    /// [`Flows::destinations`]) — positional access for callers that walk
    /// all commodities, avoiding the by-node scan of
    /// [`Flows::for_destination`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub(crate) fn column(&self, i: usize) -> &[f64] {
        &self.per_dest[i]
    }

    /// Clones `src` into `self`, reusing existing allocations (clear +
    /// extend per vector) — the snapshot copy behind the failure-chain
    /// warm start's base solution, kept allocation-free once shaped.
    pub(crate) fn copy_from(&mut self, src: &Flows) {
        self.stamp = 0;
        self.dests.clear();
        self.dests.extend_from_slice(&src.dests);
        if self.per_dest.len() != src.per_dest.len() {
            self.per_dest.resize_with(src.per_dest.len(), Vec::new);
        }
        for (dst, from) in self.per_dest.iter_mut().zip(&src.per_dest) {
            dst.clear();
            dst.extend_from_slice(from);
        }
        self.aggregate.clear();
        self.aggregate.extend_from_slice(&src.aggregate);
    }

    /// An empty flow set, ready to be shaped by [`Flows::reset`] — the
    /// starting point for reusable distribution buffers.
    pub(crate) fn empty() -> Flows {
        Flows {
            dests: Vec::new(),
            per_dest: Vec::new(),
            aggregate: Vec::new(),
            stamp: 0,
        }
    }

    /// Reshapes for `dests` over `m` edges and zeroes every vector,
    /// reusing existing allocations where the shape already matches.
    pub(crate) fn reset(&mut self, dests: &[NodeId], m: usize) {
        self.stamp = 0;
        if self.dests.as_slice() != dests {
            self.dests.clear();
            self.dests.extend_from_slice(dests);
        }
        if self.per_dest.len() != dests.len() {
            self.per_dest.resize_with(dests.len(), Vec::new);
        }
        for f in &mut self.per_dest {
            f.clear();
            f.resize(m, 0.0);
        }
        self.aggregate.clear();
        self.aggregate.resize(m, 0.0);
    }

    /// Reshapes for an **aggregate-only** distribution over `dests`:
    /// per-destination columns are dropped (freeing their arenas) and only
    /// the aggregate vector is kept, zeroed over `m` edges. The tiled
    /// solver loops use this so peak flow memory is O(edges) instead of
    /// O(dests·edges).
    pub(crate) fn reset_aggregate(&mut self, dests: &[NodeId], m: usize) {
        self.stamp = 0;
        if self.dests.as_slice() != dests {
            self.dests.clear();
            self.dests.extend_from_slice(dests);
        }
        self.per_dest.clear();
        self.aggregate.clear();
        self.aggregate.resize(m, 0.0);
    }

    /// Disjoint mutable access to the per-destination columns and the
    /// aggregate vector — the tiled engine writes a tile's columns while
    /// accumulating into the shared aggregate.
    /// True when per-destination columns are materialised (an
    /// aggregate-only buffer from a tiled solve has none).
    pub(crate) fn has_columns(&self) -> bool {
        self.per_dest.len() == self.dests.len()
    }

    pub(crate) fn parts_mut(&mut self) -> (&mut [Vec<f64>], &mut [f64]) {
        self.stamp = 0;
        (&mut self.per_dest, &mut self.aggregate)
    }

    /// Bytes currently reserved by the flow arenas (capacity, not length) —
    /// a high-water mark, since `Vec` capacity never shrinks across the
    /// reuse cycle.
    pub fn arena_bytes(&self) -> usize {
        self.dests.capacity() * std::mem::size_of::<NodeId>()
            + self.per_dest.capacity() * std::mem::size_of::<Vec<f64>>()
            + self
                .per_dest
                .iter()
                .map(|f| f.capacity() * std::mem::size_of::<f64>())
                .sum::<usize>()
            + self.aggregate.capacity() * std::mem::size_of::<f64>()
    }

    /// Scales every per-destination flow vector by its ratio and rebuilds
    /// the aggregate — the warm-start rescale for proportionally scaled
    /// demand matrices (load sweeps).
    pub(crate) fn scale_per_destination(&mut self, ratios: &[f64]) {
        self.stamp = 0;
        debug_assert_eq!(ratios.len(), self.per_dest.len());
        for a in &mut self.aggregate {
            *a = 0.0;
        }
        for (f, &r) in self.per_dest.iter_mut().zip(ratios) {
            for (x, agg) in f.iter_mut().zip(&mut self.aggregate) {
                *x *= r;
                *agg += *x;
            }
        }
    }

    /// In-place convex combination `self ← (1−α)·self + α·other`, the
    /// Frank–Wolfe update. Requires identical destination sets.
    pub(crate) fn blend_toward(&mut self, other: &Flows, alpha: f64) {
        self.stamp = 0;
        debug_assert_eq!(self.dests, other.dests);
        for (mine, theirs) in self.per_dest.iter_mut().zip(&other.per_dest) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += alpha * (b - *a);
            }
        }
        for (a, b) in self.aggregate.iter_mut().zip(&other.aggregate) {
            *a += alpha * (b - *a);
        }
    }
}

/// Builds the per-destination shortest-path DAGs `ON = {ON_t}` for the
/// given first weights and Dijkstra tolerance.
///
/// Since the batched-engine rework this routes through the CSR engine
/// (validating the weights once and fanning destinations out in parallel
/// for large batches) and materialises owned DAGs at the end; results are
/// bit-identical to calling [`ShortestPathDag::build`] per destination.
/// Iterating callers should prefer [`crate::RoutingEngine`], which also
/// reuses the arenas across calls.
///
/// # Errors
///
/// Propagates [`GraphError`] for invalid weights.
pub fn build_dags(
    graph: &Graph,
    first_weights: &[f64],
    destinations: &[NodeId],
    tolerance: f64,
) -> Result<Vec<ShortestPathDag>, GraphError> {
    let in_csr = Csr::in_of(graph);
    let mut ws = RoutingWorkspace::new();
    let mut set = DagSet::new();
    build_dag_set(
        graph,
        &in_csr,
        first_weights,
        destinations,
        tolerance,
        Parallelism::Auto,
        &mut ws,
        &mut set,
    )?;
    Ok((0..set.len())
        .map(|i| set.to_shortest_path_dag(i, graph))
        .collect())
}

/// Algorithm 3: computes the traffic distribution induced by hop-by-hop
/// forwarding on the DAGs under the given split rule.
///
/// `dags` must be aligned with `traffic.destinations()` (use
/// [`build_dags`]).
///
/// # Errors
///
/// * [`SpefError::UnroutableDemand`] if a source with positive demand has
///   no next hop toward its destination,
/// * [`SpefError::InvalidInput`] if `dags` is misaligned with the traffic
///   matrix or the rule's weight vector is malformed.
pub fn traffic_distribution(
    graph: &Graph,
    dags: &[ShortestPathDag],
    traffic: &TrafficMatrix,
    rule: SplitRule<'_>,
) -> Result<Flows, SpefError> {
    let dests = traffic.destinations();
    let mut tables = SplitTableSet::new();
    let mut scratch = DistScratch::default();
    let mut flows = Flows::empty();
    distribute_batch(
        graph,
        &dests,
        dags.iter(),
        traffic,
        rule,
        &mut tables,
        &mut scratch,
        &mut flows,
    )?;
    Ok(flows)
}

/// Like [`traffic_distribution`], but also returns the per-destination
/// [`SplitTable`]s — the materialised forwarding tables (TABLE II), whose
/// log path sums the NEM dual objective needs.
///
/// # Errors
///
/// Same conditions as [`traffic_distribution`].
pub fn traffic_distribution_detailed(
    graph: &Graph,
    dags: &[ShortestPathDag],
    traffic: &TrafficMatrix,
    rule: SplitRule<'_>,
) -> Result<(Flows, Vec<SplitTable>), SpefError> {
    let dests = traffic.destinations();
    let mut tables = SplitTableSet::new();
    let mut scratch = DistScratch::default();
    let mut flows = Flows::empty();
    distribute_batch(
        graph,
        &dests,
        dags.iter(),
        traffic,
        rule,
        &mut tables,
        &mut scratch,
        &mut flows,
    )?;
    let n = graph.node_count();
    let owned = (0..tables.len())
        .map(|i| SplitTable::from_ref(tables.table(i), n))
        .collect();
    Ok((flows, owned))
}

/// Validates an [`SplitRule::Exponential`] weight vector — once per batch
/// rather than once per destination (identical errors to the per-table
/// validation in [`SplitTable::build`]).
pub(crate) fn validate_rule(graph: &Graph, rule: SplitRule<'_>) -> Result<(), SpefError> {
    if let SplitRule::Exponential(v) = rule {
        if v.len() != graph.edge_count() {
            return Err(SpefError::InvalidInput(format!(
                "second weight vector has length {}, expected {}",
                v.len(),
                graph.edge_count()
            )));
        }
        if let Some((i, &w)) = v.iter().enumerate().find(|(_, &w)| w.is_nan() || w < 0.0) {
            return Err(SpefError::InvalidInput(format!(
                "second weight of edge e{i} is {w}"
            )));
        }
    }
    Ok(())
}

/// The shared distribution kernel behind both execution paths: builds the
/// split table of every destination into `tables` and the flows into
/// `out`, reusing all buffers. Generic over the DAG storage
/// ([`ShortestPathDag`] references or arena-backed
/// [`spef_graph::DagRef`]s); results are bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn distribute_batch<D, I>(
    graph: &Graph,
    dests: &[NodeId],
    dags: I,
    traffic: &TrafficMatrix,
    rule: SplitRule<'_>,
    tables: &mut SplitTableSet,
    scratch: &mut DistScratch,
    out: &mut Flows,
) -> Result<(), SpefError>
where
    D: DagAccess,
    I: IntoIterator<Item = D>,
    I::IntoIter: ExactSizeIterator,
{
    let dags = dags.into_iter();
    if dests.len() != dags.len() {
        return Err(SpefError::InvalidInput(format!(
            "{} DAGs supplied for {} destinations",
            dags.len(),
            dests.len()
        )));
    }
    validate_rule(graph, rule)?;
    out.reset(dests, graph.edge_count());
    tables.reset(graph.node_count());
    let (columns, aggregate) = out.parts_mut();
    distribute_block(
        graph, dests, dags, traffic, rule, tables, scratch, columns, aggregate,
    )
}

/// The per-destination body shared by the untiled and tiled distribution
/// paths: for each `(dag, dest)` pair it appends a split table (indexed
/// locally from 0 within `tables`), routes the destination's demand column
/// into `columns[i]`, and adds it into the **global** `aggregate`. The
/// untiled [`distribute_batch`] runs exactly one block over all
/// destinations; the tiled drivers run it once per tile with the same
/// global aggregate, so the aggregate's floating-point accumulation order
/// (ascending destination) is identical in both paths — that is the
/// bit-determinism contract of the tiled engine.
///
/// `tables` must already be reset for this block and `columns` must be
/// zeroed, `m`-length and aligned with `dests`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn distribute_block<D, I>(
    graph: &Graph,
    dests: &[NodeId],
    dags: I,
    traffic: &TrafficMatrix,
    rule: SplitRule<'_>,
    tables: &mut SplitTableSet,
    scratch: &mut DistScratch,
    columns: &mut [Vec<f64>],
    aggregate: &mut [f64],
) -> Result<(), SpefError>
where
    D: DagAccess,
    I: IntoIterator<Item = D>,
{
    debug_assert_eq!(columns.len(), dests.len());
    scratch.incoming.resize(graph.node_count(), 0.0);

    for (i, (dag, &t)) in dags.into_iter().zip(dests).enumerate() {
        if dag.dag_target() != t {
            return Err(SpefError::InvalidInput(format!(
                "DAG target {} does not match destination {t}",
                dag.dag_target()
            )));
        }
        tables.push_table(graph, &dag, rule);
        traffic.demands_to_into(t, &mut scratch.demands);
        let table = tables.table(i);
        let flows = &mut columns[i];
        distribute_one_into(
            graph,
            &dag,
            table,
            &scratch.demands,
            &mut scratch.incoming,
            flows,
        )?;
        for (agg, f) in aggregate.iter_mut().zip(flows.iter()) {
            *agg += f;
        }
    }
    Ok(())
}

/// Tile-by-tile variant of [`distribute_batch`] for callers that only need
/// the aggregate link flows: split tables and per-destination columns are
/// bounded by the tile size (peak O(tile·edges) instead of
/// O(dests·edges)), and `out` holds the aggregate only
/// ([`Flows::for_destination`] returns `None`). `on_tile(offset, tile
/// dests, tables)` fires after each tile while its split tables are still
/// live, letting callers fold per-destination quantities (NEM dual terms,
/// FIB rows) without retaining the dense arenas.
///
/// Aggregate flows are bit-identical to the untiled path for every tile
/// size: both run [`distribute_block`] over destinations in ascending
/// order against the same global accumulator.
///
/// # Errors
///
/// Same conditions as [`distribute_batch`], plus whatever `on_tile`
/// returns.
///
/// # Panics
///
/// Panics if `tile` is zero.
#[allow(clippy::too_many_arguments)]
pub(crate) fn distribute_batch_tiled<D, I, F>(
    graph: &Graph,
    dests: &[NodeId],
    dags: I,
    traffic: &TrafficMatrix,
    rule: SplitRule<'_>,
    tile: usize,
    tables: &mut SplitTableSet,
    scratch: &mut DistScratch,
    columns: &mut Vec<Vec<f64>>,
    out: &mut Flows,
    mut on_tile: F,
) -> Result<(), SpefError>
where
    D: DagAccess,
    I: IntoIterator<Item = D>,
    I::IntoIter: ExactSizeIterator,
    F: FnMut(usize, &[NodeId], &SplitTableSet) -> Result<(), SpefError>,
{
    assert!(tile > 0, "tile size must be at least 1");
    let mut dags = dags.into_iter();
    if dests.len() != dags.len() {
        return Err(SpefError::InvalidInput(format!(
            "{} DAGs supplied for {} destinations",
            dags.len(),
            dests.len()
        )));
    }
    validate_rule(graph, rule)?;
    let m = graph.edge_count();
    out.reset_aggregate(dests, m);

    let mut offset = 0;
    for chunk in dests.chunks(tile) {
        if columns.len() < chunk.len() {
            columns.resize_with(chunk.len(), Vec::new);
        }
        for col in &mut columns[..chunk.len()] {
            col.clear();
            col.resize(m, 0.0);
        }
        tables.reset(graph.node_count());
        distribute_block(
            graph,
            chunk,
            dags.by_ref().take(chunk.len()),
            traffic,
            rule,
            tables,
            scratch,
            &mut columns[..chunk.len()],
            &mut out.aggregate,
        )?;
        on_tile(offset, chunk, tables)?;
        offset += chunk.len();
    }
    Ok(())
}

/// Distributes one destination's demand column into `flows`, processing
/// sources in decreasing distance order (Algorithm 3's inner loop).
/// `flows` must be pre-zeroed; `incoming` is overwritten.
pub(crate) fn distribute_one_into<D: DagAccess>(
    graph: &Graph,
    dag: &D,
    table: SplitTableRef<'_>,
    demands: &[f64],
    incoming: &mut [f64],
    flows: &mut [f64],
) -> Result<(), SpefError> {
    incoming.fill(0.0);
    let target = dag.dag_target();

    // Demands from nodes that cannot reach the target at all.
    for (s, &d) in demands.iter().enumerate() {
        if d > 0.0 && !dag.dag_reaches_target(NodeId::new(s)) {
            return Err(SpefError::UnroutableDemand {
                source: NodeId::new(s),
                destination: target,
            });
        }
    }

    for &u in dag.dag_order_desc() {
        if u == target {
            continue;
        }
        let total = demands[u.index()] + incoming[u.index()];
        if total <= 0.0 {
            continue;
        }
        let hops = table.next_hops(u);
        if hops.is_empty() {
            return Err(SpefError::UnroutableDemand {
                source: u,
                destination: target,
            });
        }
        for &(e, ratio) in hops {
            let f = total * ratio;
            flows[e.index()] += f;
            incoming[graph.target(e).index()] += f;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_topology::standard;

    /// Diamond: 0 → {1, 2} → 3 with unit weights (two equal-cost paths).
    fn diamond() -> (Graph, Vec<f64>) {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into()); // e0
        g.add_edge(0.into(), 2.into()); // e1
        g.add_edge(1.into(), 3.into()); // e2
        g.add_edge(2.into(), 3.into()); // e3
        (g, vec![1.0; 4])
    }

    fn demand(n: usize, s: usize, t: usize, d: f64) -> TrafficMatrix {
        let mut tm = TrafficMatrix::new(n);
        tm.set(s.into(), t.into(), d);
        tm
    }

    #[test]
    fn even_ecmp_splits_in_half() {
        let (g, w) = diamond();
        let tm = demand(4, 0, 3, 2.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        let flows = traffic_distribution(&g, &dags, &tm, SplitRule::EvenEcmp).unwrap();
        assert_eq!(flows.aggregate(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn exponential_split_matches_eq22() {
        let (g, w) = diamond();
        let tm = demand(4, 0, 3, 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        // Second weights: upper path (e0, e2) has total length 1+0=1,
        // lower (e1, e3) has 0. Ratios: e^{-1} : e^{0}.
        let v = vec![1.0, 0.0, 0.0, 0.0];
        let flows = traffic_distribution(&g, &dags, &tm, SplitRule::Exponential(&v)).unwrap();
        let upper = (-1.0f64).exp() / ((-1.0f64).exp() + 1.0);
        assert!((flows.aggregate()[0] - upper).abs() < 1e-12);
        assert!((flows.aggregate()[1] - (1.0 - upper)).abs() < 1e-12);
        // Conservation through to the sink.
        assert!((flows.aggregate()[2] + flows.aggregate()[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn second_weight_on_shared_suffix_does_not_skew() {
        // If an extra second weight sits on an edge all paths share, the
        // split must stay even (the softmax is shift-invariant).
        let mut g = Graph::with_nodes(5);
        g.add_edge(0.into(), 1.into()); // e0
        g.add_edge(0.into(), 2.into()); // e1
        g.add_edge(1.into(), 3.into()); // e2
        g.add_edge(2.into(), 3.into()); // e3
        g.add_edge(3.into(), 4.into()); // e4 shared suffix
        let w = vec![1.0; 5];
        let tm = demand(5, 0, 4, 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        let v = vec![0.0, 0.0, 0.0, 0.0, 7.0];
        let flows = traffic_distribution(&g, &dags, &tm, SplitRule::Exponential(&v)).unwrap();
        assert!((flows.aggregate()[0] - 0.5).abs() < 1e-12);
        assert!((flows.aggregate()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multihop_aggregation_over_sources() {
        // Chain 0 -> 1 -> 2 with demands from both 0 and 1 to 2: the
        // decreasing-distance order must add 0's transit flow into 1's
        // outgoing total.
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        let w = vec![1.0, 1.0];
        let mut tm = TrafficMatrix::new(3);
        tm.set(0.into(), 2.into(), 1.0);
        tm.set(1.into(), 2.into(), 2.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        let flows = traffic_distribution(&g, &dags, &tm, SplitRule::EvenEcmp).unwrap();
        assert_eq!(flows.aggregate(), &[1.0, 3.0]);
    }

    #[test]
    fn multiple_destinations_aggregate() {
        let (g, w) = diamond();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 2.0);
        tm.set(0.into(), 1.into(), 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        let flows = traffic_distribution(&g, &dags, &tm, SplitRule::EvenEcmp).unwrap();
        assert_eq!(flows.destinations().len(), 2);
        // e0 carries half of the 0->3 demand plus all of 0->1.
        assert_eq!(flows.aggregate()[0], 2.0);
        assert_eq!(
            flows.for_destination(1.into()).unwrap(),
            &[1.0, 0.0, 0.0, 0.0]
        );
        assert!(flows.for_destination(2.into()).is_none());
    }

    #[test]
    fn unroutable_demand_is_reported() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 0.into());
        // Node 2 unreachable.
        let w = vec![1.0, 1.0];
        let tm = demand(3, 0, 2, 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        let err = traffic_distribution(&g, &dags, &tm, SplitRule::EvenEcmp).unwrap_err();
        assert_eq!(
            err,
            SpefError::UnroutableDemand {
                source: NodeId::new(0),
                destination: NodeId::new(2)
            }
        );
    }

    #[test]
    fn misaligned_dags_rejected() {
        let (g, w) = diamond();
        let tm = demand(4, 0, 3, 1.0);
        let dags = build_dags(&g, &w, &[NodeId::new(2)], 0.0).unwrap();
        assert!(matches!(
            traffic_distribution(&g, &dags, &tm, SplitRule::EvenEcmp),
            Err(SpefError::InvalidInput(_))
        ));
    }

    #[test]
    fn invalid_second_weights_rejected() {
        let (g, w) = diamond();
        let tm = demand(4, 0, 3, 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        let bad = vec![-1.0; 4];
        assert!(matches!(
            traffic_distribution(&g, &dags, &tm, SplitRule::Exponential(&bad)),
            Err(SpefError::InvalidInput(_))
        ));
        let short = vec![0.0; 2];
        assert!(matches!(
            traffic_distribution(&g, &dags, &tm, SplitRule::Exponential(&short)),
            Err(SpefError::InvalidInput(_))
        ));
    }

    #[test]
    fn log_path_sum_counts_paths_under_even_rule() {
        let (g, w) = diamond();
        let dag = ShortestPathDag::build(&g, &w, 3.into(), 0.0).unwrap();
        let table = SplitTable::build(&g, &dag, SplitRule::EvenEcmp).unwrap();
        // Two equal-cost paths: log Z = ln 2.
        assert!((table.log_path_sum(0.into()) - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(table.log_path_sum(3.into()), 0.0);
    }

    #[test]
    fn large_second_weights_are_numerically_stable() {
        let (g, w) = diamond();
        let tm = demand(4, 0, 3, 1.0);
        let dags = build_dags(&g, &w, &tm.destinations(), 0.0).unwrap();
        // Huge weights would underflow a naive e^{-v} implementation.
        let v = vec![5000.0, 5001.0, 0.0, 0.0];
        let flows = traffic_distribution(&g, &dags, &tm, SplitRule::Exponential(&v)).unwrap();
        let total = flows.aggregate()[0] + flows.aggregate()[1];
        assert!((total - 1.0).abs() < 1e-9);
        // Path with weight 5000 is e^1 more likely than 5001.
        let ratio = flows.aggregate()[0] / flows.aggregate()[1];
        assert!((ratio - std::f64::consts::E).abs() < 1e-6);
    }

    #[test]
    fn ecmp_on_fig4_matches_hand_computation() {
        // The OSPF baseline behaviour the paper's Fig. 6 relies on:
        // link 1 = edge 0 carries both 4-unit demands 1→2 and 1→3.
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let w = vec![1.0; net.graph().edge_count()];
        let dags = build_dags(net.graph(), &w, &tm.destinations(), 0.0).unwrap();
        let flows = traffic_distribution(net.graph(), &dags, &tm, SplitRule::EvenEcmp).unwrap();
        let agg = flows.aggregate();
        assert!(
            (agg[0] - 8.0).abs() < 1e-12,
            "bottleneck link 1: {}",
            agg[0]
        );
        // 1→7 splits across the two 2-hop paths via 5 and via 6.
        assert!((agg[3] - 2.0).abs() < 1e-12);
        assert!((agg[5] - 2.0).abs() < 1e-12);
        // 3→2 rides its direct link.
        assert!((agg[7] - 4.0).abs() < 1e-12);
    }
}
