//! Primal Frank–Wolfe reference solver for `TE(V, G, c, D)` with β > 0.
//!
//! Algorithm 1 of the paper is a projected *subgradient* method on the dual;
//! it converges, but slowly, and the paper itself only shows it approaching
//! the optimum (Fig. 12). Experiments that need tight optima (utility
//! curves, TABLE I, the first link weights) use this conditional-gradient
//! method on the primal instead, and the two are cross-validated in the
//! test-suite (they optimise the same `TE(V, G, c, D)`).
//!
//! The method exploits the same structure as Algorithm 1: linearising the
//! utility at the current flow gives per-link costs `κ_e = V'_e(s_e)`, and
//! the linear subproblem over the flow polytope is exactly `Route_t` — route
//! every demand along shortest paths under `κ`. An exact concave line
//! search (bisection on the directional derivative) picks the step.
//!
//! **Capacity handling.** The flow polytope carries only the conservation
//! constraints; capacities enter through the barrier in `V` (for β ≥ 1,
//! `V(s) → −∞` as `s → 0`). To make every iterate well-defined even when
//! intermediate flows overshoot a capacity, the utility is extended below a
//! tiny per-link threshold `σ_e = σ·c_e` by its second-order Taylor model
//! (still concave, finitely valued, with a steeply increasing marginal).
//! Whenever the true optimum keeps `s* ≥ σ_e` — which holds for every
//! routable instance since `V'(0⁺) = ∞` for β > 0 — the smoothed and true
//! problems have the same solution. If the demands are not routable the
//! smoothed optimum retains an over-capacity link, which is reported as
//! [`SpefError::Infeasible`].

use spef_graph::{EdgeId, NodeId};
use spef_topology::{Network, TrafficMatrix};

use crate::engine::RoutingEngine;
use crate::solver::{ConvergenceCriteria, FwSession, FwStart, TeWorkspace};
use crate::te::TeSolution;
use crate::traffic_dist::SplitRule;
use crate::{Objective, SpefError};

/// Relative duality-gap tolerance used when
/// [`ConvergenceCriteria::gap_tolerance`] is `None`.
pub const DEFAULT_RELATIVE_GAP: f64 = 1e-8;

/// Configuration of the Frank–Wolfe solver.
#[derive(Debug, Clone)]
pub struct FrankWolfeConfig {
    /// Stopping rules (default: 1500 iterations, relative duality gap
    /// [`DEFAULT_RELATIVE_GAP`]).
    pub convergence: ConvergenceCriteria,
    /// Bisection steps of the exact line search (default 60).
    pub line_search_iterations: usize,
    /// Barrier smoothing threshold as a fraction of link capacity
    /// (default 1e-7).
    pub smoothing_fraction: f64,
}

impl Default for FrankWolfeConfig {
    fn default() -> Self {
        FrankWolfeConfig {
            convergence: ConvergenceCriteria::budget(1500),
            line_search_iterations: 60,
            smoothing_fraction: 1e-7,
        }
    }
}

impl FrankWolfeConfig {
    /// A cheaper preset for large parameter sweeps (500 iterations,
    /// relative gap 1e-6).
    pub fn fast() -> Self {
        FrankWolfeConfig {
            convergence: ConvergenceCriteria::with_tolerance(500, 1e-6),
            ..Self::default()
        }
    }
}

/// Smoothed utility: the true `V_e` above `σ_e`, its second-order Taylor
/// extension below.
struct SmoothedUtility<'a> {
    objective: &'a Objective,
    sigma: Vec<f64>,
}

impl<'a> SmoothedUtility<'a> {
    fn new(objective: &'a Objective, capacities: &[f64], fraction: f64) -> Self {
        SmoothedUtility {
            objective,
            sigma: capacities.iter().map(|c| c * fraction).collect(),
        }
    }

    fn value(&self, e: usize, s: f64) -> f64 {
        let sig = self.sigma[e];
        let id = EdgeId::new(e);
        if s >= sig {
            self.objective.utility(id, s)
        } else {
            let v = self.objective.utility(id, sig);
            let v1 = self.objective.marginal_utility(id, sig);
            let v2 = self.objective.second_derivative(id, sig);
            v + v1 * (s - sig) + 0.5 * v2 * (s - sig) * (s - sig)
        }
    }

    /// `V'_smooth(s)`; always finite and strictly positive.
    fn marginal(&self, e: usize, s: f64) -> f64 {
        let sig = self.sigma[e];
        let id = EdgeId::new(e);
        if s >= sig {
            self.objective.marginal_utility(id, s)
        } else {
            let v1 = self.objective.marginal_utility(id, sig);
            let v2 = self.objective.second_derivative(id, sig);
            v1 + v2 * (s - sig)
        }
    }

    fn aggregate(&self, spare: &[f64]) -> f64 {
        spare
            .iter()
            .enumerate()
            .map(|(e, &s)| self.value(e, s))
            .sum()
    }
}

/// Solves `TE(V, G, c, D)` for β > 0. Called through
/// [`solve_te`](crate::solve_te), which handles the β = 0 LP case.
///
/// # Errors
///
/// * [`SpefError::InvalidInput`] for size mismatches, an empty traffic
///   matrix, or β = 0;
/// * [`SpefError::UnroutableDemand`] if a demand pair is disconnected;
/// * [`SpefError::Infeasible`] if the optimum cannot keep every link
///   strictly below capacity.
#[deprecated(
    note = "use the TeSolver session API: `config.solve(TeInstance::new(network, traffic, objective))` \
            or `solve_in` with a TeWorkspace (note: the trait solves beta = 0 via the LP instead of erroring)"
)]
pub fn solve(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &FrankWolfeConfig,
) -> Result<TeSolution, SpefError> {
    solve_in(network, traffic, objective, config, &mut TeWorkspace::new())
}

/// The session entry point for β > 0: workspace-resident buffers,
/// warm-start from a compatible saved solution (proportional demand
/// rescale), cold fallback otherwise. Reached through the
/// [`TeSolver`](crate::TeSolver) impl on [`FrankWolfeConfig`] (via
/// [`solve_te_in`](crate::te::solve_te_in), which adds the β = 0 LP
/// dispatch).
pub(crate) fn solve_in(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &FrankWolfeConfig,
    ws: &mut TeWorkspace,
) -> Result<TeSolution, SpefError> {
    crate::te::validate_sizes(network, traffic, objective)?;
    if objective.beta() == 0.0 {
        return Err(SpefError::InvalidInput(
            "Frank-Wolfe requires beta > 0; beta = 0 is solved as an LP by solve_te".to_string(),
        ));
    }
    let dests = traffic.destinations();
    if dests.is_empty() {
        return Err(SpefError::InvalidInput(
            "traffic matrix is empty".to_string(),
        ));
    }

    // Warm start: rescale the previous solution when the fingerprint
    // matches and the demands are per-destination proportional, or — for
    // link-removal instances — project a saved full-topology solution
    // onto the surviving edge set. Pinned mode always runs the cold
    // trajectory.
    // Effective tile: a tile covering the whole destination set runs the
    // dense path (same results, and the SPF skip fingerprint stays live).
    let tile = ws.tile.filter(|&t| t < dests.len());
    let start = if config.convergence.pinned {
        FwStart::Cold
    } else {
        ws.fw.warm_start(
            network,
            traffic,
            objective,
            config.smoothing_fraction,
            &dests,
            tile,
        )
    };
    let warm = start != FwStart::Cold;

    let mut engine = RoutingEngine::with_state(network.graph(), ws.take_engine(network.graph()));
    let outcome = run(
        network,
        traffic,
        objective,
        config,
        &dests,
        warm,
        tile,
        &mut engine,
        &mut ws.fw,
    );
    ws.put_engine(engine.into_state());
    match outcome {
        Ok((utility, weights, relative_gap, iterations)) => {
            ws.fw.record_solution(
                network,
                traffic,
                objective,
                config.smoothing_fraction,
                &dests,
                tile,
                start == FwStart::RemovalProjected,
            );
            Ok(TeSolution {
                flows: ws.fw.flows.clone(),
                spare: ws.fw.spare.clone(),
                utility,
                weights,
                relative_gap,
                iterations,
            })
        }
        Err(e) => {
            // The buffers may hold a half-blended iterate; nothing claims
            // they solve anything.
            ws.fw.forget();
            Err(e)
        }
    }
}

/// The conditional-gradient loop on workspace buffers. Op-for-op the
/// historical cold path when `warm` is false: arena reuse must never
/// change results.
#[allow(clippy::too_many_arguments)]
fn run(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &FrankWolfeConfig,
    dests: &[NodeId],
    warm: bool,
    tile: Option<usize>,
    engine: &mut RoutingEngine<'_>,
    fw: &mut FwSession,
) -> Result<(f64, Vec<f64>, f64, usize), SpefError> {
    let m = network.graph().edge_count();
    let caps = network.capacities();
    let smooth = SmoothedUtility::new(objective, caps, config.smoothing_fraction);
    let gap_tol = config
        .convergence
        .gap_tolerance
        .unwrap_or(DEFAULT_RELATIVE_GAP);
    let pinned = config.convergence.pinned;

    if !warm {
        // Initial point: even-ECMP on InvCap weights (always conservation-
        // feasible; capacities are handled by the smoothed barrier).
        fw.init_weights.clear();
        fw.init_weights.extend(caps.iter().map(|c| 1.0 / c));
        if let Some(t) = tile {
            // Tiled build+distribute: DAG/table arenas stay O(tile·edges).
            // FW keeps the dense per-destination columns — its blend
            // update needs them — so only the routing arenas shrink.
            engine.distribute_tiled(
                &fw.init_weights,
                dests,
                0.0,
                traffic,
                SplitRule::EvenEcmp,
                t,
                true,
                &mut fw.flows,
                |_, _, _, _| Ok(()),
            )?;
        } else {
            engine.build_dags(&fw.init_weights, dests, 0.0)?;
            engine.distribute_into(traffic, SplitRule::EvenEcmp, &mut fw.flows)?;
        }
    }

    fw.spare.clear();
    fw.spare
        .extend(caps.iter().zip(fw.flows.aggregate()).map(|(c, f)| c - f));
    fw.kappa.clear();
    fw.kappa.resize(m, 0.0);
    fw.delta.clear();
    fw.delta.resize(m, 0.0);
    let mut gap = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..config.convergence.max_iterations {
        iterations = iter + 1;
        // Linearise: per-link cost κ = V'_smooth(s) > 0.
        for (e, k) in fw.kappa.iter_mut().enumerate() {
            *k = smooth.marginal(e, fw.spare[e]);
        }
        // All-or-nothing target: Route_t under κ (even split over ties).
        if let Some(t) = tile {
            engine.distribute_tiled(
                &fw.kappa,
                dests,
                0.0,
                traffic,
                SplitRule::EvenEcmp,
                t,
                true,
                &mut fw.target,
                |_, _, _, _| Ok(()),
            )?;
        } else {
            engine.build_dags(&fw.kappa, dests, 0.0)?;
            engine.distribute_into(traffic, SplitRule::EvenEcmp, &mut fw.target)?;
        }

        // One pass over the aggregates serves the gap, the line-search
        // direction Δf = y − f, and (below) the spare update.
        let agg = fw.flows.aggregate();
        let target_agg = fw.target.aggregate();
        gap = 0.0;
        for e in 0..m {
            gap += fw.kappa[e] * (agg[e] - target_agg[e]);
            fw.delta[e] = target_agg[e] - agg[e];
        }
        let obj_now = smooth.aggregate(&fw.spare);
        if !pinned && gap <= gap_tol * obj_now.abs().max(1.0) {
            break;
        }

        // Exact line search on φ(α) = Σ V_smooth(s − αΔf).
        let phi_prime = |alpha: f64| -> f64 {
            fw.spare
                .iter()
                .zip(&fw.delta)
                .enumerate()
                .map(|(e, (&s, &d))| -d * smooth.marginal(e, s - alpha * d))
                .sum()
        };
        let alpha = if phi_prime(1.0) >= 0.0 {
            1.0
        } else {
            let (mut lo, mut hi) = (0.0f64, 1.0f64);
            for _ in 0..config.line_search_iterations {
                let mid = 0.5 * (lo + hi);
                if phi_prime(mid) > 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };
        if !pinned && alpha <= 0.0 {
            break;
        }
        if alpha > 0.0 {
            fw.flows.blend_toward(&fw.target, alpha);
            for (s, (c, f)) in fw
                .spare
                .iter_mut()
                .zip(caps.iter().zip(fw.flows.aggregate()))
            {
                *s = c - f;
            }
        }
    }

    // Infeasibility check: the smoothed optimum must keep all links
    // strictly under capacity (σ is far below any meaningful spare).
    if fw.spare.iter().any(|&s| s <= 0.0) {
        return Err(SpefError::Infeasible);
    }

    let utility = objective.aggregate_utility(&fw.spare);
    let weights: Vec<f64> = fw
        .spare
        .iter()
        .enumerate()
        .map(|(e, &s)| objective.marginal_utility(EdgeId::new(e), s))
        .collect();
    let relative_gap = gap / utility.abs().max(1.0);
    Ok((utility, weights, relative_gap, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic_dist::{build_dags, traffic_distribution};
    use spef_graph::NodeId;
    use spef_topology::standard;

    /// Session-API stand-in for the deprecated free function (same
    /// contract: β = 0 is rejected, not LP-dispatched).
    fn solve(
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        config: &FrankWolfeConfig,
    ) -> Result<TeSolution, SpefError> {
        solve_in(network, traffic, objective, config, &mut TeWorkspace::new())
    }

    /// Two disjoint 2-link paths from 0 to 3 with equal capacities: the
    /// proportional optimum splits the demand exactly in half.
    fn parallel_paths_net() -> Network {
        let mut b = Network::builder("par");
        let n0 = b.add_node("0", (0.0, 0.0));
        let n1 = b.add_node("1", (1.0, 1.0));
        let n2 = b.add_node("2", (1.0, -1.0));
        let n3 = b.add_node("3", (2.0, 0.0));
        b.add_duplex_link(n0, n1, 2.0);
        b.add_duplex_link(n0, n2, 2.0);
        b.add_duplex_link(n1, n3, 2.0);
        b.add_duplex_link(n2, n3, 2.0);
        b.build().unwrap()
    }

    #[test]
    fn symmetric_instance_splits_evenly() {
        let net = parallel_paths_net();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 2.0);
        let obj = Objective::proportional(net.link_count());
        let sol = solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        let f = sol.flows.aggregate();
        // Forward edges 0,2 (0→1, 0→2) each carry 1.
        assert!((f[0] - 1.0).abs() < 1e-6, "{f:?}");
        assert!((f[2] - 1.0).abs() < 1e-6);
        assert!(sol.relative_gap < 1e-6);
    }

    #[test]
    fn asymmetric_capacities_balance_marginal_utility() {
        // Same topology, upper path capacity 4, lower 2 (both hops).
        let mut b = Network::builder("asym");
        let n0 = b.add_node("0", (0.0, 0.0));
        let n1 = b.add_node("1", (1.0, 1.0));
        let n2 = b.add_node("2", (1.0, -1.0));
        let n3 = b.add_node("3", (2.0, 0.0));
        b.add_duplex_link(n0, n1, 4.0);
        b.add_duplex_link(n0, n2, 2.0);
        b.add_duplex_link(n1, n3, 4.0);
        b.add_duplex_link(n2, n3, 2.0);
        let net = b.build().unwrap();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 3.0);
        let obj = Objective::proportional(net.link_count());
        let sol = solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        let f = sol.flows.aggregate();
        // β=1 KKT: 2/(4−x) = 2/(2−(3−x)) per path ⇒ x − ... solves to
        // x = 2.5 on the wide path, 0.5 on the narrow one (equal spare 1.5).
        assert!((f[0] - 2.5).abs() < 1e-4, "wide path flow {}", f[0]);
        assert!((f[2] - 0.5).abs() < 1e-4, "narrow path flow {}", f[2]);
        // Equal path marginal costs at the optimum.
        let w_up = sol.weights[0] + sol.weights[4];
        let w_lo = sol.weights[2] + sol.weights[6];
        assert!((w_up - w_lo).abs() < 1e-4, "{w_up} vs {w_lo}");
    }

    #[test]
    fn weights_are_marginal_utilities() {
        let net = parallel_paths_net();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        let obj = Objective::uniform(2.0, net.link_count());
        let sol = solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        for e in 0..net.link_count() {
            let expected = obj.marginal_utility(EdgeId::new(e), sol.spare[e]);
            assert!((sol.weights[e] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn infeasible_demand_detected() {
        let net = parallel_paths_net();
        let mut tm = TrafficMatrix::new(4);
        // Max flow 0 → 3 is 4; ask for 5.
        tm.set(0.into(), 3.into(), 5.0);
        let obj = Objective::proportional(net.link_count());
        assert_eq!(
            solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap_err(),
            SpefError::Infeasible
        );
    }

    #[test]
    fn disconnected_demand_detected() {
        // Strongly connected network, but we build traffic for a node pair
        // that exists — so instead test the empty-matrix rejection and the
        // beta=0 rejection here.
        let net = parallel_paths_net();
        let tm = TrafficMatrix::new(4);
        let obj = Objective::proportional(net.link_count());
        assert!(matches!(
            solve(&net, &tm, &obj, &FrankWolfeConfig::default()),
            Err(SpefError::InvalidInput(_))
        ));
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 1.0);
        let obj0 = Objective::min_hop(net.link_count());
        assert!(matches!(
            solve(&net, &tm, &obj0, &FrankWolfeConfig::default()),
            Err(SpefError::InvalidInput(_))
        ));
    }

    #[test]
    fn fig1_proportional_matches_table1_utilizations() {
        // TABLE I, β = 1 column: utilizations 0.67 on (1,3), 0.90 on (3,4),
        // 0.33 on (1,2) and (2,3) — the demand 1→3 splits 2:1 between the
        // direct link and the 2-hop detour (equal spare per *path*).
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let obj = Objective::proportional(net.link_count());
        let sol = solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        let u = net.utilizations(sol.flows.aggregate());
        assert!((u[0] - 2.0 / 3.0).abs() < 1e-3, "(1,3): {}", u[0]);
        assert!((u[1] - 0.9).abs() < 1e-9, "(3,4): {}", u[1]);
        assert!((u[2] - 1.0 / 3.0).abs() < 1e-3, "(1,2): {}", u[2]);
        assert!((u[3] - 1.0 / 3.0).abs() < 1e-3, "(2,3): {}", u[3]);
    }

    #[test]
    fn fig1_weights_match_table1_ratios() {
        // TABLE I, β = 1: weights 3, 10, 1.5, 1.5 — i.e. w = 1/s with
        // s = (1/3, 0.1, 2/3, 2/3).
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let obj = Objective::proportional(net.link_count());
        let sol = solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        assert!(
            (sol.weights[0] - 3.0).abs() < 2e-2,
            "w13 = {}",
            sol.weights[0]
        );
        assert!(
            (sol.weights[1] - 10.0).abs() < 1e-6,
            "w34 = {}",
            sol.weights[1]
        );
        assert!(
            (sol.weights[2] - 1.5).abs() < 1e-2,
            "w12 = {}",
            sol.weights[2]
        );
        assert!(
            (sol.weights[3] - 1.5).abs() < 1e-2,
            "w23 = {}",
            sol.weights[3]
        );
    }

    #[test]
    fn higher_beta_reduces_mlu() {
        // On Fig. 4, utilization of the bottleneck decreases in β (Fig. 6).
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let mut mlus = Vec::new();
        for beta in [1.0, 2.0, 5.0] {
            let obj = Objective::uniform(beta, net.link_count());
            let sol = solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
            mlus.push(crate::metrics::max_link_utilization(
                &net,
                sol.flows.aggregate(),
            ));
        }
        assert!(mlus[0] > mlus[1] - 1e-6, "{mlus:?}");
        assert!(mlus[1] > mlus[2] - 1e-6, "{mlus:?}");
        assert!(mlus[2] < 1.0, "{mlus:?}");
    }

    #[test]
    fn utility_at_least_ecmp_baseline() {
        // The optimal TE utility must dominate the OSPF even-split value.
        let net = standard::fig4();
        let tm = standard::fig4_demands().scaled(0.5); // keep OSPF feasible
        let obj = Objective::proportional(net.link_count());
        let sol = solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        let invcap: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let dags = build_dags(net.graph(), &invcap, &tm.destinations(), 0.0).unwrap();
        let ecmp = traffic_distribution(net.graph(), &dags, &tm, SplitRule::EvenEcmp).unwrap();
        let spare_ecmp: Vec<f64> = net
            .capacities()
            .iter()
            .zip(ecmp.aggregate())
            .map(|(c, f)| c - f)
            .collect();
        assert!(sol.utility >= obj.aggregate_utility(&spare_ecmp) - 1e-9);
    }

    #[test]
    fn flows_conserve_per_destination() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let obj = Objective::proportional(net.link_count());
        let sol = solve(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        for &t in sol.flows.destinations() {
            let f = sol.flows.for_destination(t).unwrap();
            let div = net.graph().divergence(f);
            let demands = tm.demands_to(t);
            for node in net.graph().nodes() {
                if node == t {
                    continue;
                }
                assert!(
                    (div[node.index()] - demands[node.index()]).abs() < 1e-9,
                    "conservation at {node} for dest {t}"
                );
            }
        }
        let _ = NodeId::new(0);
    }
}
