//! The optimal traffic-engineering problem `TE(V, G, c, D)` (Eq. 5) and its
//! solution type.
//!
//! `solve_te` dispatches on the objective's β:
//!
//! * **β > 0** — the strictly concave case; solved by the primal
//!   [Frank–Wolfe reference solver](crate::frank_wolfe). First weights are
//!   `w = V'(s*)` (Eq. 6b; with β > 0 no link saturates, so Theorem 4.1's
//!   uniqueness condition holds).
//! * **β = 0** — `V` is linear, so `TE` is the LP
//!   `min Σ q_e f_e  s.t.  Σ_t f^t ≤ c, B f^t = d^t` (Example 3). The
//!   optimal first weights are the LP duals `w_e = q_e − y_e` where `y_e ≤ 0`
//!   is the capacity shadow price, computed exactly with the `spef-lp`
//!   simplex.

use spef_graph::{EdgeId, NodeId};
use spef_lp::simplex::{LinearProgram, Relation, SimplexError};
use spef_topology::{Network, TrafficMatrix};

use crate::frank_wolfe::{self, FrankWolfeConfig};
use crate::solver::TeWorkspace;
use crate::traffic_dist::Flows;
use crate::{Objective, SpefError};

/// An optimal (or near-optimal) solution of `TE(V, G, c, D)`.
#[derive(Debug, Clone)]
pub struct TeSolution {
    /// Per-destination and aggregate optimal flows `f*`.
    pub flows: Flows,
    /// Optimal spare capacities `s* = c − f*`.
    pub spare: Vec<f64>,
    /// Aggregate utility `Σ_e V_e(s*_e)` under the true (unsmoothed)
    /// objective; `−∞` if some link is saturated under a β ≥ 1 objective.
    pub utility: f64,
    /// Optimal first link weights: `V'(s*)` for β > 0, LP duals for β = 0.
    pub weights: Vec<f64>,
    /// Relative optimality certificate: the Frank–Wolfe duality gap over
    /// `max(1, |utility|)` for β > 0; exactly 0 for the LP path.
    pub relative_gap: f64,
    /// Iterations the solver spent.
    pub iterations: usize,
}

/// Solves `TE(V, G, c, D)` cold on a fresh workspace.
///
/// # Errors
///
/// * [`SpefError::Infeasible`] if the demands cannot be routed strictly
///   within capacity,
/// * [`SpefError::InvalidInput`] on size mismatches,
/// * [`SpefError::UnroutableDemand`] if some demand pair is disconnected.
#[deprecated(
    since = "0.6.0",
    note = "use `TeSolver::solve` / `solve_in` on `FrankWolfeConfig`"
)]
pub fn solve_te(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &FrankWolfeConfig,
) -> Result<TeSolution, SpefError> {
    solve_te_in(network, traffic, objective, config, &mut TeWorkspace::new())
}

/// Solves `TE(V, G, c, D)` in the caller's workspace: β > 0 runs the
/// Frank–Wolfe session solver (DAG arenas, warm start); β = 0 solves the
/// LP with the workspace's simplex tableau arena.
pub(crate) fn solve_te_in(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &FrankWolfeConfig,
    ws: &mut TeWorkspace,
) -> Result<TeSolution, SpefError> {
    validate_sizes(network, traffic, objective)?;
    if objective.beta() == 0.0 {
        solve_beta_zero(network, traffic, objective, ws)
    } else {
        frank_wolfe::solve_in(network, traffic, objective, config, ws)
    }
}

pub(crate) fn validate_sizes(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
) -> Result<(), SpefError> {
    if traffic.node_count() != network.node_count() {
        return Err(SpefError::InvalidInput(format!(
            "traffic matrix covers {} nodes, network has {}",
            traffic.node_count(),
            network.node_count()
        )));
    }
    if objective.link_count() != network.link_count() {
        return Err(SpefError::InvalidInput(format!(
            "objective covers {} links, network has {}",
            objective.link_count(),
            network.link_count()
        )));
    }
    Ok(())
}

/// Exact LP solution of the β = 0 (linear-utility) TE problem.
fn solve_beta_zero(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    ws: &mut TeWorkspace,
) -> Result<TeSolution, SpefError> {
    let g = network.graph();
    let m = g.edge_count();
    let dests = traffic.destinations();
    if dests.is_empty() {
        return Err(SpefError::InvalidInput(
            "traffic matrix is empty".to_string(),
        ));
    }
    // Variables: f^t_e laid out as t-major blocks of m.
    let var = |ti: usize, e: usize| ti * m + e;
    let mut lp = LinearProgram::minimize(dests.len() * m);
    for ti in 0..dests.len() {
        for e in 0..m {
            lp.set_objective(var(ti, e), objective.q(EdgeId::new(e)));
        }
    }
    // Capacity rows.
    let mut cap_rows = Vec::with_capacity(m);
    for e in 0..m {
        let row: Vec<(usize, f64)> = (0..dests.len()).map(|ti| (var(ti, e), 1.0)).collect();
        cap_rows.push(lp.add_constraint(&row, Relation::Le, network.capacity(EdgeId::new(e))));
    }
    // Conservation rows per destination and non-destination node.
    for (ti, &t) in dests.iter().enumerate() {
        let demands = traffic.demands_to(t);
        for node in g.nodes() {
            if node == t {
                continue;
            }
            let mut row: Vec<(usize, f64)> = Vec::new();
            for &e in g.out_edges(node) {
                row.push((var(ti, e.index()), 1.0));
            }
            for &e in g.in_edges(node) {
                row.push((var(ti, e.index()), -1.0));
            }
            lp.add_constraint(&row, Relation::Eq, demands[node.index()]);
        }
    }
    // The LP is built fresh each call (the constraint matrix depends on
    // the demands), so the pivots run cold — but the tableau arena in the
    // workspace is reused across solves.
    let sol = match lp.solve_with(&mut ws.simplex) {
        Ok(sol) => sol,
        Err(SimplexError::Infeasible) => return Err(SpefError::Infeasible),
        Err(e) => return Err(SpefError::InvalidInput(format!("beta=0 LP failed: {e}"))),
    };

    let mut per_dest = Vec::with_capacity(dests.len());
    let mut aggregate = vec![0.0; m];
    for ti in 0..dests.len() {
        let f: Vec<f64> = (0..m).map(|e| sol.value(var(ti, e))).collect();
        for (agg, fe) in aggregate.iter_mut().zip(&f) {
            *agg += fe;
        }
        per_dest.push(f);
    }
    let spare: Vec<f64> = network
        .capacities()
        .iter()
        .zip(&aggregate)
        .map(|(c, f)| (c - f).max(0.0))
        .collect();
    let utility = objective.aggregate_utility(&spare);
    // First weights from the capacity duals: w = q − y, y ≤ 0.
    let weights: Vec<f64> = cap_rows
        .iter()
        .enumerate()
        .map(|(e, &row)| objective.q(EdgeId::new(e)) - sol.dual(row))
        .collect();

    let flows = Flows::from_parts(dests, per_dest, aggregate);
    Ok(TeSolution {
        flows,
        spare,
        utility,
        weights,
        relative_gap: 0.0,
        iterations: 1,
    })
}

impl Flows {
    /// Assembles a `Flows` value from raw parts (used by the solvers).
    ///
    /// # Panics
    ///
    /// Panics if the per-destination list is misaligned with `dests` or the
    /// aggregate length differs from the per-destination vectors.
    pub(crate) fn from_parts(
        dests: Vec<NodeId>,
        per_dest: Vec<Vec<f64>>,
        aggregate: Vec<f64>,
    ) -> Flows {
        assert_eq!(dests.len(), per_dest.len());
        for f in &per_dest {
            assert_eq!(f.len(), aggregate.len());
        }
        Flows::new_unchecked(dests, per_dest, aggregate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_topology::standard;

    /// Cold-solve helper shadowing the deprecated free function.
    fn solve_te(
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        config: &FrankWolfeConfig,
    ) -> Result<TeSolution, SpefError> {
        solve_te_in(network, traffic, objective, config, &mut TeWorkspace::new())
    }

    #[test]
    fn beta_zero_on_fig1_saturates_direct_link() {
        // min-hop on Fig. 1: all of d(1→3)=1 goes on the direct (1,3) link
        // (capacity 1, exactly saturating it), d(3→4)=0.9 on (3,4).
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let obj = Objective::min_hop(net.link_count());
        let sol = solve_te(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        let f = sol.flows.aggregate();
        assert!((f[0] - 1.0).abs() < 1e-9, "direct (1,3): {}", f[0]);
        assert!((f[1] - 0.9).abs() < 1e-9, "(3,4): {}", f[1]);
        // Total flow = 1.9 (no detours), utility = sum of spare = 6 - 1.9.
        let total: f64 = f.iter().sum();
        assert!((total - 1.9).abs() < 1e-9);
        assert!((sol.utility - (6.0 - 1.9)).abs() < 1e-9);
        // The saturated link carries an elevated weight (w >= q = 1);
        // unsaturated links keep w = q = 1.
        assert!(sol.weights[0] >= 1.0 - 1e-9);
        assert!((sol.weights[1] - 1.0).abs() < 1e-9);
        assert!((sol.weights[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn beta_zero_splits_when_demand_exceeds_shortest_capacity() {
        // Fig. 1 with the (1→3) demand raised to 1.5: capacity 1 on the
        // direct link forces 0.5 onto the 2-hop detour 1-2-3.
        let net = standard::fig1();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 2.into(), 1.5);
        let obj = Objective::min_hop(net.link_count());
        let sol = solve_te(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap();
        let f = sol.flows.aggregate();
        assert!((f[0] - 1.0).abs() < 1e-9);
        assert!((f[2] - 0.5).abs() < 1e-9);
        assert!((f[3] - 0.5).abs() < 1e-9);
        // The saturated link's weight rises to the detour cost
        // (2 hops x q=1), making the KKT conditions hold.
        assert!(sol.weights[0] >= 2.0 - 1e-9, "w = {}", sol.weights[0]);
    }

    #[test]
    fn beta_zero_infeasible_demand_detected() {
        let net = standard::fig1();
        let mut tm = TrafficMatrix::new(4);
        // 2.5 units from 1 to 3 cannot fit through cut {(1,3),(1,2)} of
        // capacity 2.
        tm.set(0.into(), 2.into(), 2.5);
        let obj = Objective::min_hop(net.link_count());
        assert_eq!(
            solve_te(&net, &tm, &obj, &FrankWolfeConfig::default()).unwrap_err(),
            SpefError::Infeasible
        );
    }

    #[test]
    fn size_mismatches_rejected() {
        let net = standard::fig1();
        let tm = TrafficMatrix::new(7);
        let obj = Objective::proportional(net.link_count());
        assert!(matches!(
            solve_te(&net, &tm, &obj, &FrankWolfeConfig::default()),
            Err(SpefError::InvalidInput(_))
        ));
        let tm = standard::fig1_demands();
        let obj = Objective::proportional(3);
        assert!(matches!(
            solve_te(&net, &tm, &obj, &FrankWolfeConfig::default()),
            Err(SpefError::InvalidInput(_))
        ));
    }

    #[test]
    fn empty_traffic_rejected() {
        let net = standard::fig1();
        let tm = TrafficMatrix::new(4);
        let obj = Objective::min_hop(net.link_count());
        assert!(matches!(
            solve_te(&net, &tm, &obj, &FrankWolfeConfig::default()),
            Err(SpefError::InvalidInput(_))
        ));
    }
}
