//! First-weight post-processing: scaling, integer rounding and the Dijkstra
//! tolerances of §V.G ("Noninteger Link Weights").
//!
//! Routing protocols like OSPF and IS-IS carry link weights in a finite
//! integer field. The paper converts the optimal (real-valued) weights via
//!
//! ```text
//! w'_e = round( w_e · max_e s_e )
//! ```
//!
//! which guarantees the link with maximum spare capacity gets weight 1
//! (for the β = 1, q = 1 objective, where `w = 1/s`). Because rounding
//! perturbs path costs, equal-cost detection must use a tolerance:
//! the paper specifies **0.3** for noninteger (scaled) weights and **1**
//! for integer weights.

use crate::{Objective, SpefError};

/// Dijkstra equal-cost tolerance for *scaled noninteger* weights (§V.G).
pub const NONINTEGER_DIJKSTRA_TOLERANCE: f64 = 0.3;

/// Dijkstra equal-cost tolerance for *integer* weights (§V.G).
pub const INTEGER_DIJKSTRA_TOLERANCE: f64 = 1.0;

/// Computes the optimal first weights `w_e = V'_e(s_e)` from a spare-
/// capacity vector (Eq. 6b). Only valid for β > 0, where no optimal spare
/// capacity is zero (Theorem 4.1's uniqueness case); for β = 0 the weights
/// come from the LP duals instead (see [`solve_te`](crate::solve_te)).
///
/// # Errors
///
/// Returns [`SpefError::InvalidInput`] if β = 0, if lengths mismatch, or if
/// some spare capacity is not strictly positive.
pub fn first_weights(objective: &Objective, spare: &[f64]) -> Result<Vec<f64>, SpefError> {
    if objective.beta() == 0.0 {
        return Err(SpefError::InvalidInput(
            "beta = 0 weights are LP duals, not marginal utilities".to_string(),
        ));
    }
    if spare.len() != objective.link_count() {
        return Err(SpefError::InvalidInput(format!(
            "spare vector has length {}, objective covers {} links",
            spare.len(),
            objective.link_count()
        )));
    }
    if let Some((e, &s)) = spare.iter().enumerate().find(|(_, &s)| s <= 0.0) {
        return Err(SpefError::InvalidInput(format!(
            "spare capacity of edge e{e} is {s}; weights are undefined on saturated links"
        )));
    }
    Ok(spare
        .iter()
        .enumerate()
        .map(|(e, &s)| objective.marginal_utility(e.into(), s))
        .collect())
}

/// Scales weights by `max_e s_e` (the paper's normalisation before
/// rounding). Under β = 1, q = 1 this maps the weight of the
/// maximum-spare link to exactly 1.
///
/// # Errors
///
/// Returns [`SpefError::InvalidInput`] if the slices have different
/// lengths or `spare` has no positive entry.
pub fn scale_weights(weights: &[f64], spare: &[f64]) -> Result<Vec<f64>, SpefError> {
    if weights.len() != spare.len() {
        return Err(SpefError::InvalidInput(format!(
            "weights ({}) and spare ({}) lengths differ",
            weights.len(),
            spare.len()
        )));
    }
    let s_max = spare.iter().cloned().fold(0.0, f64::max);
    if s_max <= 0.0 {
        return Err(SpefError::InvalidInput(
            "no link has positive spare capacity".to_string(),
        ));
    }
    Ok(weights.iter().map(|w| w * s_max).collect())
}

/// §V.G integerisation: `w'_e = round(w_e · max_e s_e)`, floored at 1 so
/// every weight stays a positive protocol-representable integer.
///
/// # Errors
///
/// Same conditions as [`scale_weights`].
pub fn integerize(weights: &[f64], spare: &[f64]) -> Result<Vec<f64>, SpefError> {
    Ok(scale_weights(weights, spare)?
        .into_iter()
        .map(|w| w.round().max(1.0))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_one_weights_are_reciprocal_spare() {
        let obj = Objective::proportional(3);
        let w = first_weights(&obj, &[0.5, 2.0, 1.0]).unwrap();
        assert_eq!(w, vec![2.0, 0.5, 1.0]);
    }

    #[test]
    fn max_spare_link_scales_to_one_for_beta_one() {
        let obj = Objective::proportional(3);
        let spare = [0.25, 4.0, 1.0];
        let w = first_weights(&obj, &spare).unwrap();
        let scaled = scale_weights(&w, &spare).unwrap();
        // w = 1/s, so w_e · s_max = s_max / s_e: the max-spare link gets 1.
        assert_eq!(scaled[1], 1.0);
        assert_eq!(scaled[0], 16.0);
        assert_eq!(scaled[2], 4.0);
    }

    #[test]
    fn integerize_rounds_and_floors() {
        let weights = [0.3, 1.2, 2.6];
        let spare = [1.0, 0.5, 0.25];
        // s_max = 1: scaled = (0.3, 1.2, 2.6) -> rounded (0, 1, 3) ->
        // floored (1, 1, 3).
        let w = integerize(&weights, &spare).unwrap();
        assert_eq!(w, vec![1.0, 1.0, 3.0]);
    }

    #[test]
    fn integerization_preserves_weight_ordering_up_to_rounding() {
        let obj = Objective::proportional(4);
        let spare = [0.1, 0.4, 1.0, 2.0];
        let w = first_weights(&obj, &spare).unwrap();
        let wi = integerize(&w, &spare).unwrap();
        for k in 1..4 {
            assert!(wi[k - 1] >= wi[k]);
        }
        // TABLE-I-like magnitudes: 20, 5, 2, 1.
        assert_eq!(wi, vec![20.0, 5.0, 2.0, 1.0]);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let obj = Objective::proportional(2);
        assert!(first_weights(&obj, &[1.0]).is_err());
        assert!(first_weights(&obj, &[1.0, 0.0]).is_err());
        let obj0 = Objective::min_hop(2);
        assert!(first_weights(&obj0, &[1.0, 1.0]).is_err());
        assert!(scale_weights(&[1.0], &[1.0, 2.0]).is_err());
        assert!(scale_weights(&[1.0, 1.0], &[0.0, 0.0]).is_err());
    }

    #[test]
    fn tolerances_match_paper() {
        assert_eq!(NONINTEGER_DIJKSTRA_TOLERANCE, 0.3);
        assert_eq!(INTEGER_DIJKSTRA_TOLERANCE, 1.0);
    }
}
