//! The batched routing engine — the per-iteration hot path of every
//! solver, packaged as one reusable object.
//!
//! A solver loop (Frank–Wolfe, Algorithm 1, NEM, the Fortz–Thorup local
//! search) repeats the cycle *build per-destination DAGs → distribute
//! traffic* hundreds to tens of thousands of times with only the weights
//! changing. [`RoutingEngine`] amortises everything else:
//!
//! * the in-edge [`Csr`] adjacency is built **once** per engine;
//! * weight validation runs once per batch, not once per destination;
//! * DAGs ([`DagSet`]), split tables ([`SplitTableSet`]), demand columns
//!   and flow vectors live in flat arenas that are reused across calls —
//!   after the first iteration the cycle performs **zero allocations**
//!   on the sequential path (with parallel fan-out engaged, only the
//!   `O(dests)`-pointer task list is allocated per call, never the
//!   arena data);
//! * DAG construction fans destinations out across worker threads when
//!   the batch is large enough, with bit-identical results regardless of
//!   schedule (each destination writes only its own arena slices).
//!
//! The engine is a drop-in for the legacy
//! [`build_dags`](crate::build_dags) +
//! [`traffic_distribution`](crate::traffic_distribution) pair and produces
//! bit-identical flows; the property tests in
//! `tests/engine_equivalence.rs` pin that guarantee.
//!
//! Two refinements support solver sessions ([`crate::TeWorkspace`]):
//!
//! * [`RoutingEngine::build_dags`] **skips the SPF batch entirely** when
//!   the weight vector, destination set and tolerance are bit-identical
//!   to the previous call on the same engine — solvers that converge to
//!   a fixed weight vector (and pipelines that rebuild DAGs under the
//!   same weights across stages) pay nothing for the repeat call. The
//!   skip is result-transparent: identical inputs always produce
//!   identical DAGs.
//! * the engine's arenas detach into an [`EngineState`] via
//!   [`RoutingEngine::into_state`] and re-attach (to the same or another
//!   graph) via [`RoutingEngine::with_state`], so a long-lived workspace
//!   can outlive any single borrowed graph. Attaching to a different
//!   topology (checked structurally, edge list against edge list)
//!   rebuilds the CSR and invalidates the DAG fingerprint.
//! * [`RoutingEngine::fail_links`]/[`RoutingEngine::restore_links`]
//!   apply **topology deltas in place**: links are masked out of (or back
//!   into) the CSR view and only the destinations whose cached DAG used —
//!   or could newly use — a toggled link are rebuilt, bit-identical to a
//!   cold engine over the degraded topology. Failure sweeps probe
//!   thousands of (weights × failed-link) points; this keeps each probe
//!   at dirty-set cost instead of a dense SPF batch.
//!
//! ```
//! use spef_core::{RoutingEngine, SplitRule};
//! use spef_topology::{standard, TrafficMatrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = standard::fig1();
//! let tm = standard::fig1_demands();
//! let dests = tm.destinations();
//! let weights = vec![1.0; net.link_count()];
//!
//! let mut engine = RoutingEngine::new(net.graph());
//! let mut flows = engine.distribute_fresh();
//! for _ in 0..3 {
//!     // Steady state: no allocations inside this loop.
//!     engine.build_dags(&weights, &dests, 0.0)?;
//!     engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)?;
//! }
//! assert_eq!(flows.aggregate().len(), net.link_count());
//! # Ok(())
//! # }
//! ```

use spef_graph::batch::{
    build_dag_set, build_dag_set_tiled, rebuild_dag_set_slots, validate_dag_inputs, DagSet,
    Parallelism, RoutingWorkspace,
};
use spef_graph::{Csr, EdgeId, Graph, GraphError, NodeId};
use spef_topology::TrafficMatrix;

use crate::traffic_dist::{
    distribute_batch, distribute_block, distribute_one_into, next_flow_stamp, validate_rule,
    DistScratch, Flows, SplitRule, SplitTableSet,
};
use crate::SpefError;

/// Incremental rebuilds give up (dense fallback) when more than this many
/// quarters of the edge weights changed — at that point the dirty scan
/// costs as much as it could save.
const INCR_MAX_CHANGED_QUARTERS: usize = 1;

/// Incremental rebuilds give up (dense fallback) when more than half the
/// destinations are dirty: a dense batch amortises better than per-slot
/// bookkeeping once most slots rebuild anyway.
const INCR_MAX_DIRTY_HALVES: usize = 1;

/// Topology-delta rebuilds give up (dense fallback on the next build) when
/// more than this many quarters of the links are masked out — a view that
/// degraded is no longer a small delta of the cached build.
const MASK_MAX_MASKED_QUARTERS: usize = 1;

/// The split rule a distribution ran under, reduced to a cheap tag (the
/// exponential rule's weight vector is cached separately, bit for bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum RuleKind {
    #[default]
    None,
    Even,
    Exponential,
}

/// SPF build counters of one engine state — the observability surface of
/// the incremental rebuild path (benches report dirty-destination counts
/// per probe from these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpfStats {
    /// SPF batch builds executed (dense + incremental; calls skipped by
    /// the bit-identical-weights fingerprint are not counted).
    pub builds: u64,
    /// Builds served by the incremental dirty-destination path.
    pub incremental_builds: u64,
    /// Total destination slots re-run across all incremental and
    /// topology-delta builds (`slots_rebuilt / (incremental_builds +
    /// topology_builds)` = mean dirty set per probe).
    pub slots_rebuilt: u64,
    /// Dirty-slot count of the most recent incremental or topology-delta
    /// build.
    pub last_dirty: u64,
    /// Topology-delta rebuilds served in place by
    /// [`RoutingEngine::fail_links`]/[`RoutingEngine::restore_links`]
    /// (including calls whose dirty set was empty; dense fallbacks are
    /// not counted — they surface as a plain build instead).
    pub topology_builds: u64,
    /// Cumulative number of links masked out by
    /// [`RoutingEngine::fail_links`] over this state's lifetime (a
    /// counter, not a gauge — see [`RoutingEngine::masked_links`] for the
    /// currently-masked count).
    pub masked_links: u64,
}

/// The detached, owned arenas of a [`RoutingEngine`]: everything the
/// engine holds except the graph borrow itself. A long-lived workspace
/// (e.g. [`crate::TeWorkspace`]) keeps an `EngineState` and re-attaches
/// it to whichever graph the next solve targets; when the topology is
/// structurally unchanged, the CSR adjacency, DAG arenas and the
/// bit-identical-weights fingerprint all survive the round trip.
#[derive(Debug, Default)]
pub struct EngineState {
    in_csr: Option<Csr>,
    topo_nodes: usize,
    topo_edges: Vec<(NodeId, NodeId)>,
    ws: RoutingWorkspace,
    dags: DagSet,
    tables: SplitTableSet,
    scratch: DistScratch,
    /// Tile-sized arenas for the tiled execution path. Kept separate from
    /// `dags`/`tables` so tiled runs never clobber the untiled DAG set
    /// behind the bit-identical-weights skip fingerprint.
    tile_dags: DagSet,
    tile_tables: SplitTableSet,
    tile_cols: Vec<Vec<f64>>,
    last_weights: Vec<f64>,
    last_dests: Vec<NodeId>,
    last_tolerance: f64,
    dags_valid: bool,
    spf_builds: u64,
    /// `true` forces dense rebuilds everywhere (the delta-aware
    /// incremental paths off). Default `false`: incremental on.
    full_rebuild_only: bool,
    /// Changed-edge scratch of the weight diff: `(tail, head, old, new)`.
    delta_scratch: Vec<(NodeId, NodeId, f64, f64)>,
    /// Per-slot dirty flags of the incremental build in progress.
    dirty: Vec<bool>,
    /// Slots whose DAG changed since the last successful untiled
    /// distribution (what the incremental distribution must refresh).
    pending: Vec<bool>,
    /// `true` when the pending set is meaningless (dense build, shape
    /// change, or no distribution yet): the next distribution runs dense.
    pending_all: bool,
    /// Split tables aligned with the current DAG set under the
    /// `last_rule_*` fingerprint below.
    tables_valid: bool,
    last_rule_kind: RuleKind,
    /// Bitwise copy of the exponential rule's weight vector (empty for
    /// even ECMP).
    last_rule_v: Vec<f64>,
    /// Cached demand columns (`dests × nodes`) backing the bitwise
    /// demand-change check of the incremental distribution.
    demand_cache: Vec<f64>,
    demand_cache_valid: bool,
    /// Stamp of the `Flows` buffer the last successful untiled
    /// distribution wrote (its columns *are* the incremental flow cache).
    out_stamp: u64,
    incremental_builds: u64,
    slots_rebuilt: u64,
    last_dirty: u64,
    topology_builds: u64,
    masked_links_total: u64,
    /// Scratch of [`RoutingEngine::fail_links`]/`restore_links`: the
    /// deduplicated subset of the requested links that actually toggles.
    toggle_scratch: Vec<EdgeId>,
}

impl EngineState {
    /// A fresh, empty state; the first attach builds the CSR.
    pub fn new() -> EngineState {
        EngineState::default()
    }

    /// True when `graph` is structurally identical to the topology this
    /// state last routed over (same node count, same edge list in the
    /// same order). Capacities and weights are *not* part of structure:
    /// they never affect the CSR, and weight changes are caught by the
    /// per-call fingerprint instead.
    pub(crate) fn matches_topology(&self, graph: &Graph) -> bool {
        self.in_csr.is_some()
            && self.topo_nodes == graph.node_count()
            && self.topo_edges.len() == graph.edge_count()
            && graph
                .edges()
                .zip(&self.topo_edges)
                .all(|((_, u, v), &(su, sv))| u == su && v == sv)
    }

    /// Number of SPF batch builds this state has actually executed
    /// (calls to [`RoutingEngine::build_dags`] that were not skipped by
    /// the bit-identical-weights fingerprint).
    pub fn spf_builds(&self) -> u64 {
        self.spf_builds
    }

    /// The SPF build counters, including the incremental-path breakdown.
    pub fn spf_stats(&self) -> SpfStats {
        SpfStats {
            builds: self.spf_builds,
            incremental_builds: self.incremental_builds,
            slots_rebuilt: self.slots_rebuilt,
            last_dirty: self.last_dirty,
            topology_builds: self.topology_builds,
            masked_links: self.masked_links_total,
        }
    }

    /// Enables/disables the delta-aware incremental rebuild and
    /// redistribution paths (enabled by default). Disabling forces every
    /// non-skipped build/distribution to run dense — results are
    /// bit-identical either way; only wall clock changes.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.full_rebuild_only = !enabled;
    }

    /// Whether the incremental paths are enabled.
    pub fn incremental(&self) -> bool {
        !self.full_rebuild_only
    }

    /// Drops the DAG fingerprint so the next
    /// [`RoutingEngine::build_dags`] call recomputes unconditionally.
    /// Arenas are kept.
    pub fn invalidate(&mut self) {
        self.dags_valid = false;
        self.drop_distribution_caches();
    }

    /// Invalidates everything the incremental distribution path relies
    /// on; the next distribution runs the dense kernel.
    fn drop_distribution_caches(&mut self) {
        self.tables_valid = false;
        self.demand_cache_valid = false;
        self.pending_all = true;
        self.out_stamp = 0;
        self.last_rule_kind = RuleKind::None;
    }

    /// Bytes currently reserved by the engine's routing arenas (DAG sets,
    /// split tables, tile scratch, Dijkstra workspace), by capacity — a
    /// high-water mark, since the arenas only ever grow across reuse.
    pub fn arena_bytes(&self) -> usize {
        self.ws.arena_bytes()
            + self.dags.arena_bytes()
            + self.tables.arena_bytes()
            + self.tile_dags.arena_bytes()
            + self.tile_tables.arena_bytes()
            + self.tile_cols.capacity() * std::mem::size_of::<Vec<f64>>()
            + self
                .tile_cols
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<f64>())
                .sum::<usize>()
    }
}

/// A reusable batched router over one graph. See the [module
/// docs](self) for what it amortises.
#[derive(Debug)]
pub struct RoutingEngine<'g> {
    graph: &'g Graph,
    par: Parallelism,
    state: EngineState,
}

impl<'g> RoutingEngine<'g> {
    /// Creates an engine for `graph`, freezing its CSR adjacency.
    /// Destination fan-out is parallelised automatically for large
    /// batches.
    pub fn new(graph: &'g Graph) -> RoutingEngine<'g> {
        Self::with_parallelism(graph, Parallelism::Auto)
    }

    /// Like [`RoutingEngine::new`] with an explicit parallelism policy
    /// (used by the schedule-independence tests; results are identical
    /// either way).
    pub fn with_parallelism(graph: &'g Graph, par: Parallelism) -> RoutingEngine<'g> {
        Self::with_state_and_parallelism(graph, EngineState::new(), par)
    }

    /// Attaches a detached [`EngineState`] to `graph`. If the state last
    /// routed over a structurally identical topology, its CSR, arenas
    /// and DAG fingerprint are reused as-is; otherwise the CSR is
    /// rebuilt and the fingerprint invalidated (automatic cold
    /// fallback — never a correctness hazard, only a wall-clock one).
    pub fn with_state(graph: &'g Graph, state: EngineState) -> RoutingEngine<'g> {
        Self::with_state_and_parallelism(graph, state, Parallelism::Auto)
    }

    fn with_state_and_parallelism(
        graph: &'g Graph,
        mut state: EngineState,
        par: Parallelism,
    ) -> RoutingEngine<'g> {
        if !state.matches_topology(graph) {
            state.in_csr = Some(Csr::in_of(graph));
            state.topo_nodes = graph.node_count();
            state.topo_edges.clear();
            state
                .topo_edges
                .extend(graph.edges().map(|(_, u, v)| (u, v)));
            state.dags_valid = false;
            state.drop_distribution_caches();
        }
        RoutingEngine { graph, par, state }
    }

    /// Detaches the engine's arenas for reuse against a later graph
    /// borrow. The inverse of [`RoutingEngine::with_state`].
    pub fn into_state(self) -> EngineState {
        self.state
    }

    /// The graph the engine routes over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of SPF batch builds actually executed (skipped calls not
    /// counted). Exposed for the skip-fingerprint tests and benches.
    pub fn spf_builds(&self) -> u64 {
        self.state.spf_builds
    }

    /// The SPF build counters, including the incremental-path breakdown.
    pub fn spf_stats(&self) -> SpfStats {
        self.state.spf_stats()
    }

    /// See [`EngineState::set_incremental`].
    pub fn set_incremental(&mut self, enabled: bool) {
        self.state.set_incremental(enabled);
    }

    /// See [`EngineState::arena_bytes`].
    pub fn arena_bytes(&self) -> usize {
        self.state.arena_bytes()
    }

    /// Builds the shortest-path DAGs of every destination under `weights`
    /// with equal-cost tolerance `tolerance`, replacing the engine's
    /// current DAG set. Weights are validated once for the whole batch.
    ///
    /// When `weights`, `dests` and `tolerance` are bit-identical to the
    /// previous (successful) call on this engine's state, the SPF batch
    /// is skipped outright — the retained DAG set is already the answer.
    ///
    /// When only a few weights changed (same destinations, same
    /// tolerance), the **incremental path** rebuilds only the dirty
    /// destination slots: a destination is dirty iff some changed edge
    /// was on, or could join, its shortest-path DAG, decided from the
    /// cached distance arrays of the previous build. Clean slots keep
    /// their arenas untouched, so the resulting DAG set is bit-identical
    /// to a dense rebuild (see `tests/incremental_equivalence.rs`). The
    /// path falls back to a dense build when the change is too large or
    /// the dirty set covers most destinations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`spef_graph::ShortestPathDag::build`].
    pub fn build_dags(
        &mut self,
        weights: &[f64],
        dests: &[NodeId],
        tolerance: f64,
    ) -> Result<(), GraphError> {
        let s = &mut self.state;
        let fingerprint_matches = s.dags_valid
            && s.last_tolerance.to_bits() == tolerance.to_bits()
            && s.last_dests.as_slice() == dests
            && s.last_weights.len() == weights.len();
        if fingerprint_matches
            && s.last_weights
                .iter()
                .zip(weights)
                .all(|(a, b)| a.to_bits() == b.to_bits())
        {
            return Ok(());
        }
        let try_incremental = fingerprint_matches && !s.full_rebuild_only;
        s.dags_valid = false;
        if try_incremental && self.build_dags_incremental(weights, dests, tolerance)? {
            return Ok(());
        }
        let s = &mut self.state;
        build_dag_set(
            self.graph,
            s.in_csr.as_ref().expect("attached engine has a CSR"),
            weights,
            dests,
            tolerance,
            self.par,
            &mut s.ws,
            &mut s.dags,
        )?;
        s.spf_builds += 1;
        s.last_weights.clear();
        s.last_weights.extend_from_slice(weights);
        s.last_dests.clear();
        s.last_dests.extend_from_slice(dests);
        s.last_tolerance = tolerance;
        s.dags_valid = true;
        // A dense build may have changed any slot; the pending set no
        // longer bounds what the next distribution must refresh.
        s.pending_all = true;
        Ok(())
    }

    /// The delta path of [`build_dags`](Self::build_dags): diffs the
    /// weights bit for bit, flags dirty destinations via the cached
    /// distance arrays, and rebuilds only those slots in place. Returns
    /// `Ok(false)` when the change is too large to be worth it — the
    /// caller falls through to the dense build.
    ///
    /// Only called when the previous build used the same destinations,
    /// tolerance and weight-vector length (so the cached distances and
    /// arena shapes line up).
    fn build_dags_incremental(
        &mut self,
        weights: &[f64],
        dests: &[NodeId],
        tolerance: f64,
    ) -> Result<bool, GraphError> {
        // Identical validation — and error order — to the dense path.
        validate_dag_inputs(self.graph, weights, dests, tolerance)?;
        let s = &mut self.state;
        let m = self.graph.edge_count();
        let d = dests.len();
        s.delta_scratch.clear();
        // Weight changes on masked links cannot affect the routed view;
        // skipping them keeps failure-time dirty sets small. The full
        // vector is still recorded below, so a later restore sees the
        // current weight.
        let disabled = s
            .in_csr
            .as_ref()
            .expect("attached engine has a CSR")
            .disabled_edges();
        for (e, u, v) in self.graph.edges() {
            if !disabled.is_empty() && disabled[e.index()] {
                continue;
            }
            let old = s.last_weights[e.index()];
            let new = weights[e.index()];
            if old.to_bits() != new.to_bits() {
                s.delta_scratch.push((u, v, old, new));
            }
        }
        if s.delta_scratch.len() * 4 > m * INCR_MAX_CHANGED_QUARTERS {
            return Ok(false);
        }
        // A destination is dirty iff some changed edge was on — or, at
        // the new weight, could join — its shortest-path DAG. Both are
        // one slack test against the cached distances: edge (u,v) with
        // weight w is on/joinable when `w + dist[v] - dist[u] <= tol`,
        // the exact float association the DAG classifier uses, so a
        // "clean" verdict provably reproduces the dense result bit for
        // bit (slack > tol ≥ 0 means the edge loses every relaxation
        // and classification it could enter, under old and new weight).
        s.dirty.clear();
        s.dirty.resize(d, false);
        let mut dirty_count = 0usize;
        for (i, flag) in s.dirty.iter_mut().enumerate() {
            let dist = s.dags.dag(i).distances();
            let is_dirty = s.delta_scratch.iter().any(|&(u, v, old, new)| {
                let dv = dist[v.index()];
                if !dv.is_finite() {
                    // v cannot reach this destination; no weight value on
                    // (u,v) changes reachability, distances or the DAG.
                    return false;
                }
                let du = dist[u.index()];
                // du = +inf makes both slacks -inf → dirty (defensive;
                // cannot happen when dv is finite and the old weight was
                // valid, since du ≤ old + dv).
                !(old + dv - du > tolerance && new + dv - du > tolerance)
            });
            if is_dirty {
                *flag = true;
                dirty_count += 1;
            }
        }
        if dirty_count * 2 > d * INCR_MAX_DIRTY_HALVES {
            return Ok(false);
        }
        rebuild_dag_set_slots(
            self.graph,
            s.in_csr.as_ref().expect("attached engine has a CSR"),
            weights,
            &s.dirty,
            self.par,
            &mut s.ws,
            &mut s.dags,
        )?;
        s.spf_builds += 1;
        s.incremental_builds += 1;
        s.slots_rebuilt += dirty_count as u64;
        s.last_dirty = dirty_count as u64;
        if s.pending.len() == d {
            for (p, &flag) in s.pending.iter_mut().zip(&s.dirty) {
                *p |= flag;
            }
        } else {
            // No tracked pending set at this shape — pending_all is
            // already forcing a dense distribution; just keep shape.
            s.pending.clear();
            s.pending.resize(d, false);
            s.pending_all = true;
        }
        s.last_weights.copy_from_slice(weights);
        s.dags_valid = true;
        Ok(true)
    }

    /// Masks `links` out of the engine's routed view — the in-place form
    /// of rebuilding the engine over
    /// [`without_links`](spef_topology::Network::without_links) — and
    /// patches the cached DAG set so it stays bit-identical to a dense
    /// build over the degraded view under the cached weights.
    ///
    /// A removed link dirties only the destinations whose cached DAG
    /// contains it; clean slots keep their arenas untouched (a shortest
    /// path that never used the link cannot change when it disappears).
    /// Dirty slots rebuild in place via the PR 9 slot machinery. The call
    /// falls back to invalidating the fingerprint — so the next
    /// [`build_dags`](Self::build_dags) runs dense over the masked view —
    /// when there is no cached build to patch, incremental paths are off,
    /// more than a quarter of the links are masked, or more than half the
    /// destinations are dirty.
    ///
    /// Masking is idempotent: already-masked links are skipped. The mask
    /// survives [`into_state`](Self::into_state)/[`with_state`]
    /// round-trips onto the same topology and is dropped when the state
    /// attaches to a different one.
    ///
    /// [`with_state`]: Self::with_state
    ///
    /// # Errors
    ///
    /// [`GraphError::LinkOutOfRange`] if a link id is outside the graph;
    /// the engine is unchanged. Errors from the slot rebuild invalidate
    /// the fingerprint before propagating.
    pub fn fail_links(&mut self, links: &[EdgeId]) -> Result<(), GraphError> {
        self.set_links_enabled(links, false)
    }

    /// Unmasks `links`, restoring them to the engine's routed view — the
    /// inverse of [`fail_links`](Self::fail_links) — and patches the
    /// cached DAG set to match a dense build over the restored view.
    ///
    /// A restored link `(u, v)` dirties only the destinations where the
    /// one-slack test `w + dist[v] - dist[u] <= tol` against the cached
    /// distances says it could join a shortest path (an unreachable `u`
    /// counts as joinable: the link may create the first path). Slack
    /// strictly above the tolerance means every path through the link
    /// loses each relaxation and classification it could enter, so the
    /// cached slot already equals the dense result bit for bit.
    ///
    /// Restoring is idempotent; the same fallbacks (and the same error
    /// surface) as [`fail_links`](Self::fail_links) apply.
    ///
    /// # Errors
    ///
    /// See [`fail_links`](Self::fail_links).
    pub fn restore_links(&mut self, links: &[EdgeId]) -> Result<(), GraphError> {
        self.set_links_enabled(links, true)
    }

    /// Number of links currently masked out of the routed view (a gauge;
    /// [`SpfStats::masked_links`] is the cumulative counter).
    pub fn masked_links(&self) -> usize {
        self.state
            .in_csr
            .as_ref()
            .map_or(0, |csr| csr.masked_count())
    }

    /// Shared implementation of
    /// [`fail_links`](Self::fail_links)/[`restore_links`](Self::restore_links).
    fn set_links_enabled(&mut self, links: &[EdgeId], enabled: bool) -> Result<(), GraphError> {
        let m = self.graph.edge_count();
        for &e in links {
            if e.index() >= m {
                return Err(GraphError::LinkOutOfRange { edge: e, edges: m });
            }
        }
        let s = &mut self.state;
        let csr = s.in_csr.as_mut().expect("attached engine has a CSR");
        // Reduce the request to the links that actually toggle, so
        // repeated fails/restores are idempotent and the dirty scan never
        // sees a no-op link.
        s.toggle_scratch.clear();
        for &e in links {
            if csr.edge_enabled(e) != enabled && !s.toggle_scratch.contains(&e) {
                s.toggle_scratch.push(e);
            }
        }
        if s.toggle_scratch.is_empty() {
            return Ok(());
        }
        let changed = csr.set_links_enabled(&s.toggle_scratch, enabled);
        debug_assert_eq!(changed, s.toggle_scratch.len());
        if !enabled {
            s.masked_links_total += changed as u64;
        }
        if !s.dags_valid {
            // Nothing cached to patch; the next build runs dense over the
            // new view. Distribution caches may reference the old view.
            s.invalidate();
            return Ok(());
        }
        let masked = s
            .in_csr
            .as_ref()
            .expect("attached engine has a CSR")
            .masked_count();
        if s.full_rebuild_only || masked * 4 > m * MASK_MAX_MASKED_QUARTERS {
            s.invalidate();
            return Ok(());
        }
        // Classify dirty destinations against the cached build. Failing:
        // a link off the cached DAG never carried a winning relaxation or
        // classification, so removing it leaves distances and the DAG bit
        // for bit. Restoring: slack strictly above the tolerance means the
        // link still loses everywhere; `du = +inf` forces dirty (the link
        // may create the destination's first path from `u`).
        let d = s.last_dests.len();
        s.dirty.clear();
        s.dirty.resize(d, false);
        let mut dirty_count = 0usize;
        for (i, flag) in s.dirty.iter_mut().enumerate() {
            let dag = s.dags.dag(i);
            let is_dirty = if enabled {
                let dist = dag.distances();
                s.toggle_scratch.iter().any(|&e| {
                    let dv = dist[self.graph.target(e).index()];
                    if !dv.is_finite() {
                        // The head cannot reach this destination, so the
                        // link is dead weight either way.
                        return false;
                    }
                    let du = dist[self.graph.source(e).index()];
                    let w = s.last_weights[e.index()];
                    // The classifier's slack test (`du = +inf` gives
                    // `-inf <= tol`, forcing dirty as documented above).
                    w + dv - du <= s.last_tolerance
                })
            } else {
                s.toggle_scratch.iter().any(|&e| dag.contains_edge(e))
            };
            if is_dirty {
                *flag = true;
                dirty_count += 1;
            }
        }
        if dirty_count * 2 > d * INCR_MAX_DIRTY_HALVES {
            s.invalidate();
            return Ok(());
        }
        s.topology_builds += 1;
        s.last_dirty = dirty_count as u64;
        if dirty_count == 0 {
            return Ok(());
        }
        if let Err(e) = rebuild_dag_set_slots(
            self.graph,
            s.in_csr.as_ref().expect("attached engine has a CSR"),
            &s.last_weights,
            &s.dirty,
            self.par,
            &mut s.ws,
            &mut s.dags,
        ) {
            s.invalidate();
            return Err(e);
        }
        s.spf_builds += 1;
        s.slots_rebuilt += dirty_count as u64;
        if s.pending.len() == d {
            for (p, &flag) in s.pending.iter_mut().zip(&s.dirty) {
                *p |= flag;
            }
        } else {
            s.pending.clear();
            s.pending.resize(d, false);
            s.pending_all = true;
        }
        Ok(())
    }

    /// The current DAG set (destinations of the last
    /// [`build_dags`](Self::build_dags) call).
    pub fn dag_set(&self) -> &DagSet {
        &self.state.dags
    }

    /// The split tables of the last
    /// [`distribute_into`](Self::distribute_into) call, aligned with the
    /// DAG destinations — the batched form of the paper's TABLE II rows.
    pub fn split_tables(&self) -> &SplitTableSet {
        &self.state.tables
    }

    /// A flow buffer shaped for reuse with
    /// [`distribute_into`](Self::distribute_into).
    pub fn distribute_fresh(&self) -> Flows {
        Flows::empty()
    }

    /// Algorithm 3 over the engine's current DAG set: routes the demand
    /// columns of the DAG destinations under `rule`, writing flows into
    /// `out` (reshaped as needed, zero allocations once warm) and split
    /// tables into the engine.
    ///
    /// The traffic matrix must cover the engine's graph; demand columns
    /// are taken for exactly the destinations the DAGs were built for.
    ///
    /// # Errors
    ///
    /// * [`SpefError::UnroutableDemand`] if a positive demand has no path
    ///   on its destination's DAG,
    /// * [`SpefError::InvalidInput`] if the rule's weight vector is
    ///   malformed.
    ///
    /// # Panics
    ///
    /// Panics if `traffic` covers fewer nodes than the graph.
    ///
    /// # Incremental redistribution
    ///
    /// When `out` still holds exactly what this engine's previous
    /// successful call wrote (tracked by a freshness stamp that any
    /// mutation clears), the rule is bit-identical, and the DAG set only
    /// changed in slots the engine tracked, the call refreshes **only**
    /// the destinations whose DAG or demand column changed — rebuilding
    /// their split tables in place — and re-folds the aggregate from all
    /// columns in ascending destination order: the same additions, in
    /// the same order, as the dense kernel. Results are bit-identical
    /// either way; any precondition miss falls back to the dense path.
    pub fn distribute_into(
        &mut self,
        traffic: &TrafficMatrix,
        rule: SplitRule<'_>,
        out: &mut Flows,
    ) -> Result<(), SpefError> {
        if self.try_distribute_incremental(traffic, rule, out)? {
            return Ok(());
        }
        let s = &mut self.state;
        s.tables_valid = false;
        s.out_stamp = 0;
        distribute_batch(
            self.graph,
            s.dags.destinations(),
            s.dags.iter(),
            traffic,
            rule,
            &mut s.tables,
            &mut s.scratch,
            out,
        )?;
        self.record_distribution(traffic, rule, out);
        Ok(())
    }

    /// Records the caches a successful dense distribution leaves behind
    /// for the next incremental one: the demand columns (bitwise), the
    /// rule fingerprint, and the output buffer's freshness stamp.
    fn record_distribution(
        &mut self,
        traffic: &TrafficMatrix,
        rule: SplitRule<'_>,
        out: &mut Flows,
    ) {
        let s = &mut self.state;
        let n = self.graph.node_count();
        let dests = s.dags.destinations();
        let d = dests.len();
        s.demand_cache.clear();
        s.demand_cache.resize(d * n, 0.0);
        for (i, &t) in dests.iter().enumerate() {
            traffic.demands_to_into(t, &mut s.scratch.demands);
            s.demand_cache[i * n..(i + 1) * n].copy_from_slice(&s.scratch.demands[..n]);
        }
        s.demand_cache_valid = true;
        match rule {
            SplitRule::EvenEcmp => {
                s.last_rule_kind = RuleKind::Even;
                s.last_rule_v.clear();
            }
            SplitRule::Exponential(v) => {
                s.last_rule_kind = RuleKind::Exponential;
                s.last_rule_v.clear();
                s.last_rule_v.extend_from_slice(v);
            }
        }
        s.tables_valid = true;
        s.pending.clear();
        s.pending.resize(d, false);
        s.pending_all = false;
        s.out_stamp = next_flow_stamp();
        out.set_stamp(s.out_stamp);
    }

    /// The delta path of [`distribute_into`](Self::distribute_into).
    /// Returns `Ok(false)` when any precondition fails (caller runs the
    /// dense kernel); on `Ok(true)` the refresh completed and `out` was
    /// re-stamped. A distribution error invalidates every cache before
    /// propagating, so the next call runs dense.
    fn try_distribute_incremental(
        &mut self,
        traffic: &TrafficMatrix,
        rule: SplitRule<'_>,
        out: &mut Flows,
    ) -> Result<bool, SpefError> {
        let s = &mut self.state;
        let rule_matches = match rule {
            SplitRule::EvenEcmp => s.last_rule_kind == RuleKind::Even,
            SplitRule::Exponential(v) => {
                s.last_rule_kind == RuleKind::Exponential
                    && v.len() == s.last_rule_v.len()
                    && v.iter()
                        .zip(&s.last_rule_v)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
            }
        };
        if s.full_rebuild_only
            || !s.dags_valid
            || !s.tables_valid
            || !s.demand_cache_valid
            || s.pending_all
            || !rule_matches
            || out.stamp() == 0
            || out.stamp() != s.out_stamp
            || !out.has_columns()
        {
            return Ok(false);
        }
        // The rule already matched a previously validated one bit for
        // bit, but run the dense path's validation anyway so the error
        // surface is identical by construction.
        validate_rule(self.graph, rule)?;
        let n = self.graph.node_count();
        let d = s.dags.destinations().len();
        debug_assert_eq!(s.pending.len(), d);
        debug_assert_eq!(s.tables.len(), d);
        s.scratch.incoming.resize(n, 0.0);
        let (columns, aggregate) = out.parts_mut();
        debug_assert_eq!(columns.len(), d);
        for (i, col) in columns.iter_mut().enumerate() {
            let t = s.dags.destinations()[i];
            traffic.demands_to_into(t, &mut s.scratch.demands);
            let row = &s.demand_cache[i * n..(i + 1) * n];
            let demand_dirty = s.scratch.demands[..n]
                .iter()
                .zip(row)
                .any(|(a, b)| a.to_bits() != b.to_bits());
            let dag_dirty = s.pending[i];
            if !demand_dirty && !dag_dirty {
                // Same DAG, same table, bit-identical demands: the cached
                // column is exactly what the dense kernel would recompute
                // (and its previous success proves no error either).
                continue;
            }
            let dag = s.dags.dag(i);
            if dag_dirty {
                s.tables.rebuild_table(i, self.graph, &dag, rule);
            }
            col.fill(0.0);
            let table = s.tables.table(i);
            if let Err(e) = distribute_one_into(
                self.graph,
                &dag,
                table,
                &s.scratch.demands,
                &mut s.scratch.incoming,
                col,
            ) {
                s.drop_distribution_caches();
                return Err(e);
            }
            if demand_dirty {
                s.demand_cache[i * n..(i + 1) * n].copy_from_slice(&s.scratch.demands[..n]);
            }
        }
        // Re-fold the aggregate from every column in ascending
        // destination order — the same additions, in the same order, as
        // `distribute_block` performs on the dense path.
        aggregate.fill(0.0);
        for col in columns.iter() {
            for (agg, f) in aggregate.iter_mut().zip(col.iter()) {
                *agg += f;
            }
        }
        for p in s.pending.iter_mut() {
            *p = false;
        }
        s.out_stamp = next_flow_stamp();
        out.set_stamp(s.out_stamp);
        Ok(true)
    }

    /// Builds only the split tables (TABLE II rows) for the current DAG
    /// set under `rule`, without routing any traffic — the final
    /// forwarding-table materialisation step of Algorithm 4.
    ///
    /// # Errors
    ///
    /// [`SpefError::InvalidInput`] if the rule's weight vector is
    /// malformed.
    pub fn build_split_tables(&mut self, rule: SplitRule<'_>) -> Result<&SplitTableSet, SpefError> {
        crate::traffic_dist::validate_rule(self.graph, rule)?;
        let s = &mut self.state;
        // The tables no longer correspond to a recorded distribution.
        s.tables_valid = false;
        s.out_stamp = 0;
        s.tables.reset(self.graph.node_count());
        for dag in s.dags.iter() {
            s.tables.push_table(self.graph, &dag, rule);
        }
        Ok(&s.tables)
    }

    /// The fused tiled build-and-distribute cycle: processes `dests` in
    /// tiles of at most `tile` destinations, building each tile's DAGs
    /// and split tables into tile-sized arenas (peak O(tile·edges)
    /// instead of O(dests·edges)) and accumulating the **global**
    /// aggregate flows destination by destination in ascending order —
    /// bit-identical to [`build_dags`](Self::build_dags) +
    /// [`distribute_into`](Self::distribute_into) for every tile size.
    ///
    /// With `keep_per_dest` the per-destination flow columns of `out` are
    /// retained (Frank–Wolfe needs the dense columns for its blend
    /// updates; only the DAG/table arenas shrink); without it `out` holds
    /// the aggregate only and [`Flows::for_destination`] returns `None`.
    ///
    /// `on_tile(offset, tile dests, tile dags, tile tables)` fires after
    /// each tile while its arenas are live — callers fold per-destination
    /// quantities (dual terms, FIB rows) there. The tiled path never
    /// touches the untiled DAG set or its skip fingerprint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build_dags`](Self::build_dags) and
    /// [`distribute_into`](Self::distribute_into), plus whatever
    /// `on_tile` returns.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is zero or `traffic` covers fewer nodes than the
    /// graph.
    #[allow(clippy::too_many_arguments)]
    pub fn distribute_tiled<F>(
        &mut self,
        weights: &[f64],
        dests: &[NodeId],
        tolerance: f64,
        traffic: &TrafficMatrix,
        rule: SplitRule<'_>,
        tile: usize,
        keep_per_dest: bool,
        out: &mut Flows,
        mut on_tile: F,
    ) -> Result<(), SpefError>
    where
        F: FnMut(usize, &[NodeId], &DagSet, &SplitTableSet) -> Result<(), SpefError>,
    {
        assert!(tile > 0, "tile size must be at least 1");
        crate::traffic_dist::validate_rule(self.graph, rule)?;
        let m = self.graph.edge_count();
        let n = self.graph.node_count();
        let s = &mut self.state;
        if keep_per_dest {
            out.reset(dests, m);
        } else {
            out.reset_aggregate(dests, m);
        }
        let (columns, aggregate) = out.parts_mut();

        let mut offset = 0;
        for chunk in dests.chunks(tile) {
            build_dag_set(
                self.graph,
                s.in_csr.as_ref().expect("attached engine has a CSR"),
                weights,
                chunk,
                tolerance,
                self.par,
                &mut s.ws,
                &mut s.tile_dags,
            )?;
            s.tile_tables.reset(n);
            let cols: &mut [Vec<f64>] = if keep_per_dest {
                &mut columns[offset..offset + chunk.len()]
            } else {
                if s.tile_cols.len() < chunk.len() {
                    s.tile_cols.resize_with(chunk.len(), Vec::new);
                }
                for col in &mut s.tile_cols[..chunk.len()] {
                    col.clear();
                    col.resize(m, 0.0);
                }
                &mut s.tile_cols[..chunk.len()]
            };
            distribute_block(
                self.graph,
                chunk,
                s.tile_dags.iter(),
                traffic,
                rule,
                &mut s.tile_tables,
                &mut s.scratch,
                cols,
                aggregate,
            )?;
            on_tile(offset, chunk, &s.tile_dags, &s.tile_tables)?;
            offset += chunk.len();
        }
        s.spf_builds += 1;
        Ok(())
    }

    /// Builds the DAGs of `dests` tile by tile under `weights`, invoking
    /// `f(offset, tile dests, tile dags)` per tile — the build-only
    /// companion of [`distribute_tiled`](Self::distribute_tiled) for
    /// pipelines that materialise or stream per-destination routing state
    /// (e.g. FIB rows) without a traffic pass. Peak DAG-arena memory is
    /// O(tile·edges); the untiled DAG set and its fingerprint are
    /// untouched.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build_dags`](Self::build_dags), plus whatever
    /// `f` returns.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is zero.
    pub fn for_each_dag_tile<F>(
        &mut self,
        weights: &[f64],
        dests: &[NodeId],
        tolerance: f64,
        tile: usize,
        f: F,
    ) -> Result<(), SpefError>
    where
        F: FnMut(usize, &[NodeId], &DagSet) -> Result<(), SpefError>,
    {
        let s = &mut self.state;
        build_dag_set_tiled(
            self.graph,
            s.in_csr.as_ref().expect("attached engine has a CSR"),
            weights,
            dests,
            tolerance,
            self.par,
            tile,
            &mut s.ws,
            &mut s.tile_dags,
            f,
        )?;
        s.spf_builds += 1;
        Ok(())
    }

    /// Convenience wrapper around
    /// [`distribute_into`](Self::distribute_into) returning an owned
    /// [`Flows`] (allocating; iterating callers should hold a buffer).
    ///
    /// # Errors
    ///
    /// Same conditions as [`distribute_into`](Self::distribute_into).
    pub fn distribute(
        &mut self,
        traffic: &TrafficMatrix,
        rule: SplitRule<'_>,
    ) -> Result<Flows, SpefError> {
        let mut out = Flows::empty();
        self.distribute_into(traffic, rule, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic_dist::{build_dags, traffic_distribution};
    use spef_topology::standard;

    #[test]
    fn engine_matches_legacy_wrappers_exactly() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let g = net.graph();
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();

        let dags = build_dags(g, &w, &dests, 0.0).unwrap();
        let legacy = traffic_distribution(g, &dags, &tm, SplitRule::EvenEcmp).unwrap();

        let mut engine = RoutingEngine::new(g);
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();

        assert_eq!(flows.aggregate(), legacy.aggregate());
        for &t in &dests {
            assert_eq!(flows.for_destination(t), legacy.for_destination(t));
        }
    }

    #[test]
    fn buffers_are_reused_across_iterations() {
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let dests = tm.destinations();
        let mut engine = RoutingEngine::new(net.graph());
        let mut flows = engine.distribute_fresh();
        let mut last = Vec::new();
        for k in 1..=4u32 {
            let w: Vec<f64> = (0..net.link_count())
                .map(|e| 1.0 + (e as f64) * 0.1 * k as f64)
                .collect();
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine
                .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
                .unwrap();
            last = flows.aggregate().to_vec();
        }
        // Matches a from-scratch computation of the final iteration.
        let w: Vec<f64> = (0..net.link_count())
            .map(|e| 1.0 + (e as f64) * 0.4)
            .collect();
        let dags = build_dags(net.graph(), &w, &dests, 0.0).unwrap();
        let fresh = traffic_distribution(net.graph(), &dags, &tm, SplitRule::EvenEcmp).unwrap();
        assert_eq!(last, fresh.aggregate());
    }

    #[test]
    fn bit_identical_weights_skip_the_spf_batch() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let mut engine = RoutingEngine::new(net.graph());

        engine.build_dags(&w, &dests, 0.0).unwrap();
        assert_eq!(engine.spf_builds(), 1);
        // Same weights (a fresh but bit-identical vector), same dests,
        // same tolerance: skipped.
        engine.build_dags(&w.clone(), &dests, 0.0).unwrap();
        assert_eq!(engine.spf_builds(), 1);
        // Any bit change re-runs.
        let mut w2 = w.clone();
        w2[0] *= 1.0 + 1e-12;
        engine.build_dags(&w2, &dests, 0.0).unwrap();
        assert_eq!(engine.spf_builds(), 2);
        // Tolerance change re-runs even with identical weights.
        engine.build_dags(&w2, &dests, 1e-9).unwrap();
        assert_eq!(engine.spf_builds(), 3);
        // Destination-set change re-runs.
        engine
            .build_dags(&w2, &dests[..dests.len() - 1], 1e-9)
            .unwrap();
        assert_eq!(engine.spf_builds(), 4);

        // The skipped call left a usable DAG set behind.
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut again = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut again)
            .unwrap();
        assert_eq!(flows.aggregate(), again.aggregate());
    }

    #[test]
    fn state_round_trip_preserves_fingerprint_on_same_topology() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let w = vec![1.0; net.link_count()];

        let mut engine = RoutingEngine::new(net.graph());
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let state = engine.into_state();
        assert_eq!(state.spf_builds(), 1);

        // Re-attach to the same graph: the fingerprint survives, so an
        // identical build is skipped.
        let mut engine = RoutingEngine::with_state(net.graph(), state);
        engine.build_dags(&w, &dests, 0.0).unwrap();
        assert_eq!(engine.spf_builds(), 1);

        // Attach to a different topology: cold fallback, the build runs.
        let other = standard::fig1();
        let other_tm = standard::fig1_demands();
        let ow = vec![1.0; other.link_count()];
        let mut engine = RoutingEngine::with_state(other.graph(), engine.into_state());
        engine
            .build_dags(&ow, &other_tm.destinations(), 0.0)
            .unwrap();
        assert_eq!(engine.spf_builds(), 2);

        // And its results match a fresh engine's bit for bit.
        let mut fresh = RoutingEngine::new(other.graph());
        fresh
            .build_dags(&ow, &other_tm.destinations(), 0.0)
            .unwrap();
        let mut a = engine.distribute_fresh();
        engine
            .distribute_into(&other_tm, SplitRule::EvenEcmp, &mut a)
            .unwrap();
        let mut b = fresh.distribute_fresh();
        fresh
            .distribute_into(&other_tm, SplitRule::EvenEcmp, &mut b)
            .unwrap();
        assert_eq!(a.aggregate(), b.aggregate());
    }

    /// One full build+distribute cycle on a fresh dense engine; the
    /// reference every incremental test compares against.
    fn dense_reference(
        net: &spef_topology::Network,
        tm: &TrafficMatrix,
        dests: &[NodeId],
        w: &[f64],
        tol: f64,
    ) -> Flows {
        let mut engine = RoutingEngine::new(net.graph());
        engine.set_incremental(false);
        engine.build_dags(w, dests, tol).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        flows
    }

    #[test]
    fn incremental_single_weight_probe_matches_dense() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let mut w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();

        let mut engine = RoutingEngine::new(net.graph());
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();

        // A Fortz–Thorup-style probe loop: one weight changes per step.
        for e in 0..net.link_count() {
            w[e] *= 3.0;
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine
                .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
                .unwrap();
            let fresh = dense_reference(&net, &tm, &dests, &w, 0.0);
            assert_eq!(flows, fresh, "probe on edge {e} diverged from dense");
            // Revert — again a single-weight delta.
            w[e] /= 3.0;
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine
                .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
                .unwrap();
        }
        let stats = engine.spf_stats();
        assert!(
            stats.incremental_builds > 0,
            "probe loop never took the incremental path: {stats:?}"
        );
        assert!(stats.slots_rebuilt < stats.incremental_builds * dests.len() as u64);
    }

    #[test]
    fn incremental_respects_equal_cost_tolerance() {
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let dests = tm.destinations();
        let tol = 0.5;
        let mut w = vec![1.0; net.link_count()];

        let mut engine = RoutingEngine::new(net.graph());
        engine.build_dags(&w, &dests, tol).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();

        // Nudge a weight by less than the tolerance: the edge may enter or
        // leave equal-cost DAGs without changing any shortest distance.
        for e in 0..net.link_count() {
            w[e] += 0.25;
            engine.build_dags(&w, &dests, tol).unwrap();
            engine
                .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
                .unwrap();
            assert_eq!(flows, dense_reference(&net, &tm, &dests, &w, tol));
        }
    }

    #[test]
    fn incremental_off_switch_forces_dense() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let mut w = vec![1.0; net.link_count()];
        let mut engine = RoutingEngine::new(net.graph());
        engine.set_incremental(false);
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        w[2] = 5.0;
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        assert_eq!(engine.spf_stats().incremental_builds, 0);
        assert_eq!(flows, dense_reference(&net, &tm, &dests, &w, 0.0));
    }

    #[test]
    fn incremental_tracks_demand_changes() {
        let net = standard::fig4();
        let mut tm = standard::fig4_demands();
        let dests = tm.destinations();
        let w = vec![1.0; net.link_count()];
        let mut engine = RoutingEngine::new(net.graph());
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        // Change one demand entry and redistribute with unchanged DAGs:
        // only that destination's column may be stale.
        let (src, t, old) = tm.pairs().next().unwrap();
        tm.set(src, t, old + 1.5);
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        assert_eq!(flows, dense_reference(&net, &tm, &dests, &w, 0.0));
    }

    #[test]
    fn incremental_survives_buffer_swap_and_mutation() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let mut w = vec![1.0; net.link_count()];
        let mut engine = RoutingEngine::new(net.graph());
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();

        // Mutating the buffer (external scaling) clears its stamp; the
        // next call must fall back dense, not trust stale columns.
        let ratios = vec![1.0; dests.len()];
        flows.scale_per_destination(&ratios);
        w[0] = 2.0;
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        assert_eq!(flows, dense_reference(&net, &tm, &dests, &w, 0.0));

        // A different (unstamped) buffer also falls back dense.
        w[1] = 3.0;
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut other = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut other)
            .unwrap();
        assert_eq!(other, dense_reference(&net, &tm, &dests, &w, 0.0));
    }

    #[test]
    fn fail_restore_matches_cold_engines_on_both_topologies() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();

        let mut engine = RoutingEngine::new(net.graph());
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();

        let mut probed = 0;
        for e in 0..net.link_count() {
            let circuit = [spef_graph::EdgeId::new(e)];
            // Skip cut links; the mask would disconnect the network.
            let Ok((degraded, kept)) = net.without_links(&circuit) else {
                continue;
            };
            probed += 1;
            engine.fail_links(&circuit).unwrap();
            // Same weights, same dests: the fingerprint skips the batch.
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine
                .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
                .unwrap();

            // Cold dense engine over the physically degraded topology,
            // weights remapped through the kept-edge list.
            let dw: Vec<f64> = kept.iter().map(|&ke| w[ke.index()]).collect();
            let cold = dense_reference(&degraded, &tm, &dests, &dw, 0.0);
            let mut mapped = vec![0.0f64; net.link_count()];
            for (j, &ke) in kept.iter().enumerate() {
                mapped[ke.index()] = cold.aggregate()[j];
            }
            for (i, (a, b)) in flows.aggregate().iter().zip(&mapped).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "edge {i} diverged with link {e} failed"
                );
            }

            // Restore: back to the intact answer, bit for bit.
            engine.restore_links(&circuit).unwrap();
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine
                .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
                .unwrap();
            assert_eq!(flows, dense_reference(&net, &tm, &dests, &w, 0.0));
        }
        assert!(probed > 0, "no single-link circuit kept fig4 connected");
        let stats = engine.spf_stats();
        assert!(
            stats.topology_builds > 0,
            "never patched in place: {stats:?}"
        );
        assert_eq!(stats.masked_links, probed);
        assert_eq!(engine.masked_links(), 0);
    }

    #[test]
    fn fail_links_is_idempotent_and_checks_ids() {
        let net = standard::fig4();
        let mut engine = RoutingEngine::new(net.graph());
        let bad = spef_graph::EdgeId::new(net.link_count());
        assert!(matches!(
            engine.fail_links(&[bad]),
            Err(GraphError::LinkOutOfRange { .. })
        ));
        let e = spef_graph::EdgeId::new(0);
        engine.fail_links(&[e]).unwrap();
        engine.fail_links(&[e, e]).unwrap();
        assert_eq!(engine.masked_links(), 1);
        assert_eq!(engine.spf_stats().masked_links, 1);
        engine.restore_links(&[e]).unwrap();
        engine.restore_links(&[e]).unwrap();
        assert_eq!(engine.masked_links(), 0);
    }

    #[test]
    fn fail_links_with_incremental_off_still_matches_cold() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let mut engine = RoutingEngine::new(net.graph());
        engine.set_incremental(false);
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        let circuit = [spef_graph::EdgeId::new(0)];
        let (degraded, kept) = net.without_links(&circuit).unwrap();
        engine.fail_links(&circuit).unwrap();
        engine.build_dags(&w, &dests, 0.0).unwrap();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        let dw: Vec<f64> = kept.iter().map(|&ke| w[ke.index()]).collect();
        let cold = dense_reference(&degraded, &tm, &dests, &dw, 0.0);
        let mut mapped = vec![0.0f64; net.link_count()];
        for (j, &ke) in kept.iter().enumerate() {
            mapped[ke.index()] = cold.aggregate()[j];
        }
        for (a, b) in flows.aggregate().iter().zip(&mapped) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(engine.spf_stats().topology_builds, 0);
    }

    #[test]
    fn split_tables_align_with_destinations() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let w = vec![1.0; net.link_count()];
        let mut engine = RoutingEngine::new(net.graph());
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        assert_eq!(engine.split_tables().len(), dests.len());
        for (i, _) in dests.iter().enumerate() {
            let table = engine.split_tables().table(i);
            let dag = engine.dag_set().dag(i);
            for u in net.graph().nodes() {
                let hops = table.next_hops(u);
                if !hops.is_empty() {
                    let sum: f64 = hops.iter().map(|&(_, r)| r).sum();
                    assert!((sum - 1.0).abs() < 1e-9);
                    assert_eq!(hops.len(), dag.successors(u).len());
                }
            }
        }
    }
}
