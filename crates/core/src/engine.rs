//! The batched routing engine — the per-iteration hot path of every
//! solver, packaged as one reusable object.
//!
//! A solver loop (Frank–Wolfe, Algorithm 1, NEM, the Fortz–Thorup local
//! search) repeats the cycle *build per-destination DAGs → distribute
//! traffic* hundreds to tens of thousands of times with only the weights
//! changing. [`RoutingEngine`] amortises everything else:
//!
//! * the in-edge [`Csr`] adjacency is built **once** per engine;
//! * weight validation runs once per batch, not once per destination;
//! * DAGs ([`DagSet`]), split tables ([`SplitTableSet`]), demand columns
//!   and flow vectors live in flat arenas that are reused across calls —
//!   after the first iteration the cycle performs **zero allocations**
//!   on the sequential path (with parallel fan-out engaged, only the
//!   `O(dests)`-pointer task list is allocated per call, never the
//!   arena data);
//! * DAG construction fans destinations out across worker threads when
//!   the batch is large enough, with bit-identical results regardless of
//!   schedule (each destination writes only its own arena slices).
//!
//! The engine is a drop-in for the legacy
//! [`build_dags`](crate::build_dags) +
//! [`traffic_distribution`](crate::traffic_distribution) pair and produces
//! bit-identical flows; the property tests in
//! `tests/engine_equivalence.rs` pin that guarantee.
//!
//! ```
//! use spef_core::{RoutingEngine, SplitRule};
//! use spef_topology::{standard, TrafficMatrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = standard::fig1();
//! let tm = standard::fig1_demands();
//! let dests = tm.destinations();
//! let weights = vec![1.0; net.link_count()];
//!
//! let mut engine = RoutingEngine::new(net.graph());
//! let mut flows = engine.distribute_fresh();
//! for _ in 0..3 {
//!     // Steady state: no allocations inside this loop.
//!     engine.build_dags(&weights, &dests, 0.0)?;
//!     engine.distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)?;
//! }
//! assert_eq!(flows.aggregate().len(), net.link_count());
//! # Ok(())
//! # }
//! ```

use spef_graph::batch::{build_dag_set, DagSet, Parallelism, RoutingWorkspace};
use spef_graph::{Csr, Graph, GraphError, NodeId};
use spef_topology::TrafficMatrix;

use crate::traffic_dist::{distribute_batch, DistScratch, Flows, SplitRule, SplitTableSet};
use crate::SpefError;

/// A reusable batched router over one graph. See the [module
/// docs](self) for what it amortises.
#[derive(Debug)]
pub struct RoutingEngine<'g> {
    graph: &'g Graph,
    in_csr: Csr,
    par: Parallelism,
    ws: RoutingWorkspace,
    dags: DagSet,
    tables: SplitTableSet,
    scratch: DistScratch,
}

impl<'g> RoutingEngine<'g> {
    /// Creates an engine for `graph`, freezing its CSR adjacency.
    /// Destination fan-out is parallelised automatically for large
    /// batches.
    pub fn new(graph: &'g Graph) -> RoutingEngine<'g> {
        Self::with_parallelism(graph, Parallelism::Auto)
    }

    /// Like [`RoutingEngine::new`] with an explicit parallelism policy
    /// (used by the schedule-independence tests; results are identical
    /// either way).
    pub fn with_parallelism(graph: &'g Graph, par: Parallelism) -> RoutingEngine<'g> {
        RoutingEngine {
            graph,
            in_csr: Csr::in_of(graph),
            par,
            ws: RoutingWorkspace::new(),
            dags: DagSet::new(),
            tables: SplitTableSet::new(),
            scratch: DistScratch::default(),
        }
    }

    /// The graph the engine routes over.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Builds the shortest-path DAGs of every destination under `weights`
    /// with equal-cost tolerance `tolerance`, replacing the engine's
    /// current DAG set. Weights are validated once for the whole batch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`spef_graph::ShortestPathDag::build`].
    pub fn build_dags(
        &mut self,
        weights: &[f64],
        dests: &[NodeId],
        tolerance: f64,
    ) -> Result<(), GraphError> {
        build_dag_set(
            self.graph,
            &self.in_csr,
            weights,
            dests,
            tolerance,
            self.par,
            &mut self.ws,
            &mut self.dags,
        )
    }

    /// The current DAG set (destinations of the last
    /// [`build_dags`](Self::build_dags) call).
    pub fn dag_set(&self) -> &DagSet {
        &self.dags
    }

    /// The split tables of the last
    /// [`distribute_into`](Self::distribute_into) call, aligned with the
    /// DAG destinations — the batched form of the paper's TABLE II rows.
    pub fn split_tables(&self) -> &SplitTableSet {
        &self.tables
    }

    /// A flow buffer shaped for reuse with
    /// [`distribute_into`](Self::distribute_into).
    pub fn distribute_fresh(&self) -> Flows {
        Flows::empty()
    }

    /// Algorithm 3 over the engine's current DAG set: routes the demand
    /// columns of the DAG destinations under `rule`, writing flows into
    /// `out` (reshaped as needed, zero allocations once warm) and split
    /// tables into the engine.
    ///
    /// The traffic matrix must cover the engine's graph; demand columns
    /// are taken for exactly the destinations the DAGs were built for.
    ///
    /// # Errors
    ///
    /// * [`SpefError::UnroutableDemand`] if a positive demand has no path
    ///   on its destination's DAG,
    /// * [`SpefError::InvalidInput`] if the rule's weight vector is
    ///   malformed.
    ///
    /// # Panics
    ///
    /// Panics if `traffic` covers fewer nodes than the graph.
    pub fn distribute_into(
        &mut self,
        traffic: &TrafficMatrix,
        rule: SplitRule<'_>,
        out: &mut Flows,
    ) -> Result<(), SpefError> {
        distribute_batch(
            self.graph,
            self.dags.destinations(),
            self.dags.iter(),
            traffic,
            rule,
            &mut self.tables,
            &mut self.scratch,
            out,
        )
    }

    /// Builds only the split tables (TABLE II rows) for the current DAG
    /// set under `rule`, without routing any traffic — the final
    /// forwarding-table materialisation step of Algorithm 4.
    ///
    /// # Errors
    ///
    /// [`SpefError::InvalidInput`] if the rule's weight vector is
    /// malformed.
    pub fn build_split_tables(&mut self, rule: SplitRule<'_>) -> Result<&SplitTableSet, SpefError> {
        crate::traffic_dist::validate_rule(self.graph, rule)?;
        self.tables.reset(self.graph.node_count());
        for dag in self.dags.iter() {
            self.tables.push_table(self.graph, &dag, rule);
        }
        Ok(&self.tables)
    }

    /// Convenience wrapper around
    /// [`distribute_into`](Self::distribute_into) returning an owned
    /// [`Flows`] (allocating; iterating callers should hold a buffer).
    ///
    /// # Errors
    ///
    /// Same conditions as [`distribute_into`](Self::distribute_into).
    pub fn distribute(
        &mut self,
        traffic: &TrafficMatrix,
        rule: SplitRule<'_>,
    ) -> Result<Flows, SpefError> {
        let mut out = Flows::empty();
        self.distribute_into(traffic, rule, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic_dist::{build_dags, traffic_distribution};
    use spef_topology::standard;

    #[test]
    fn engine_matches_legacy_wrappers_exactly() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let g = net.graph();
        let dests = tm.destinations();
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();

        let dags = build_dags(g, &w, &dests, 0.0).unwrap();
        let legacy = traffic_distribution(g, &dags, &tm, SplitRule::EvenEcmp).unwrap();

        let mut engine = RoutingEngine::new(g);
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();

        assert_eq!(flows.aggregate(), legacy.aggregate());
        for &t in &dests {
            assert_eq!(flows.for_destination(t), legacy.for_destination(t));
        }
    }

    #[test]
    fn buffers_are_reused_across_iterations() {
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let dests = tm.destinations();
        let mut engine = RoutingEngine::new(net.graph());
        let mut flows = engine.distribute_fresh();
        let mut last = Vec::new();
        for k in 1..=4u32 {
            let w: Vec<f64> = (0..net.link_count())
                .map(|e| 1.0 + (e as f64) * 0.1 * k as f64)
                .collect();
            engine.build_dags(&w, &dests, 0.0).unwrap();
            engine
                .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
                .unwrap();
            last = flows.aggregate().to_vec();
        }
        // Matches a from-scratch computation of the final iteration.
        let w: Vec<f64> = (0..net.link_count())
            .map(|e| 1.0 + (e as f64) * 0.4)
            .collect();
        let dags = build_dags(net.graph(), &w, &dests, 0.0).unwrap();
        let fresh = traffic_distribution(net.graph(), &dags, &tm, SplitRule::EvenEcmp).unwrap();
        assert_eq!(last, fresh.aggregate());
    }

    #[test]
    fn split_tables_align_with_destinations() {
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let dests = tm.destinations();
        let w = vec![1.0; net.link_count()];
        let mut engine = RoutingEngine::new(net.graph());
        engine.build_dags(&w, &dests, 0.0).unwrap();
        let mut flows = engine.distribute_fresh();
        engine
            .distribute_into(&tm, SplitRule::EvenEcmp, &mut flows)
            .unwrap();
        assert_eq!(engine.split_tables().len(), dests.len());
        for (i, _) in dests.iter().enumerate() {
            let table = engine.split_tables().table(i);
            let dag = engine.dag_set().dag(i);
            for u in net.graph().nodes() {
                let hops = table.next_hops(u);
                if !hops.is_empty() {
                    let sum: f64 = hops.iter().map(|&(_, r)| r).sum();
                    assert!((sum - 1.0).abs() < 1e-9);
                    assert_eq!(hops.len(), dag.successors(u).len());
                }
            }
        }
    }
}
