use std::fmt;

use spef_graph::{GraphError, NodeId};

/// Errors produced by the SPEF solvers and protocol construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpefError {
    /// The traffic matrix cannot be routed within link capacities (the
    /// optimal max link utilization is ≥ 1, where the aggregate utility of
    /// the paper is −∞).
    Infeasible,
    /// A demand source cannot reach its destination on the current
    /// shortest-path DAG.
    UnroutableDemand {
        /// Demand source.
        source: NodeId,
        /// Demand destination.
        destination: NodeId,
    },
    /// An iterative solver exhausted its iteration budget without meeting
    /// its tolerance.
    NotConverged {
        /// Which algorithm failed to converge.
        algorithm: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// The residual that was still above tolerance.
        residual: f64,
    },
    /// Network and traffic-matrix sizes disagree, or a parameter was
    /// out of its documented domain.
    InvalidInput(String),
    /// An underlying graph computation failed.
    Graph(GraphError),
}

impl fmt::Display for SpefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpefError::Infeasible => {
                write!(f, "traffic demands are not routable within link capacities")
            }
            SpefError::UnroutableDemand {
                source,
                destination,
            } => write!(
                f,
                "demand {source} -> {destination} has no usable shortest-path next hop"
            ),
            SpefError::NotConverged {
                algorithm,
                iterations,
                residual,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SpefError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SpefError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for SpefError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpefError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SpefError {
    fn from(e: GraphError) -> Self {
        SpefError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpefError::UnroutableDemand {
            source: NodeId::new(1),
            destination: NodeId::new(2),
        };
        assert!(e.to_string().contains("n1"));
        assert!(e.to_string().contains("n2"));

        let e = SpefError::NotConverged {
            algorithm: "NEM",
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("NEM"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn graph_errors_convert() {
        let ge = GraphError::NegativeCycle;
        let se: SpefError = ge.clone().into();
        assert_eq!(se, SpefError::Graph(ge));
        assert!(std::error::Error::source(&se).is_some());
    }
}
