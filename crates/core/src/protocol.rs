//! Algorithm 4 — the SPEF routing protocol, end to end.
//!
//! ```text
//! 1. Solve TE(V, G, c, D)            → optimal flows f*, first weights w
//! 2. Dijkstra per destination        → shortest-path DAGs ON_t
//! 3. Algorithm 2 (NEM)               → second weights v
//! 4. Per (router, destination)       → forwarding table (TABLE II)
//! ```
//!
//! Packets are then forwarded exactly like OSPF — hop by hop along
//! destination-based shortest paths under the first weights — except that a
//! router with several equal-cost next hops splits traffic with the
//! exponential ratios of Eq. (22), computed locally from the second
//! weights. *One more weight per link is enough.*

use spef_graph::{NodeId, ShortestPathDag};
use spef_topology::{Network, TrafficMatrix};

use crate::dual_decomp::{self, DualDecompConfig};
use crate::engine::RoutingEngine;
use crate::fib::FibSet;
use crate::frank_wolfe::FrankWolfeConfig;
use crate::nem::{self, NemConfig, NemOutcome};
use crate::solver::TeWorkspace;
use crate::te::{self, TeSolution};
use crate::traffic_dist::{validate_rule, Flows, SplitRule, SplitTableSet};
use crate::weights::{
    integerize, scale_weights, INTEGER_DIJKSTRA_TOLERANCE, NONINTEGER_DIJKSTRA_TOLERANCE,
};
use crate::{metrics, Objective, SpefError};

/// How the first weights are post-processed before being configured
/// (§V.G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightMode {
    /// Use the real-valued optimal weights directly (an idealised router).
    #[default]
    Exact,
    /// Scale by `max_e s_e` but keep fractional values; Dijkstra tolerance
    /// 0.3 (the paper's "noninteger" configuration).
    ScaledNoninteger,
    /// Scale and round to positive integers; Dijkstra tolerance 1 (the
    /// paper's "integer" configuration, what real OSPF would carry).
    Integer,
}

/// Which solver computes the TE optimum and the first weights.
///
/// (Named `TeSolverKind` because [`TeSolver`](crate::TeSolver) is the
/// unified solver trait; this enum selects which implementation the SPEF
/// pipeline delegates step 1 to.)
#[derive(Debug, Clone)]
pub enum TeSolverKind {
    /// The primal Frank–Wolfe reference solver (default; β = 0 dispatches
    /// to the exact LP automatically).
    FrankWolfe(FrankWolfeConfig),
    /// The paper's Algorithm 1 (distributed dual decomposition). The NEM
    /// target capacity is the paper's virtual capacity `c' = c − s`.
    DualDecomposition(DualDecompConfig),
}

impl Default for TeSolverKind {
    fn default() -> Self {
        TeSolverKind::FrankWolfe(FrankWolfeConfig::default())
    }
}

/// Configuration of the full SPEF pipeline.
#[derive(Debug, Clone, Default)]
pub struct SpefConfig {
    /// TE solver for the first weights.
    pub solver: TeSolverKind,
    /// NEM solver for the second weights.
    pub nem: NemConfig,
    /// Weight post-processing mode.
    pub weight_mode: WeightMode,
    /// Explicit Dijkstra equal-cost tolerance; `None` picks the §V.G value
    /// for the weight mode (or an adaptive small tolerance for
    /// [`WeightMode::Exact`]).
    pub dijkstra_tolerance: Option<f64>,
}

/// A fully built SPEF routing: both weight sets, the DAGs, the realised
/// flows and the forwarding tables.
#[derive(Debug, Clone)]
pub struct SpefRouting {
    first_weights: Vec<f64>,
    second_weights: Vec<f64>,
    te: TeSolution,
    target_flows: Vec<f64>,
    flows: Flows,
    dags: Vec<ShortestPathDag>,
    fib: ForwardingTable,
    dijkstra_tolerance: f64,
    nem_converged: bool,
}

impl SpefRouting {
    /// Builds SPEF routing cold on a fresh workspace — Algorithm 4 of the
    /// paper.
    ///
    /// # Errors
    ///
    /// * [`SpefError::Infeasible`] if the demands are not routable,
    /// * [`SpefError::UnroutableDemand`] for disconnected demand pairs,
    /// * [`SpefError::InvalidInput`] for size mismatches.
    #[deprecated(
        since = "0.6.0",
        note = "use `TeSolver::solve` / `solve_in` on `SpefConfig`"
    )]
    pub fn build(
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        config: &SpefConfig,
    ) -> Result<SpefRouting, SpefError> {
        build_in(network, traffic, objective, config, &mut TeWorkspace::new())
    }

    /// The deployed first link weights (post-processed per the weight
    /// mode).
    pub fn first_weights(&self) -> &[f64] {
        &self.first_weights
    }

    /// The second link weights (the "one more weight" of the title).
    pub fn second_weights(&self) -> &[f64] {
        &self.second_weights
    }

    /// The TE optimum underlying this routing.
    pub fn te_solution(&self) -> &TeSolution {
        &self.te
    }

    /// The NEM target distribution (aggregate `f*`, or the virtual
    /// capacity `c − s` when Algorithm 1 was the solver).
    pub fn target_flows(&self) -> &[f64] {
        &self.target_flows
    }

    /// The flows SPEF actually realises with exponential splitting.
    pub fn flows(&self) -> &Flows {
        &self.flows
    }

    /// The per-destination shortest-path DAGs under the first weights.
    pub fn dags(&self) -> &[ShortestPathDag] {
        &self.dags
    }

    /// The forwarding tables (TABLE II, reduced to split ratios).
    pub fn forwarding_table(&self) -> &ForwardingTable {
        &self.fib
    }

    /// The Dijkstra equal-cost tolerance that built the DAGs.
    pub fn dijkstra_tolerance(&self) -> f64 {
        self.dijkstra_tolerance
    }

    /// Whether NEM met its ε-criterion (it may not under integer weights;
    /// see §V.G / Fig. 13).
    pub fn nem_converged(&self) -> bool {
        self.nem_converged
    }

    /// Maximum link utilization of the realised flows.
    pub fn max_link_utilization(&self, network: &Network) -> f64 {
        metrics::max_link_utilization(network, self.flows.aggregate())
    }

    /// Normalized utility `Σ log(1 − u)` of the realised flows.
    pub fn normalized_utility(&self, network: &Network) -> f64 {
        metrics::normalized_utility(network, self.flows.aggregate())
    }
}

/// Runs Algorithm 4 in the caller's workspace: the TE stage (step 1), the
/// DAG engine (steps 2 and 4) and NEM (step 3) all draw their arenas —
/// and, when the fingerprints allow it, their warm starts — from `ws`.
pub(crate) fn build_in(
    network: &Network,
    traffic: &TrafficMatrix,
    objective: &Objective,
    config: &SpefConfig,
    ws: &mut TeWorkspace,
) -> Result<SpefRouting, SpefError> {
    let g = network.graph();

    // Step 1: TE optimum + raw first weights.
    let (te, raw_weights, target_flows) = match &config.solver {
        TeSolverKind::FrankWolfe(fw) => {
            let te = te::solve_te_in(network, traffic, objective, fw, ws)?;
            let w = te.weights.clone();
            let f = te.flows.aggregate().to_vec();
            (te, w, f)
        }
        TeSolverKind::DualDecomposition(dd) => {
            let mut out = dual_decomp::solve_in(network, traffic, objective, dd, ws)?;
            // A tiled Algorithm 1 solve keeps only the aggregate flows,
            // but the Exact-mode adaptive tolerance below needs the
            // per-destination support. Rebuild the dense columns once
            // from the floored weights of the last iterate — the same
            // kernel the untiled loop ran, so the columns (and the
            // derived tolerance) are bit-identical to a dense solve.
            if !out.flows.has_columns()
                && config.dijkstra_tolerance.is_none()
                && matches!(config.weight_mode, WeightMode::Exact)
            {
                let last_floored = ws.dd.floored.clone();
                let mut engine = RoutingEngine::with_state(g, ws.take_engine(g));
                let rebuilt = engine
                    .build_dags(&last_floored, &traffic.destinations(), 0.0)
                    .map_err(SpefError::from)
                    .and_then(|()| {
                        engine.distribute_into(traffic, SplitRule::EvenEcmp, &mut out.flows)
                    });
                ws.put_engine(engine.into_state());
                rebuilt?;
            }
            // Virtual capacity c' = c − s is the NEM target.
            let target: Vec<f64> = network
                .capacities()
                .iter()
                .zip(&out.spare)
                .map(|(c, s)| (c - s).max(0.0))
                .collect();
            let spare = out.spare.clone();
            let utility = objective.aggregate_utility(&spare);
            let te = TeSolution {
                flows: out.flows,
                spare,
                utility,
                weights: out.weights.clone(),
                relative_gap: f64::NAN,
                iterations: out.iterations,
            };
            (te, out.weights, target)
        }
    };

    // Step 1b: weight post-processing per §V.G.
    let (first_weights, tolerance) = match config.weight_mode {
        WeightMode::Exact => {
            // The tolerance must absorb the TE solver's finite accuracy:
            // paths that tie at the exact optimum may differ by a small
            // amount in the computed weights (amplified by large β,
            // where V' is steep). Over-inclusion is benign — NEM drives
            // superfluous paths' split ratios toward zero — but missing
            // a path that carries optimal flow is fatal to
            // realisability, so the default tolerance is taken from the
            // worst Bellman slack over the optimal support itself.
            let tol = config
                .dijkstra_tolerance
                .map(Ok)
                .unwrap_or_else(|| support_slack_tolerance(g, &raw_weights, &te.flows))?;
            (raw_weights, tol)
        }
        WeightMode::ScaledNoninteger => {
            let scaled = scale_weights(&raw_weights, &te.spare)?;
            let tol = config
                .dijkstra_tolerance
                .unwrap_or(NONINTEGER_DIJKSTRA_TOLERANCE);
            (scaled, tol)
        }
        WeightMode::Integer => {
            let ints = integerize(&raw_weights, &te.spare)?;
            let tol = config
                .dijkstra_tolerance
                .unwrap_or(INTEGER_DIJKSTRA_TOLERANCE);
            (ints, tol)
        }
    };

    // Steps 2–4 run on the workspace's engine; the state goes back into
    // the workspace whether they succeed or not.
    let dests = traffic.destinations();
    let floored: Vec<f64> = first_weights
        .iter()
        .map(|w| w.max(dual_decomp::WEIGHT_FLOOR))
        .collect();
    let mut engine = RoutingEngine::with_state(g, ws.take_engine(g));
    let result = route_stages(
        traffic,
        config,
        &dests,
        &floored,
        tolerance,
        &target_flows,
        &mut engine,
        ws,
    );
    ws.put_engine(engine.into_state());
    let (dags, nem_out, fib) = result?;

    Ok(SpefRouting {
        first_weights,
        second_weights: nem_out.second_weights,
        te,
        target_flows,
        flows: nem_out.flows,
        dags,
        fib,
        dijkstra_tolerance: tolerance,
        nem_converged: nem_out.converged,
    })
}

/// Steps 2–4 of Algorithm 4: DAGs, second weights, forwarding tables.
#[allow(clippy::too_many_arguments)]
fn route_stages(
    traffic: &TrafficMatrix,
    config: &SpefConfig,
    dests: &[NodeId],
    floored: &[f64],
    tolerance: f64,
    target_flows: &[f64],
    engine: &mut RoutingEngine<'_>,
    ws: &mut TeWorkspace,
) -> Result<(Vec<ShortestPathDag>, NemOutcome, ForwardingTable), SpefError> {
    let g = engine.graph();
    let tile = ws.tile.filter(|&t| t < dests.len());

    // Step 2: per-destination shortest-path DAGs, built through the
    // batched CSR engine and materialised for the public accessor. The
    // tiled path routes the builds through the tile-sized arenas (peak
    // O(tile·edges)); the DAGs are materialised in destination order
    // either way, so the owned set is identical bit for bit.
    let mut dags: Vec<ShortestPathDag> = Vec::with_capacity(dests.len());
    if let Some(t) = tile {
        engine.for_each_dag_tile(floored, dests, tolerance, t, |_, chunk, set| {
            for i in 0..chunk.len() {
                dags.push(set.to_shortest_path_dag(i, g));
            }
            Ok(())
        })?;
    } else {
        engine.build_dags(floored, dests, tolerance)?;
        for i in 0..engine.dag_set().len() {
            dags.push(engine.dag_set().to_shortest_path_dag(i, g));
        }
    }

    // Step 3: second weights via NEM (tiles internally off the same knob).
    let nem_out = nem::solve_in(g, &dags, traffic, target_flows, &config.nem, ws)?;

    // Step 4: forwarding tables (batched TABLE II rows). The tiled path
    // streams each tile's rows straight into the flat FIB arena, so the
    // only all-destinations structure ever held is the FIB itself.
    let rule = SplitRule::Exponential(&nem_out.second_weights);
    let fib = if let Some(t) = tile {
        validate_rule(g, rule)?;
        let mut tables = SplitTableSet::new();
        let mut set = FibSet::new();
        set.begin(g.node_count());
        for chunk in dags.chunks(t) {
            tables.reset(g.node_count());
            for dag in chunk {
                tables.push_table(g, dag, rule);
            }
            for (i, dag) in chunk.iter().enumerate() {
                let table = tables.table(i);
                set.push_destination(dag.target(), |u| table.next_hops(NodeId::new(u)));
            }
        }
        ForwardingTable::from(set)
    } else {
        let tables = engine.build_split_tables(rule)?;
        ForwardingTable::from_split_table_set(g.node_count(), dests, tables)
    };

    Ok((dags, nem_out, fib))
}

/// Smallest Dijkstra tolerance that keeps every significantly-loaded edge
/// of the optimal distribution inside its destination's shortest-path DAG:
/// the maximum Bellman slack `w_uv + dist(v) − dist(u)` over edges carrying
/// at least 1% of their commodity's peak flow, padded by 10%.
///
/// This is the tolerance [`SpefRouting::build`] derives for
/// [`WeightMode::Exact`]; it is exported for callers that build DAGs from
/// solver weights directly (e.g. the convergence experiments).
///
/// # Errors
///
/// Propagates graph errors from the distance computations.
pub fn support_slack_tolerance(
    g: &spef_graph::Graph,
    weights: &[f64],
    flows: &Flows,
) -> Result<f64, SpefError> {
    let floored: Vec<f64> = weights
        .iter()
        .map(|w| w.max(dual_decomp::WEIGHT_FLOOR))
        .collect();
    let mut max_slack = 0.0f64;
    for &t in flows.destinations() {
        let f_t = flows.for_destination(t).expect("destination flows");
        let peak = f_t.iter().cloned().fold(0.0, f64::max);
        if peak <= 0.0 {
            continue;
        }
        let dist = spef_graph::distances_to(g, &floored, t)?;
        for (e, u, v) in g.edges() {
            if f_t[e.index()] < 1e-2 * peak {
                continue;
            }
            let (du, dv) = (dist[u.index()], dist[v.index()]);
            if du.is_finite() && dv.is_finite() {
                max_slack = max_slack.max(floored[e.index()] + dv - du);
            }
        }
    }
    let max_w = floored.iter().cloned().fold(0.0, f64::max);
    Ok((1.1 * max_slack).max(1e-9 * max_w))
}

pub use crate::fib::ForwardingTable;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::ConvergenceCriteria;
    use spef_graph::EdgeId;
    use spef_topology::standard;

    /// Cold-build helper: each call gets a fresh workspace.
    fn build(
        network: &Network,
        traffic: &TrafficMatrix,
        objective: &Objective,
        config: &SpefConfig,
    ) -> Result<SpefRouting, SpefError> {
        build_in(network, traffic, objective, config, &mut TeWorkspace::new())
    }

    fn build_fig1(mode: WeightMode) -> (Network, SpefRouting) {
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let obj = Objective::proportional(net.link_count());
        let cfg = SpefConfig {
            weight_mode: mode,
            nem: NemConfig {
                convergence: ConvergenceCriteria::with_tolerance(20000, 1e-5),
                ..NemConfig::default()
            },
            ..SpefConfig::default()
        };
        let routing = build(&net, &tm, &obj, &cfg).unwrap();
        (net, routing)
    }

    #[test]
    fn exact_mode_realizes_optimal_te() {
        let (net, routing) = build_fig1(WeightMode::Exact);
        assert!(routing.nem_converged());
        // Realised flows match the TE optimum (Theorem 4.2).
        for (f, t) in routing
            .flows()
            .aggregate()
            .iter()
            .zip(routing.te_solution().flows.aggregate())
        {
            assert!((f - t).abs() < 1e-3, "{f} vs {t}");
        }
        // Realised utility ≈ optimal utility.
        let u = routing.normalized_utility(&net);
        assert!(u.is_finite());
    }

    #[test]
    fn forwarding_ratios_sum_to_one() {
        let (net, routing) = build_fig1(WeightMode::Exact);
        let fib = routing.forwarding_table();
        for &t in fib.destinations() {
            for node in net.graph().nodes() {
                let hops = fib.next_hops(node, t).unwrap();
                if !hops.is_empty() {
                    let sum: f64 = hops.iter().map(|&(_, r)| r).sum();
                    assert!((sum - 1.0).abs() < 1e-9);
                }
            }
        }
        assert!(fib.next_hops(NodeId::new(0), NodeId::new(1)).is_none());
    }

    #[test]
    fn integer_mode_uses_integer_weights_and_tolerance_one() {
        let (_, routing) = build_fig1(WeightMode::Integer);
        for &w in routing.first_weights() {
            assert_eq!(w, w.round());
            assert!(w >= 1.0);
        }
        assert_eq!(routing.dijkstra_tolerance(), 1.0);
    }

    #[test]
    fn scaled_mode_uses_tolerance_point_three() {
        let (_, routing) = build_fig1(WeightMode::ScaledNoninteger);
        assert_eq!(routing.dijkstra_tolerance(), 0.3);
        // Max-spare link scales to weight 1 under β = 1.
        let min_w = routing
            .first_weights()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!((min_w - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dual_decomposition_solver_also_builds() {
        let net = standard::fig1();
        let tm = standard::fig1_demands();
        let obj = Objective::proportional(net.link_count());
        let cfg = SpefConfig {
            solver: TeSolverKind::DualDecomposition(DualDecompConfig {
                convergence: ConvergenceCriteria::budget(4000),
                record_trace: false,
                ..DualDecompConfig::default()
            }),
            ..SpefConfig::default()
        };
        let routing = build(&net, &tm, &obj, &cfg).unwrap();
        // Weights close to the primal reference (TABLE I: 3, 10, 1.5, 1.5).
        assert!((routing.first_weights()[1] - 10.0).abs() < 1.5);
        let mlu = routing.max_link_utilization(&net);
        assert!(mlu <= 1.0 + 1e-6);
    }

    #[test]
    fn spef_beats_or_matches_ospf_utility_on_fig4() {
        use crate::traffic_dist::{build_dags, traffic_distribution, SplitRule};
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let obj = Objective::proportional(net.link_count());
        let routing = build(&net, &tm, &obj, &SpefConfig::default()).unwrap();
        // OSPF InvCap even split.
        let invcap: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let dags = build_dags(net.graph(), &invcap, &tm.destinations(), 0.0).unwrap();
        let ospf = traffic_distribution(net.graph(), &dags, &tm, SplitRule::EvenEcmp).unwrap();
        let ospf_u = metrics::normalized_utility(&net, ospf.aggregate());
        let spef_u = routing.normalized_utility(&net);
        // OSPF overloads the bottleneck (utility −∞); SPEF stays feasible.
        assert_eq!(ospf_u, f64::NEG_INFINITY);
        assert!(spef_u.is_finite());
        assert!(routing.max_link_utilization(&net) < 1.0);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn forwarding_table_validates_ratios() {
        ForwardingTable::new(
            2,
            vec![NodeId::new(1)],
            vec![vec![vec![(EdgeId::new(0), 0.5)], vec![]]],
        );
    }

    #[test]
    fn beta_zero_pipeline_works() {
        // SPEF0 on Fig. 4 (used by Fig. 6/7): LP weights + NEM.
        let net = standard::fig4();
        let tm = standard::fig4_demands();
        let obj = Objective::min_hop(net.link_count());
        let cfg = SpefConfig {
            nem: NemConfig {
                convergence: ConvergenceCriteria::budget(5000),
                ..NemConfig::default()
            },
            ..SpefConfig::default()
        };
        let routing = build(&net, &tm, &obj, &cfg).unwrap();
        // β=0 saturates the bottleneck link exactly (Fig. 6: SPEF0 has
        // utilization 1.0 on link 1).
        let mlu = routing.max_link_utilization(&net);
        assert!(
            (mlu - 1.0).abs() < 0.05,
            "beta=0 bottleneck utilization {mlu}"
        );
    }
}
