use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spef_core::ForwardingTable;
use spef_graph::{EdgeId, NodeId};
use spef_topology::{Network, TrafficMatrix};

/// Errors returned by [`simulate`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A packet reached a router whose forwarding table has no entry for
    /// its destination.
    MissingRoute {
        /// The stuck router.
        node: NodeId,
        /// The packet's destination.
        destination: NodeId,
    },
    /// A configuration value was out of its documented domain, or the
    /// network/traffic/FIB sizes disagree.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingRoute { node, destination } => {
                write!(f, "no route at {node} toward {destination}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated seconds (the paper uses 400 s).
    pub duration: f64,
    /// Seconds at the start excluded from load/delay statistics.
    pub warmup: f64,
    /// Packet size in bits (default 12 000 = 1500 bytes).
    pub packet_size_bits: u64,
    /// Multiplier converting [`Network`] capacity units to bits/s
    /// (e.g. `1e6` when capacity `5` means 5 Mb/s, `1e9` for Gb/s).
    pub capacity_to_bps: f64,
    /// Multiplier converting [`TrafficMatrix`] demand units to bits/s.
    pub demand_to_bps: f64,
    /// Per-link propagation delay in seconds.
    pub propagation_delay: f64,
    /// Drop-tail buffer size per link, in packets.
    pub buffer_packets: usize,
    /// RNG seed (arrivals + forwarding choices).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration: 400.0,
            warmup: 0.0,
            packet_size_bits: 12_000,
            capacity_to_bps: 1e6,
            demand_to_bps: 1e6,
            propagation_delay: 1e-3,
            buffer_packets: 100,
            seed: 0xCAFE,
        }
    }
}

/// Aggregate simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Mean load per link in bits/s, averaged over
    /// `duration − warmup` (the y-axis of Fig. 11).
    pub mean_link_load_bps: Vec<f64>,
    /// Packets handed to the network by all sources.
    pub generated_packets: u64,
    /// Packets that reached their destination.
    pub delivered_packets: u64,
    /// Packets dropped at full buffers.
    pub dropped_packets: u64,
    /// Mean end-to-end delay of delivered packets, seconds.
    pub mean_delay: f64,
    /// 99th-percentile end-to-end delay, seconds (0 when nothing was
    /// delivered). Reported at the simulator's 1 µs delay resolution:
    /// the value is within 1 µs above the exact order statistic.
    pub p99_delay: f64,
    /// Number of links that carried any traffic.
    pub links_used: usize,
    /// High-water mark of simultaneously live packets (allocated packet
    /// slots). Bounded by buffer occupancy and in-flight packets, not by
    /// run length — the witness that packet storage is recycled.
    pub peak_packet_slots: u64,
}

impl SimReport {
    /// Mean link load expressed back in [`Network`] capacity units
    /// (bits/s divided by [`SimConfig::capacity_to_bps`]).
    pub fn mean_link_load_units(&self, config: &SimConfig) -> Vec<f64> {
        self.mean_link_load_bps
            .iter()
            .map(|l| l / config.capacity_to_bps)
            .collect()
    }
}

/// Time is kept in integer nanoseconds for exact heap ordering.
type Nanos = u64;

const NANOS_PER_SEC: f64 = 1e9;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A new packet of demand pair `pair` enters at its source.
    SourceArrival { pair: usize },
    /// A packet arrives at `node` (after a link traversal or at origin).
    NodeArrival { node: NodeId, packet: PacketId },
    /// Link `edge` finished serialising its head packet.
    LinkDone { edge: EdgeId },
}

type PacketId = usize;

#[derive(Debug, Clone, Copy)]
struct Packet {
    destination: NodeId,
    created_at: Nanos,
}

struct LinkState {
    queue: VecDeque<PacketId>,
    busy: bool,
    /// Bits whose transmission *completed* inside the measurement window.
    measured_bits: f64,
}

/// Packet storage with slot recycling: delivered/dropped packets return
/// their slot to a free list, so memory is bounded by the number of
/// simultaneously *live* packets instead of every packet ever generated.
struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<PacketId>,
}

impl PacketArena {
    fn new() -> Self {
        PacketArena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, packet: Packet) -> PacketId {
        match self.free.pop() {
            Some(id) => {
                self.slots[id] = packet;
                id
            }
            None => {
                self.slots.push(packet);
                self.slots.len() - 1
            }
        }
    }

    fn get(&self, id: PacketId) -> Packet {
        self.slots[id]
    }

    /// Returns `id`'s slot to the free list. The caller must ensure no
    /// event or queue still references it.
    fn release(&mut self, id: PacketId) {
        self.free.push(id);
    }

    fn peak_slots(&self) -> u64 {
        self.slots.len() as u64
    }
}

/// Resolution of the end-to-end delay histogram.
const DELAY_BUCKET_NS: u64 = 1_000;

/// Fixed-resolution (1 µs) delay accumulator.
///
/// Replaces the per-packet delay log: memory is bounded by the largest
/// observed delay (one counter per microsecond of range), not by the number
/// of delivered packets. The mean is exact — delays are summed at full
/// nanosecond precision in 128-bit — and quantiles are exact to the bucket
/// width: the reported p99 is the upper edge of the bucket holding the
/// order statistic, at most 1 µs above the exact value.
struct DelayHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
}

impl DelayHistogram {
    fn new() -> Self {
        DelayHistogram {
            buckets: Vec::new(),
            count: 0,
            sum_ns: 0,
        }
    }

    fn record(&mut self, delay_ns: Nanos) {
        let idx = (delay_ns / DELAY_BUCKET_NS) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += u128::from(delay_ns);
    }

    fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / NANOS_PER_SEC
        }
    }

    /// Upper edge of the bucket holding the same order statistic the sorted
    /// per-packet log used (`delays[min(len − 1, len·99/100)]`).
    fn p99_seconds(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (self.count - 1).min(self.count / 100 * 99 + self.count % 100 * 99 / 100);
        let mut cumulative = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return ((b as u64 + 1) * DELAY_BUCKET_NS) as f64 / NANOS_PER_SEC;
            }
        }
        unreachable!("rank {rank} below recorded count {}", self.count)
    }
}

/// Runs the simulation.
///
/// # Errors
///
/// * [`SimError::InvalidConfig`] for non-positive duration/rates, a
///   warmup ≥ duration, or size mismatches,
/// * [`SimError::MissingRoute`] if a packet strands at a router with no
///   forwarding entry (the FIB does not cover its destination from there).
pub fn simulate(
    network: &Network,
    traffic: &TrafficMatrix,
    fib: &ForwardingTable,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    validate(network, traffic, config)?;
    let g = network.graph();
    let m = g.edge_count();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let pairs: Vec<(NodeId, NodeId, f64)> = traffic.pairs().collect();
    // Poisson rates in packets/s.
    let rates: Vec<f64> = pairs
        .iter()
        .map(|&(_, _, d)| d * config.demand_to_bps / config.packet_size_bits as f64)
        .collect();
    if let Some(i) = rates.iter().position(|&r| r <= 0.0 || !r.is_finite()) {
        return Err(SimError::InvalidConfig(format!(
            "demand pair {i} has non-positive packet rate"
        )));
    }

    let duration_ns = (config.duration * NANOS_PER_SEC) as Nanos;
    let warmup_ns = (config.warmup * NANOS_PER_SEC) as Nanos;
    let tx_ns: Vec<Nanos> = network
        .capacities()
        .iter()
        .map(|c| {
            let bps = c * config.capacity_to_bps;
            ((config.packet_size_bits as f64 / bps) * NANOS_PER_SEC).ceil() as Nanos
        })
        .collect();
    let prop_ns = (config.propagation_delay * NANOS_PER_SEC) as Nanos;

    // Event queue ordered by (time, seq) for determinism.
    let mut heap: BinaryHeap<Reverse<(Nanos, u64, EventBox)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<_>, t: Nanos, seq: &mut u64, ev: Event| {
        heap.push(Reverse((t, *seq, EventBox(ev))));
        *seq += 1;
    };

    // Prime one arrival per pair.
    for (i, &rate) in rates.iter().enumerate() {
        let dt = exp_sample(&mut rng, rate);
        push(&mut heap, dt, &mut seq, Event::SourceArrival { pair: i });
    }

    let mut packets = PacketArena::new();
    let mut links: Vec<LinkState> = (0..m)
        .map(|_| LinkState {
            queue: VecDeque::new(),
            busy: false,
            measured_bits: 0.0,
        })
        .collect();

    let mut generated = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut delays = DelayHistogram::new();

    while let Some(Reverse((now, _, EventBox(event)))) = heap.pop() {
        if now > duration_ns {
            break;
        }
        match event {
            Event::SourceArrival { pair } => {
                let (src, dst, _) = pairs[pair];
                let id = packets.insert(Packet {
                    destination: dst,
                    created_at: now,
                });
                generated += 1;
                push(
                    &mut heap,
                    now,
                    &mut seq,
                    Event::NodeArrival {
                        node: src,
                        packet: id,
                    },
                );
                // Schedule the next arrival of this pair.
                let next = now + exp_sample(&mut rng, rates[pair]);
                if next <= duration_ns {
                    push(&mut heap, next, &mut seq, Event::SourceArrival { pair });
                }
            }
            Event::NodeArrival { node, packet } => {
                let info = packets.get(packet);
                let dst = info.destination;
                if node == dst {
                    delivered += 1;
                    if now >= warmup_ns {
                        delays.record(now - info.created_at);
                    }
                    packets.release(packet);
                    continue;
                }
                let hops = fib.next_hops(node, dst).filter(|h| !h.is_empty()).ok_or(
                    SimError::MissingRoute {
                        node,
                        destination: dst,
                    },
                )?;
                let edge = sample_next_hop(hops, &mut rng);
                let link = &mut links[edge.index()];
                if link.queue.len() >= config.buffer_packets {
                    dropped += 1;
                    packets.release(packet);
                    continue;
                }
                link.queue.push_back(packet);
                if !link.busy {
                    link.busy = true;
                    push(
                        &mut heap,
                        now + tx_ns[edge.index()],
                        &mut seq,
                        Event::LinkDone { edge },
                    );
                }
            }
            Event::LinkDone { edge } => {
                let link = &mut links[edge.index()];
                let packet = link
                    .queue
                    .pop_front()
                    .expect("LinkDone implies a queued packet");
                if now >= warmup_ns {
                    link.measured_bits += config.packet_size_bits as f64;
                }
                // Deliver to the link head after propagation.
                let head = g.target(edge);
                push(
                    &mut heap,
                    now + prop_ns,
                    &mut seq,
                    Event::NodeArrival { node: head, packet },
                );
                // Start the next packet, if any.
                if link.queue.is_empty() {
                    link.busy = false;
                } else {
                    push(
                        &mut heap,
                        now + tx_ns[edge.index()],
                        &mut seq,
                        Event::LinkDone { edge },
                    );
                }
            }
        }
    }

    let window = (duration_ns - warmup_ns) as f64 / NANOS_PER_SEC;
    let mean_link_load_bps: Vec<f64> = links.iter().map(|l| l.measured_bits / window).collect();
    let links_used = mean_link_load_bps.iter().filter(|&&l| l > 0.0).count();

    Ok(SimReport {
        mean_link_load_bps,
        generated_packets: generated,
        delivered_packets: delivered,
        dropped_packets: dropped,
        mean_delay: delays.mean_seconds(),
        p99_delay: delays.p99_seconds(),
        links_used,
        peak_packet_slots: packets.peak_slots(),
    })
}

fn validate(
    network: &Network,
    traffic: &TrafficMatrix,
    config: &SimConfig,
) -> Result<(), SimError> {
    if traffic.node_count() != network.node_count() {
        return Err(SimError::InvalidConfig(format!(
            "traffic matrix covers {} nodes, network has {}",
            traffic.node_count(),
            network.node_count()
        )));
    }
    if config.duration.is_nan() || config.duration <= 0.0 {
        return Err(SimError::InvalidConfig("duration must be positive".into()));
    }
    if config.warmup >= config.duration {
        return Err(SimError::InvalidConfig(
            "warmup must be shorter than duration".into(),
        ));
    }
    if config.packet_size_bits == 0 {
        return Err(SimError::InvalidConfig("packet size must be > 0".into()));
    }
    for &(v, name) in &[
        (config.capacity_to_bps, "capacity_to_bps"),
        (config.demand_to_bps, "demand_to_bps"),
    ] {
        if !v.is_finite() || v <= 0.0 {
            return Err(SimError::InvalidConfig(format!("{name} must be positive")));
        }
    }
    if config.propagation_delay < 0.0 {
        return Err(SimError::InvalidConfig(
            "propagation delay must be non-negative".into(),
        ));
    }
    if traffic.pair_count() == 0 {
        return Err(SimError::InvalidConfig("traffic matrix is empty".into()));
    }
    Ok(())
}

/// Exponential inter-arrival sample in nanoseconds.
fn exp_sample(rng: &mut StdRng, rate_per_sec: f64) -> Nanos {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let secs = -u.ln() / rate_per_sec;
    (secs * NANOS_PER_SEC).ceil().max(1.0) as Nanos
}

/// Samples a next hop from `(edge, probability)` entries.
fn sample_next_hop(hops: &[(EdgeId, f64)], rng: &mut StdRng) -> EdgeId {
    let x: f64 = rng.random_range(0.0..1.0);
    let mut acc = 0.0;
    for &(e, p) in hops {
        acc += p;
        if x < acc {
            return e;
        }
    }
    hops.last().expect("non-empty next-hop list").0
}

/// Wrapper giving `Event` the total order the heap needs (events at equal
/// `(time, seq)` never occur, so the comparison is arbitrary but total).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventBox(Event);

impl PartialOrd for EventBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventBox {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_core::{Objective, SpefConfig, SpefRouting};
    use spef_topology::standard;

    /// A 3-node chain with a single demand: loads are exactly predictable.
    fn chain_setup() -> (Network, TrafficMatrix, ForwardingTable) {
        let mut b = Network::builder("chain");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (1.0, 0.0));
        let d = b.add_node("c", (2.0, 0.0));
        b.add_duplex_link(a, c, 10.0);
        b.add_duplex_link(c, d, 10.0);
        let net = b.build().unwrap();
        let mut tm = TrafficMatrix::new(3);
        tm.set(0.into(), 2.into(), 2.0); // 2 Mb/s over 10 Mb/s links
        let obj = Objective::proportional(net.link_count());
        let routing = SpefRouting::build(&net, &tm, &obj, &SpefConfig::default()).unwrap();
        (net, tm, routing.forwarding_table().clone())
    }

    #[test]
    fn chain_load_matches_offered_rate() {
        let (net, tm, fib) = chain_setup();
        let cfg = SimConfig {
            duration: 30.0,
            warmup: 2.0,
            seed: 1,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, &fib, &cfg).unwrap();
        // Edges 0 (a→b) and 2 (b→c) carry ~2 Mb/s; reverse edges nothing.
        assert!(
            (report.mean_link_load_bps[0] - 2e6).abs() < 0.1e6,
            "a→b load {}",
            report.mean_link_load_bps[0]
        );
        assert!(
            (report.mean_link_load_bps[2] - 2e6).abs() < 0.1e6,
            "b→c load {}",
            report.mean_link_load_bps[2]
        );
        assert_eq!(report.mean_link_load_bps[1], 0.0);
        assert_eq!(report.dropped_packets, 0);
        assert!(report.delivered_packets > 4000);
        assert!(report.mean_delay > 0.0);
        assert!(report.p99_delay >= report.mean_delay);
        assert_eq!(report.links_used, 2);
    }

    #[test]
    fn load_units_use_capacity_conversion() {
        // Regression: `mean_link_load_units` documents *capacity* units but
        // divided by `demand_to_bps`. With asymmetric conversions the two
        // answers differ by 2×.
        let (net, tm, fib) = chain_setup();
        let cfg = SimConfig {
            duration: 30.0,
            warmup: 2.0,
            capacity_to_bps: 2e6, // capacity 10 units = 20 Mb/s links
            demand_to_bps: 1e6,   // demand 2 units = 2 Mb/s offered
            seed: 9,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, &fib, &cfg).unwrap();
        // ~2 Mb/s measured on the first hop = 1.0 capacity units (2e6/2e6);
        // dividing by demand_to_bps would report ~2.0.
        let units = report.mean_link_load_units(&cfg);
        assert!(
            (units[0] - 1.0).abs() < 0.1,
            "first hop in capacity units: {}",
            units[0]
        );
        assert!(
            (units[0] - report.mean_link_load_bps[0] / cfg.capacity_to_bps).abs() < 1e-12,
            "units must be bps over capacity_to_bps"
        );
    }

    #[test]
    fn packet_slots_bounded_by_live_packets_not_duration() {
        // Memory regression: packet slots are recycled, so a 10×-longer run
        // must not use ~10× the slots (the old Vec grew per generated
        // packet, i.e. linearly in duration).
        let (net, tm, fib) = chain_setup();
        let run = |duration: f64| {
            let cfg = SimConfig {
                duration,
                seed: 11,
                ..SimConfig::default()
            };
            simulate(&net, &tm, &fib, &cfg).unwrap()
        };
        let short = run(4.0);
        let long = run(40.0);
        assert!(long.generated_packets > 8 * short.generated_packets);
        assert!(
            long.peak_packet_slots < long.generated_packets / 20,
            "slots {} vs generated {}: packet storage is not being recycled",
            long.peak_packet_slots,
            long.generated_packets
        );
        // Peak live packets is a stationary property of the load, not of
        // the horizon; allow generous slack for the longer run's extremes.
        assert!(
            long.peak_packet_slots <= 4 * short.peak_packet_slots.max(4),
            "peak slots grew with duration: {} -> {}",
            short.peak_packet_slots,
            long.peak_packet_slots
        );
    }

    #[test]
    fn delay_histogram_mean_exact_and_p99_within_1us() {
        // Pin the histogram against the exact sorted-vector reference on a
        // pseudo-random sample with a heavy tail.
        let mut hist = DelayHistogram::new();
        let mut reference: Vec<Nanos> = Vec::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..10_000 {
            // xorshift* samples, mixed scales from sub-µs to ~50 ms.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545F4914F6CDD1D);
            let d = match r % 10 {
                0..=5 => r % 2_000_000,           // 0–2 ms bulk
                6..=8 => r % 10_000_000,          // 0–10 ms middle
                _ => 10_000_000 + r % 40_000_000, // tail to 50 ms
            };
            hist.record(d);
            reference.push(d);
        }
        reference.sort_unstable();
        let exact_mean = reference.iter().map(|&d| d as f64).sum::<f64>() / reference.len() as f64;
        assert!(
            (hist.mean_seconds() * NANOS_PER_SEC - exact_mean).abs() < 1e-3,
            "mean must be exact: {} vs {}",
            hist.mean_seconds() * NANOS_PER_SEC,
            exact_mean
        );
        let rank = (reference.len() - 1).min(reference.len() * 99 / 100);
        let exact_p99 = reference[rank] as f64;
        let got = hist.p99_seconds() * NANOS_PER_SEC;
        assert!(
            got >= exact_p99 && got <= exact_p99 + DELAY_BUCKET_NS as f64,
            "p99 {got} not within 1 µs above exact {exact_p99}"
        );
    }

    #[test]
    fn delay_histogram_empty_and_tiny_counts() {
        let hist = DelayHistogram::new();
        assert_eq!(hist.mean_seconds(), 0.0);
        assert_eq!(hist.p99_seconds(), 0.0);

        let mut hist = DelayHistogram::new();
        hist.record(1_500);
        assert!((hist.mean_seconds() - 1_500e-9).abs() < 1e-15);
        // Single sample: p99 is the sample's bucket upper edge.
        assert!((hist.p99_seconds() - 2_000e-9).abs() < 1e-15);
        assert!(hist.p99_seconds() >= hist.mean_seconds());
    }

    #[test]
    fn deterministic_in_seed() {
        let (net, tm, fib) = chain_setup();
        let cfg = SimConfig {
            duration: 5.0,
            seed: 7,
            ..SimConfig::default()
        };
        let a = simulate(&net, &tm, &fib, &cfg).unwrap();
        let b = simulate(&net, &tm, &fib, &cfg).unwrap();
        assert_eq!(a, b);
        let c = simulate(
            &net,
            &tm,
            &fib,
            &SimConfig {
                seed: 8,
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_ne!(a.delivered_packets, c.delivered_packets);
    }

    #[test]
    fn overload_drops_packets() {
        // Offer 15 Mb/s over a 10 Mb/s chain: the first link must drop.
        let mut b = Network::builder("hot");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (1.0, 0.0));
        b.add_duplex_link(a, c, 10.0);
        let net = b.build().unwrap();
        let mut tm = TrafficMatrix::new(2);
        tm.set(0.into(), 1.into(), 15.0);
        let obj = Objective::proportional(net.link_count());
        // SPEF would call this infeasible; wire the FIB manually.
        let fib = ForwardingTable::new(
            2,
            vec![NodeId::new(1)],
            vec![vec![vec![(EdgeId::new(0), 1.0)], vec![]]],
        );
        let cfg = SimConfig {
            duration: 10.0,
            seed: 2,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, &fib, &cfg).unwrap();
        assert!(report.dropped_packets > 0);
        // Delivered rate is capped at ~10 Mb/s worth of packets.
        assert!(report.mean_link_load_bps[0] <= 10.1e6);
        assert!(report.mean_link_load_bps[0] >= 9.5e6);
        let _ = obj;
    }

    #[test]
    fn probabilistic_split_approximates_ratios() {
        // Diamond with a 30/70 FIB split: measured loads follow.
        let mut b = Network::builder("dia");
        let s = b.add_node("s", (0.0, 0.0));
        let x = b.add_node("x", (1.0, 1.0));
        let y = b.add_node("y", (1.0, -1.0));
        let t = b.add_node("t", (2.0, 0.0));
        b.add_link(s, x, 10.0); // e0
        b.add_link(s, y, 10.0); // e1
        b.add_link(x, t, 10.0); // e2
        b.add_link(y, t, 10.0); // e3
        b.add_link(t, s, 10.0); // e4 return for connectivity
        let net = b.build().unwrap();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 4.0);
        let fib = ForwardingTable::new(
            4,
            vec![NodeId::new(3)],
            vec![vec![
                vec![(EdgeId::new(0), 0.3), (EdgeId::new(1), 0.7)],
                vec![(EdgeId::new(2), 1.0)],
                vec![(EdgeId::new(3), 1.0)],
                vec![],
            ]],
        );
        let cfg = SimConfig {
            duration: 60.0,
            warmup: 5.0,
            seed: 3,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, &fib, &cfg).unwrap();
        let total = report.mean_link_load_bps[0] + report.mean_link_load_bps[1];
        let share = report.mean_link_load_bps[0] / total;
        assert!((share - 0.3).abs() < 0.03, "measured share {share}");
    }

    #[test]
    fn missing_route_detected() {
        let (net, tm, _) = chain_setup();
        // FIB without an entry at the middle hop.
        let fib = ForwardingTable::new(
            3,
            vec![NodeId::new(2)],
            vec![vec![vec![(EdgeId::new(0), 1.0)], vec![], vec![]]],
        );
        let cfg = SimConfig {
            duration: 1.0,
            seed: 4,
            ..SimConfig::default()
        };
        assert!(matches!(
            simulate(&net, &tm, &fib, &cfg),
            Err(SimError::MissingRoute { .. })
        ));
    }

    #[test]
    fn invalid_configs_rejected() {
        let (net, tm, fib) = chain_setup();
        let bad = |f: fn(&mut SimConfig)| {
            let mut c = SimConfig::default();
            f(&mut c);
            simulate(&net, &tm, &fib, &c)
        };
        assert!(bad(|c| c.duration = 0.0).is_err());
        assert!(bad(|c| c.warmup = 1000.0).is_err());
        assert!(bad(|c| c.packet_size_bits = 0).is_err());
        assert!(bad(|c| c.capacity_to_bps = -1.0).is_err());
        assert!(bad(|c| c.propagation_delay = -1.0).is_err());
        let empty = TrafficMatrix::new(3);
        assert!(simulate(&net, &empty, &fib, &SimConfig::default()).is_err());
    }

    #[test]
    fn spef_fig4_simulation_stays_under_capacity() {
        // End-to-end: SPEF FIB on Fig. 4 at 4 Mb/s demands over 5 Mb/s
        // links keeps every measured load under capacity (Fig. 11(a)).
        let net = standard::fig4();
        let tm = standard::table4_simple_demands();
        let obj = Objective::proportional(net.link_count());
        let routing = SpefRouting::build(&net, &tm, &obj, &SpefConfig::default()).unwrap();
        let cfg = SimConfig {
            duration: 20.0,
            warmup: 2.0,
            seed: 5,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, routing.forwarding_table(), &cfg).unwrap();
        for (e, &load) in report.mean_link_load_bps.iter().enumerate() {
            assert!(load <= 5.05e6, "link {e} at {load} bps");
        }
        assert!(report.delivered_packets > 0);
        // Loss should be negligible at SPEF's operating point.
        assert!(report.dropped_packets * 100 < report.generated_packets);
    }
}
