use std::collections::VecDeque;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spef_core::{FibSet, ForwardingTable};
use spef_graph::{EdgeId, NodeId};
use spef_topology::{Network, TrafficMatrix};

use crate::sched::{EventQueue, Nanos, SchedulerKind, SchedulerStats};

/// Errors returned by [`simulate`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A packet reached a router whose forwarding table has no entry for
    /// its destination.
    MissingRoute {
        /// The stuck router.
        node: NodeId,
        /// The packet's destination.
        destination: NodeId,
    },
    /// A configuration value was out of its documented domain, or the
    /// network/traffic/FIB sizes disagree.
    InvalidConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingRoute { node, destination } => {
                write!(f, "no route at {node} toward {destination}")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulated seconds (the paper uses 400 s).
    pub duration: f64,
    /// Seconds at the start excluded from load/delay statistics.
    pub warmup: f64,
    /// Packet size in bits (default 12 000 = 1500 bytes).
    pub packet_size_bits: u64,
    /// Multiplier converting [`Network`] capacity units to bits/s
    /// (e.g. `1e6` when capacity `5` means 5 Mb/s, `1e9` for Gb/s).
    pub capacity_to_bps: f64,
    /// Multiplier converting [`TrafficMatrix`] demand units to bits/s.
    pub demand_to_bps: f64,
    /// Per-link propagation delay in seconds.
    pub propagation_delay: f64,
    /// Drop-tail buffer size per link, in packets.
    pub buffer_packets: usize,
    /// RNG seed (arrivals + forwarding choices).
    pub seed: u64,
    /// Event scheduler. [`SchedulerKind::Calendar`] (the default) and
    /// [`SchedulerKind::BinaryHeap`] pop events in the identical
    /// `(time, seq)` order, so the choice cannot change any [`SimReport`]
    /// field — only the wall-clock cost.
    pub scheduler: SchedulerKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration: 400.0,
            warmup: 0.0,
            packet_size_bits: 12_000,
            capacity_to_bps: 1e6,
            demand_to_bps: 1e6,
            propagation_delay: 1e-3,
            buffer_packets: 100,
            seed: 0xCAFE,
            scheduler: SchedulerKind::Calendar,
        }
    }
}

/// Aggregate simulation results.
///
/// Every field is a pure function of the inputs and the seed —
/// bit-identical across runs, machines, and scheduler kinds. Scheduler
/// internals (bucket counts, occupancy) are deliberately kept out of this
/// struct; read them from [`SimWorkspace::scheduler_stats`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Mean load per link in bits/s, averaged over
    /// `duration − warmup` (the y-axis of Fig. 11). Derived from an exact
    /// integer bit count per link, converted to float once.
    pub mean_link_load_bps: Vec<f64>,
    /// Packets handed to the network by all sources.
    pub generated_packets: u64,
    /// Packets that reached their destination.
    pub delivered_packets: u64,
    /// Packets dropped at full buffers.
    pub dropped_packets: u64,
    /// Mean end-to-end delay of delivered packets, seconds.
    pub mean_delay: f64,
    /// 99th-percentile end-to-end delay, seconds (0 when nothing was
    /// delivered). Reported at the simulator's 1 µs delay resolution:
    /// the value is within 1 µs above the exact order statistic.
    pub p99_delay: f64,
    /// Number of links that carried any traffic.
    pub links_used: usize,
    /// High-water mark of simultaneously live packets (allocated packet
    /// slots). Bounded by buffer occupancy and in-flight packets, not by
    /// run length — the witness that packet storage is recycled.
    pub peak_packet_slots: u64,
}

impl SimReport {
    /// Mean link load expressed back in [`Network`] capacity units
    /// (bits/s divided by [`SimConfig::capacity_to_bps`]).
    pub fn mean_link_load_units(&self, config: &SimConfig) -> Vec<f64> {
        self.mean_link_load_bps
            .iter()
            .map(|l| l / config.capacity_to_bps)
            .collect()
    }
}

const NANOS_PER_SEC: f64 = 1e9;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A new packet of demand pair `pair` enters at its source.
    SourceArrival { pair: usize },
    /// A packet arrives at `node` (after a link traversal or at origin).
    NodeArrival { node: NodeId, packet: PacketId },
    /// Link `edge` finished serialising its head packet.
    LinkDone { edge: EdgeId },
}

type PacketId = u32;

/// Sentinel destination slot for packets whose destination the FIB does
/// not cover (detected the first time such a packet must be forwarded,
/// matching the legacy per-hop lookup failure).
const NO_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Packet {
    destination: NodeId,
    /// The destination's dense [`FibSet`] slot, resolved once per demand
    /// pair at setup — per-hop forwarding never touches the dest-index
    /// table again.
    dest_slot: u32,
    created_at: Nanos,
}

struct LinkState {
    queue: VecDeque<PacketId>,
    busy: bool,
    /// Bits whose transmission *completed* inside the measurement window.
    /// Packet sizes are integral bits, so the accumulator is exact — the
    /// float conversion happens once, in the report.
    measured_bits: u64,
}

impl LinkState {
    fn new() -> LinkState {
        LinkState {
            queue: VecDeque::new(),
            busy: false,
            measured_bits: 0,
        }
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.busy = false;
        self.measured_bits = 0;
    }
}

/// Slot storage with free-list recycling, shared by packets and events:
/// released ids are reused by later inserts, so memory is bounded by the
/// peak number of simultaneously *live* values instead of every value
/// ever created over the run.
struct Arena<T> {
    slots: Vec<T>,
    free: Vec<u32>,
}

impl<T: Copy> Arena<T> {
    fn new() -> Arena<T> {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.slots.clear();
        self.free.clear();
    }

    fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = value;
                id
            }
            None => {
                self.slots.push(value);
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn get(&self, id: u32) -> T {
        self.slots[id as usize]
    }

    /// Returns `id`'s slot to the free list. The caller must ensure no
    /// event or queue still references it.
    fn release(&mut self, id: u32) {
        self.free.push(id);
    }

    /// Reads and releases `id`'s slot (for values consumed exactly once,
    /// like scheduled events).
    fn take(&mut self, id: u32) -> T {
        let value = self.get(id);
        self.release(id);
        value
    }

    /// High-water mark of allocated slots.
    fn peak_slots(&self) -> usize {
        self.slots.len()
    }
}

/// Packet storage: the per-link queues and in-flight events hold bare
/// [`PacketId`]s into this arena.
type PacketArena = Arena<Packet>;

/// Event payload storage: the scheduler orders bare `(time, seq,
/// EventId)` entries while the payloads live inline here.
type EventArena = Arena<Event>;

/// Resolution of the end-to-end delay histogram.
const DELAY_BUCKET_NS: u64 = 1_000;

/// Fixed-resolution (1 µs) delay accumulator.
///
/// Replaces the per-packet delay log: memory is bounded by the largest
/// observed delay (one counter per microsecond of range), not by the number
/// of delivered packets. The mean is exact — delays are summed at full
/// nanosecond precision in 128-bit — and quantiles are exact to the bucket
/// width: the reported p99 is the upper edge of the bucket holding the
/// order statistic, at most 1 µs above the exact value.
struct DelayHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
}

impl DelayHistogram {
    fn new() -> Self {
        DelayHistogram {
            buckets: Vec::new(),
            count: 0,
            sum_ns: 0,
        }
    }

    fn reset(&mut self) {
        self.buckets.clear();
        self.count = 0;
        self.sum_ns = 0;
    }

    fn record(&mut self, delay_ns: Nanos) {
        let idx = (delay_ns / DELAY_BUCKET_NS) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += u128::from(delay_ns);
    }

    fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / NANOS_PER_SEC
        }
    }

    /// Upper edge of the bucket holding the same order statistic the sorted
    /// per-packet log used (`delays[min(len − 1, len·99/100)]`).
    fn p99_seconds(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (self.count - 1).min(self.count / 100 * 99 + self.count % 100 * 99 / 100);
        let mut cumulative = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return ((b as u64 + 1) * DELAY_BUCKET_NS) as f64 / NANOS_PER_SEC;
            }
        }
        unreachable!("rank {rank} below recorded count {}", self.count)
    }
}

/// Reusable simulation state: the event queue (calendar buckets or heap),
/// event/packet arenas, per-link state, and the delay histogram. Repeated
/// [`simulate_with`] calls on a warm workspace are allocation-free in
/// steady state — every structure is cleared, not dropped, between runs —
/// which is what the fig11 SPEF/PEFT pair and the `sim` sweep lanes lean
/// on.
pub struct SimWorkspace {
    queue: EventQueue,
    events: EventArena,
    packets: PacketArena,
    links: Vec<LinkState>,
    pairs: Vec<(NodeId, NodeId, f64)>,
    /// Per-pair destination slot in the FIB ([`NO_SLOT`] when uncovered),
    /// resolved once per run and stamped into each generated packet.
    pair_slots: Vec<u32>,
    rates: Vec<f64>,
    tx_ns: Vec<Nanos>,
    delays: DelayHistogram,
    stats: SchedulerStats,
}

impl SimWorkspace {
    /// Creates an empty workspace (capacities grow on first use).
    pub fn new() -> SimWorkspace {
        SimWorkspace {
            queue: EventQueue::new(),
            events: EventArena::new(),
            packets: PacketArena::new(),
            links: Vec::new(),
            pairs: Vec::new(),
            pair_slots: Vec::new(),
            rates: Vec::new(),
            tx_ns: Vec::new(),
            delays: DelayHistogram::new(),
            stats: SchedulerStats::default(),
        }
    }

    /// Scheduler counters of the most recent [`simulate_with`] run on this
    /// workspace: calendar geometry, peak bucket occupancy, overflow
    /// high-water mark, event-slot high-water mark. Observational only —
    /// none of it feeds back into [`SimReport`].
    pub fn scheduler_stats(&self) -> &SchedulerStats {
        &self.stats
    }
}

impl Default for SimWorkspace {
    fn default() -> Self {
        SimWorkspace::new()
    }
}

/// Runs the simulation on a fresh workspace.
///
/// Callers running many simulations (sweeps, protocol comparisons) should
/// allocate one [`SimWorkspace`] and use [`simulate_with`] instead.
///
/// # Errors
///
/// * [`SimError::InvalidConfig`] for non-positive duration/rates, a
///   warmup ≥ duration, or size mismatches,
/// * [`SimError::MissingRoute`] if a packet strands at a router with no
///   forwarding entry (the FIB does not cover its destination from there).
pub fn simulate(
    network: &Network,
    traffic: &TrafficMatrix,
    fib: &ForwardingTable,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    simulate_with(network, traffic, fib, config, &mut SimWorkspace::new())
}

/// Runs the simulation, reusing `ws` across calls (allocation-free in
/// steady state). Results are identical to [`simulate`]'s — the workspace
/// carries no state between runs besides buffer capacity.
///
/// # Errors
///
/// Same contract as [`simulate`].
pub fn simulate_with(
    network: &Network,
    traffic: &TrafficMatrix,
    fib: &ForwardingTable,
    config: &SimConfig,
    ws: &mut SimWorkspace,
) -> Result<SimReport, SimError> {
    validate(network, traffic, config)?;
    let g = network.graph();
    let m = g.edge_count();
    // The flat forwarding plane: slot-based row lookups, cum-prob sampling.
    let fib: &FibSet = fib.fib();

    let mut rng = StdRng::seed_from_u64(config.seed);
    ws.pairs.clear();
    ws.pairs.extend(traffic.pairs());
    // Resolve each pair's destination slot once; per-hop forwarding below
    // goes straight from the packet's slot to its CSR row.
    ws.pair_slots.clear();
    ws.pair_slots.extend(
        ws.pairs
            .iter()
            .map(|&(_, dst, _)| fib.dest_slot(dst).unwrap_or(NO_SLOT)),
    );
    // Poisson rates in packets/s.
    ws.rates.clear();
    ws.rates.extend(
        ws.pairs
            .iter()
            .map(|&(_, _, d)| d * config.demand_to_bps / config.packet_size_bits as f64),
    );
    if let Some(i) = ws.rates.iter().position(|&r| r <= 0.0 || !r.is_finite()) {
        return Err(SimError::InvalidConfig(format!(
            "demand pair {i} has non-positive packet rate"
        )));
    }

    let duration_ns = (config.duration * NANOS_PER_SEC) as Nanos;
    let warmup_ns = (config.warmup * NANOS_PER_SEC) as Nanos;
    ws.tx_ns.clear();
    ws.tx_ns.extend(network.capacities().iter().map(|c| {
        let bps = c * config.capacity_to_bps;
        ((config.packet_size_bits as f64 / bps) * NANOS_PER_SEC).ceil() as Nanos
    }));
    let prop_ns = (config.propagation_delay * NANOS_PER_SEC) as Nanos;

    // Initial calendar geometry hint: the mean spacing between events is
    // bounded below by the aggregate packet rate times a few events per
    // hop; the queue retunes itself if the estimate is off.
    let total_rate: f64 = ws.rates.iter().sum();
    let width_hint = (NANOS_PER_SEC / (4.0 * total_rate)).ceil().max(1.0) as Nanos;
    ws.queue
        .reset(config.scheduler, width_hint, ws.pairs.len() + m);
    ws.events.reset();
    ws.packets.reset();
    for link in ws.links.iter_mut() {
        link.reset();
    }
    if ws.links.len() < m {
        ws.links.resize_with(m, LinkState::new);
    }
    ws.delays.reset();

    let SimWorkspace {
        queue,
        events,
        packets,
        links,
        pairs,
        pair_slots,
        rates,
        tx_ns,
        delays,
        ..
    } = ws;

    // Prime one arrival per pair.
    for (i, &rate) in rates.iter().enumerate() {
        let dt = exp_sample(&mut rng, rate);
        schedule(queue, events, dt, Event::SourceArrival { pair: i });
    }

    let mut generated = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;

    while let Some((now, _, eid)) = queue.pop() {
        let event = events.take(eid);
        if now > duration_ns {
            break;
        }
        match event {
            Event::SourceArrival { pair } => {
                let (src, dst, _) = pairs[pair];
                let id = packets.insert(Packet {
                    destination: dst,
                    dest_slot: pair_slots[pair],
                    created_at: now,
                });
                generated += 1;
                schedule(
                    queue,
                    events,
                    now,
                    Event::NodeArrival {
                        node: src,
                        packet: id,
                    },
                );
                // Schedule the next arrival of this pair.
                let next = now + exp_sample(&mut rng, rates[pair]);
                if next <= duration_ns {
                    schedule(queue, events, next, Event::SourceArrival { pair });
                }
            }
            Event::NodeArrival { node, packet } => {
                let info = packets.get(packet);
                let dst = info.destination;
                if node == dst {
                    delivered += 1;
                    if now >= warmup_ns {
                        delays.record(now - info.created_at);
                    }
                    packets.release(packet);
                    continue;
                }
                // Two index ops into the CSR arena; an uncovered
                // destination or an empty row strands the packet exactly
                // like the legacy per-hop table miss.
                let row = (info.dest_slot != NO_SLOT)
                    .then(|| fib.row(info.dest_slot, node))
                    .filter(|r| !r.is_empty())
                    .ok_or(SimError::MissingRoute {
                        node,
                        destination: dst,
                    })?;
                // Same uniform draw as the legacy accumulation walk; the
                // precomputed cumulative probabilities make the selection a
                // binary search with an identical result.
                let x: f64 = rng.random_range(0.0..1.0);
                let edge = row.select(x);
                let link = &mut links[edge.index()];
                if link.queue.len() >= config.buffer_packets {
                    dropped += 1;
                    packets.release(packet);
                    continue;
                }
                link.queue.push_back(packet);
                if !link.busy {
                    link.busy = true;
                    schedule(
                        queue,
                        events,
                        now + tx_ns[edge.index()],
                        Event::LinkDone { edge },
                    );
                }
            }
            Event::LinkDone { edge } => {
                let link = &mut links[edge.index()];
                let packet = link
                    .queue
                    .pop_front()
                    .expect("LinkDone implies a queued packet");
                if now >= warmup_ns {
                    link.measured_bits += config.packet_size_bits;
                }
                // Deliver to the link head after propagation.
                let head = g.target(edge);
                schedule(
                    queue,
                    events,
                    now + prop_ns,
                    Event::NodeArrival { node: head, packet },
                );
                // Start the next packet, if any.
                if !link.queue.is_empty() {
                    schedule(
                        queue,
                        events,
                        now + tx_ns[edge.index()],
                        Event::LinkDone { edge },
                    );
                } else {
                    link.busy = false;
                }
            }
        }
    }

    ws.stats = ws.queue.stats();
    ws.stats.peak_event_slots = ws.events.peak_slots();

    let window = (duration_ns - warmup_ns) as f64 / NANOS_PER_SEC;
    let mean_link_load_bps: Vec<f64> = ws.links[..m]
        .iter()
        .map(|l| l.measured_bits as f64 / window)
        .collect();
    let links_used = mean_link_load_bps.iter().filter(|&&l| l > 0.0).count();

    Ok(SimReport {
        mean_link_load_bps,
        generated_packets: generated,
        delivered_packets: delivered,
        dropped_packets: dropped,
        mean_delay: ws.delays.mean_seconds(),
        p99_delay: ws.delays.p99_seconds(),
        links_used,
        peak_packet_slots: ws.packets.peak_slots() as u64,
    })
}

/// Inserts the payload into the arena and queues its `(time, seq, id)`
/// entry.
#[inline]
fn schedule(queue: &mut EventQueue, events: &mut EventArena, t: Nanos, event: Event) {
    let id = events.insert(event);
    queue.push(t, id);
}

fn validate(
    network: &Network,
    traffic: &TrafficMatrix,
    config: &SimConfig,
) -> Result<(), SimError> {
    if traffic.node_count() != network.node_count() {
        return Err(SimError::InvalidConfig(format!(
            "traffic matrix covers {} nodes, network has {}",
            traffic.node_count(),
            network.node_count()
        )));
    }
    if config.duration.is_nan() || config.duration <= 0.0 {
        return Err(SimError::InvalidConfig("duration must be positive".into()));
    }
    if config.warmup >= config.duration {
        return Err(SimError::InvalidConfig(
            "warmup must be shorter than duration".into(),
        ));
    }
    if config.packet_size_bits == 0 {
        return Err(SimError::InvalidConfig("packet size must be > 0".into()));
    }
    for &(v, name) in &[
        (config.capacity_to_bps, "capacity_to_bps"),
        (config.demand_to_bps, "demand_to_bps"),
    ] {
        if !v.is_finite() || v <= 0.0 {
            return Err(SimError::InvalidConfig(format!("{name} must be positive")));
        }
    }
    if config.propagation_delay < 0.0 {
        return Err(SimError::InvalidConfig(
            "propagation delay must be non-negative".into(),
        ));
    }
    if traffic.pair_count() == 0 {
        return Err(SimError::InvalidConfig("traffic matrix is empty".into()));
    }
    Ok(())
}

/// Exponential inter-arrival sample in nanoseconds.
fn exp_sample(rng: &mut StdRng, rate_per_sec: f64) -> Nanos {
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let secs = -u.ln() / rate_per_sec;
    (secs * NANOS_PER_SEC).ceil().max(1.0) as Nanos
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_core::{Objective, SpefConfig, TeInstance, TeSolver};
    use spef_topology::standard;

    /// A 3-node chain with a single demand: loads are exactly predictable.
    fn chain_setup() -> (Network, TrafficMatrix, ForwardingTable) {
        let mut b = Network::builder("chain");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (1.0, 0.0));
        let d = b.add_node("c", (2.0, 0.0));
        b.add_duplex_link(a, c, 10.0);
        b.add_duplex_link(c, d, 10.0);
        let net = b.build().unwrap();
        let mut tm = TrafficMatrix::new(3);
        tm.set(0.into(), 2.into(), 2.0); // 2 Mb/s over 10 Mb/s links
        let obj = Objective::proportional(net.link_count());
        let routing = SpefConfig::default()
            .solve(TeInstance::new(&net, &tm, &obj))
            .unwrap();
        (net, tm, routing.forwarding_table().clone())
    }

    #[test]
    fn chain_load_matches_offered_rate() {
        let (net, tm, fib) = chain_setup();
        let cfg = SimConfig {
            duration: 30.0,
            warmup: 2.0,
            seed: 1,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, &fib, &cfg).unwrap();
        // Edges 0 (a→b) and 2 (b→c) carry ~2 Mb/s; reverse edges nothing.
        assert!(
            (report.mean_link_load_bps[0] - 2e6).abs() < 0.1e6,
            "a→b load {}",
            report.mean_link_load_bps[0]
        );
        assert!(
            (report.mean_link_load_bps[2] - 2e6).abs() < 0.1e6,
            "b→c load {}",
            report.mean_link_load_bps[2]
        );
        assert_eq!(report.mean_link_load_bps[1], 0.0);
        assert_eq!(report.dropped_packets, 0);
        assert!(report.delivered_packets > 4000);
        assert!(report.mean_delay > 0.0);
        assert!(report.p99_delay >= report.mean_delay);
        assert_eq!(report.links_used, 2);
    }

    #[test]
    fn heap_and_calendar_reports_are_bit_identical() {
        // The schedulers must agree on every field, bit for bit, including
        // under drops (overload) and multi-path splitting. The proptest
        // suite in tests/scheduler_equivalence.rs widens this to random
        // topologies; this is the fast in-crate smoke version.
        let (net, tm, fib) = chain_setup();
        for seed in [1u64, 7, 42] {
            let base = SimConfig {
                duration: 20.0,
                warmup: 1.0,
                seed,
                ..SimConfig::default()
            };
            let heap = simulate(
                &net,
                &tm,
                &fib,
                &SimConfig {
                    scheduler: SchedulerKind::BinaryHeap,
                    ..base.clone()
                },
            )
            .unwrap();
            let calendar = simulate(
                &net,
                &tm,
                &fib,
                &SimConfig {
                    scheduler: SchedulerKind::Calendar,
                    ..base
                },
            )
            .unwrap();
            assert_eq!(heap, calendar, "seed {seed}");
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs_and_reports_stats() {
        let (net, tm, fib) = chain_setup();
        let cfg = SimConfig {
            duration: 10.0,
            seed: 5,
            ..SimConfig::default()
        };
        let fresh = simulate(&net, &tm, &fib, &cfg).unwrap();
        let mut ws = SimWorkspace::new();
        for _ in 0..3 {
            let warm = simulate_with(&net, &tm, &fib, &cfg, &mut ws).unwrap();
            assert_eq!(warm, fresh, "workspace reuse must not change results");
        }
        let stats = ws.scheduler_stats();
        assert_eq!(stats.kind, SchedulerKind::Calendar);
        assert!(stats.bucket_count > 0);
        assert!(stats.bucket_width_ns > 0);
        assert!(stats.max_bucket_occupancy > 0);
        assert!(stats.peak_events > 0);
        assert!(stats.peak_event_slots >= stats.peak_events);

        // The heap path reports its own (bucket-free) stats.
        let heap_cfg = SimConfig {
            scheduler: SchedulerKind::BinaryHeap,
            ..cfg
        };
        let warm = simulate_with(&net, &tm, &fib, &heap_cfg, &mut ws).unwrap();
        assert_eq!(warm, fresh);
        assert_eq!(ws.scheduler_stats().kind, SchedulerKind::BinaryHeap);
        assert_eq!(ws.scheduler_stats().bucket_count, 0);
        assert!(ws.scheduler_stats().peak_events > 0);
    }

    #[test]
    fn long_run_link_bits_are_exact_integers() {
        // The per-link accumulator is integral: over any horizon the
        // reported mean load × window must reconstruct an exact multiple
        // of the packet size (the old f64 accumulator could drift once
        // sums grew large; u64 cannot). 500 simulated seconds ≈ 10^5
        // packets over the chain.
        let (net, tm, fib) = chain_setup();
        let cfg = SimConfig {
            duration: 500.0,
            warmup: 0.0,
            seed: 13,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, &fib, &cfg).unwrap();
        let window = cfg.duration;
        for (e, &load) in report.mean_link_load_bps.iter().enumerate() {
            let bits = load * window;
            let packets = bits / cfg.packet_size_bits as f64;
            assert!(
                (packets - packets.round()).abs() < 1e-6,
                "link {e}: {bits} bits is not an integral packet count"
            );
        }
        // The busy links saw ~83k packets each; drift-free accumulation
        // keeps the totals consistent with the delivery counter.
        let total_bits: f64 = report.mean_link_load_bps.iter().sum::<f64>() * window;
        let hops = total_bits / cfg.packet_size_bits as f64;
        assert!(
            hops >= 2.0 * report.delivered_packets as f64,
            "chain delivery crosses two links: {hops} hop-transmissions vs {} delivered",
            report.delivered_packets
        );
    }

    #[test]
    fn load_units_use_capacity_conversion() {
        // Regression: `mean_link_load_units` documents *capacity* units but
        // divided by `demand_to_bps`. With asymmetric conversions the two
        // answers differ by 2×.
        let (net, tm, fib) = chain_setup();
        let cfg = SimConfig {
            duration: 30.0,
            warmup: 2.0,
            capacity_to_bps: 2e6, // capacity 10 units = 20 Mb/s links
            demand_to_bps: 1e6,   // demand 2 units = 2 Mb/s offered
            seed: 9,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, &fib, &cfg).unwrap();
        // ~2 Mb/s measured on the first hop = 1.0 capacity units (2e6/2e6);
        // dividing by demand_to_bps would report ~2.0.
        let units = report.mean_link_load_units(&cfg);
        assert!(
            (units[0] - 1.0).abs() < 0.1,
            "first hop in capacity units: {}",
            units[0]
        );
        assert!(
            (units[0] - report.mean_link_load_bps[0] / cfg.capacity_to_bps).abs() < 1e-12,
            "units must be bps over capacity_to_bps"
        );
    }

    #[test]
    fn packet_slots_bounded_by_live_packets_not_duration() {
        // Memory regression: packet slots are recycled, so a 10×-longer run
        // must not use ~10× the slots (the old Vec grew per generated
        // packet, i.e. linearly in duration).
        let (net, tm, fib) = chain_setup();
        let run = |duration: f64| {
            let cfg = SimConfig {
                duration,
                seed: 11,
                ..SimConfig::default()
            };
            simulate(&net, &tm, &fib, &cfg).unwrap()
        };
        let short = run(4.0);
        let long = run(40.0);
        assert!(long.generated_packets > 8 * short.generated_packets);
        assert!(
            long.peak_packet_slots < long.generated_packets / 20,
            "slots {} vs generated {}: packet storage is not being recycled",
            long.peak_packet_slots,
            long.generated_packets
        );
        // Peak live packets is a stationary property of the load, not of
        // the horizon; allow generous slack for the longer run's extremes.
        assert!(
            long.peak_packet_slots <= 4 * short.peak_packet_slots.max(4),
            "peak slots grew with duration: {} -> {}",
            short.peak_packet_slots,
            long.peak_packet_slots
        );
    }

    #[test]
    fn event_slots_bounded_by_live_events_not_duration() {
        // Same recycling witness for the event arena: slots are returned
        // on every pop, so the high-water mark tracks concurrency.
        let (net, tm, fib) = chain_setup();
        let run = |duration: f64| {
            let cfg = SimConfig {
                duration,
                seed: 11,
                ..SimConfig::default()
            };
            let mut ws = SimWorkspace::new();
            let report = simulate_with(&net, &tm, &fib, &cfg, &mut ws).unwrap();
            (report, ws.scheduler_stats().peak_event_slots)
        };
        let (short_report, short_slots) = run(4.0);
        let (long_report, long_slots) = run(40.0);
        assert!(long_report.generated_packets > 8 * short_report.generated_packets);
        assert!(
            long_slots <= 4 * short_slots.max(8),
            "peak event slots grew with duration: {short_slots} -> {long_slots}"
        );
    }

    #[test]
    fn delay_histogram_mean_exact_and_p99_within_1us() {
        // Pin the histogram against the exact sorted-vector reference on a
        // pseudo-random sample with a heavy tail.
        let mut hist = DelayHistogram::new();
        let mut reference: Vec<Nanos> = Vec::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..10_000 {
            // xorshift* samples, mixed scales from sub-µs to ~50 ms.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545F4914F6CDD1D);
            let d = match r % 10 {
                0..=5 => r % 2_000_000,           // 0–2 ms bulk
                6..=8 => r % 10_000_000,          // 0–10 ms middle
                _ => 10_000_000 + r % 40_000_000, // tail to 50 ms
            };
            hist.record(d);
            reference.push(d);
        }
        reference.sort_unstable();
        let exact_mean = reference.iter().map(|&d| d as f64).sum::<f64>() / reference.len() as f64;
        assert!(
            (hist.mean_seconds() * NANOS_PER_SEC - exact_mean).abs() < 1e-3,
            "mean must be exact: {} vs {}",
            hist.mean_seconds() * NANOS_PER_SEC,
            exact_mean
        );
        let rank = (reference.len() - 1).min(reference.len() * 99 / 100);
        let exact_p99 = reference[rank] as f64;
        let got = hist.p99_seconds() * NANOS_PER_SEC;
        assert!(
            got >= exact_p99 && got <= exact_p99 + DELAY_BUCKET_NS as f64,
            "p99 {got} not within 1 µs above exact {exact_p99}"
        );
    }

    #[test]
    fn delay_histogram_empty_and_tiny_counts() {
        let hist = DelayHistogram::new();
        assert_eq!(hist.mean_seconds(), 0.0);
        assert_eq!(hist.p99_seconds(), 0.0);

        let mut hist = DelayHistogram::new();
        hist.record(1_500);
        assert!((hist.mean_seconds() - 1_500e-9).abs() < 1e-15);
        // Single sample: p99 is the sample's bucket upper edge.
        assert!((hist.p99_seconds() - 2_000e-9).abs() < 1e-15);
        assert!(hist.p99_seconds() >= hist.mean_seconds());
    }

    #[test]
    fn deterministic_in_seed() {
        let (net, tm, fib) = chain_setup();
        let cfg = SimConfig {
            duration: 5.0,
            seed: 7,
            ..SimConfig::default()
        };
        let a = simulate(&net, &tm, &fib, &cfg).unwrap();
        let b = simulate(&net, &tm, &fib, &cfg).unwrap();
        assert_eq!(a, b);
        let c = simulate(
            &net,
            &tm,
            &fib,
            &SimConfig {
                seed: 8,
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_ne!(a.delivered_packets, c.delivered_packets);
    }

    #[test]
    fn overload_drops_packets() {
        // Offer 15 Mb/s over a 10 Mb/s chain: the first link must drop.
        let mut b = Network::builder("hot");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (1.0, 0.0));
        b.add_duplex_link(a, c, 10.0);
        let net = b.build().unwrap();
        let mut tm = TrafficMatrix::new(2);
        tm.set(0.into(), 1.into(), 15.0);
        let obj = Objective::proportional(net.link_count());
        // SPEF would call this infeasible; wire the FIB manually.
        let fib = ForwardingTable::new(
            2,
            vec![NodeId::new(1)],
            vec![vec![vec![(EdgeId::new(0), 1.0)], vec![]]],
        );
        let cfg = SimConfig {
            duration: 10.0,
            seed: 2,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, &fib, &cfg).unwrap();
        assert!(report.dropped_packets > 0);
        // Delivered rate is capped at ~10 Mb/s worth of packets.
        assert!(report.mean_link_load_bps[0] <= 10.1e6);
        assert!(report.mean_link_load_bps[0] >= 9.5e6);
        let _ = obj;
    }

    #[test]
    fn probabilistic_split_approximates_ratios() {
        // Diamond with a 30/70 FIB split: measured loads follow.
        let mut b = Network::builder("dia");
        let s = b.add_node("s", (0.0, 0.0));
        let x = b.add_node("x", (1.0, 1.0));
        let y = b.add_node("y", (1.0, -1.0));
        let t = b.add_node("t", (2.0, 0.0));
        b.add_link(s, x, 10.0); // e0
        b.add_link(s, y, 10.0); // e1
        b.add_link(x, t, 10.0); // e2
        b.add_link(y, t, 10.0); // e3
        b.add_link(t, s, 10.0); // e4 return for connectivity
        let net = b.build().unwrap();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 3.into(), 4.0);
        let fib = ForwardingTable::new(
            4,
            vec![NodeId::new(3)],
            vec![vec![
                vec![(EdgeId::new(0), 0.3), (EdgeId::new(1), 0.7)],
                vec![(EdgeId::new(2), 1.0)],
                vec![(EdgeId::new(3), 1.0)],
                vec![],
            ]],
        );
        let cfg = SimConfig {
            duration: 60.0,
            warmup: 5.0,
            seed: 3,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, &fib, &cfg).unwrap();
        let total = report.mean_link_load_bps[0] + report.mean_link_load_bps[1];
        let share = report.mean_link_load_bps[0] / total;
        assert!((share - 0.3).abs() < 0.03, "measured share {share}");
    }

    #[test]
    fn missing_route_detected() {
        let (net, tm, _) = chain_setup();
        // FIB without an entry at the middle hop.
        let fib = ForwardingTable::new(
            3,
            vec![NodeId::new(2)],
            vec![vec![vec![(EdgeId::new(0), 1.0)], vec![], vec![]]],
        );
        let cfg = SimConfig {
            duration: 1.0,
            seed: 4,
            ..SimConfig::default()
        };
        assert!(matches!(
            simulate(&net, &tm, &fib, &cfg),
            Err(SimError::MissingRoute { .. })
        ));
    }

    #[test]
    fn invalid_configs_rejected() {
        let (net, tm, fib) = chain_setup();
        let bad = |f: fn(&mut SimConfig)| {
            let mut c = SimConfig::default();
            f(&mut c);
            simulate(&net, &tm, &fib, &c)
        };
        assert!(bad(|c| c.duration = 0.0).is_err());
        assert!(bad(|c| c.warmup = 1000.0).is_err());
        assert!(bad(|c| c.packet_size_bits = 0).is_err());
        assert!(bad(|c| c.capacity_to_bps = -1.0).is_err());
        assert!(bad(|c| c.propagation_delay = -1.0).is_err());
        let empty = TrafficMatrix::new(3);
        assert!(simulate(&net, &empty, &fib, &SimConfig::default()).is_err());
    }

    #[test]
    fn spef_fig4_simulation_stays_under_capacity() {
        // End-to-end: SPEF FIB on Fig. 4 at 4 Mb/s demands over 5 Mb/s
        // links keeps every measured load under capacity (Fig. 11(a)).
        let net = standard::fig4();
        let tm = standard::table4_simple_demands();
        let obj = Objective::proportional(net.link_count());
        let routing = SpefConfig::default()
            .solve(TeInstance::new(&net, &tm, &obj))
            .unwrap();
        let cfg = SimConfig {
            duration: 20.0,
            warmup: 2.0,
            seed: 5,
            ..SimConfig::default()
        };
        let report = simulate(&net, &tm, routing.forwarding_table(), &cfg).unwrap();
        for (e, &load) in report.mean_link_load_bps.iter().enumerate() {
            assert!(load <= 5.05e6, "link {e} at {load} bps");
        }
        assert!(report.delivered_packets > 0);
        // Loss should be negligible at SPEF's operating point.
        assert!(report.dropped_packets * 100 < report.generated_packets);
    }
}
