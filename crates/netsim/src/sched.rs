//! Event schedulers: the bucketed calendar queue and the legacy binary
//! heap, behind one [`EventQueue`] facade.
//!
//! Both schedulers order pending events by the unique key `(time, seq)` —
//! `seq` is the global push counter, so ties in time are broken by
//! scheduling order — and therefore produce **the same pop sequence**.
//! The simulation consumes its RNG stream in pop order, which makes every
//! [`SimReport`](crate::SimReport) bit-identical between the two; the
//! equivalence proptests in `tests/scheduler_equivalence.rs` pin this.
//!
//! The calendar queue is a timing wheel over integer nanoseconds:
//!
//! * events within the current *window* (one bucket width of simulated
//!   time) live in a small vector kept sorted descending, so the next
//!   event is a `pop()` from the end and same-window insertions are a
//!   binary-search splice;
//! * events within the wheel *horizon* (`bucket_count × width`) are
//!   appended unsorted to their bucket and only sorted when the wheel
//!   reaches that bucket — O(k log k) per bucket of k events instead of
//!   the heap's O(log n) per operation on the whole population;
//! * events beyond the horizon go to an overflow list that is drained
//!   (and the wheel re-anchored at the earliest pending event) whenever
//!   the wheel empties.
//!
//! Geometry is adaptive: bucket count doubles/halves with the population
//! and the bucket width is re-derived from the observed event spacing on
//! every resize, overflow drain, or oversized window. All adaptation is a
//! deterministic function of the pushed events, and no geometry choice can
//! reorder pops — correctness never depends on the tuning.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in integer nanoseconds (exact ordering, no float ties).
pub(crate) type Nanos = u64;

/// Index of an event slot in the engine's event arena.
pub(crate) type EventId = u32;

/// A scheduled entry: `(time, seq, event)` — the first two fields are the
/// unique ordering key, the third the arena slot holding the payload.
pub(crate) type Entry = (Nanos, u64, EventId);

/// Which event scheduler drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The bucketed calendar queue (timing wheel) — the default.
    #[default]
    Calendar,
    /// The pre-calendar `BinaryHeap` scheduler, kept as the equivalence
    /// reference and benchmark comparison point.
    BinaryHeap,
}

impl SchedulerKind {
    /// Parses a CLI scheduler name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the known names on failure.
    pub fn parse(name: &str) -> Result<SchedulerKind, String> {
        match name {
            "calendar" => Ok(SchedulerKind::Calendar),
            "heap" => Ok(SchedulerKind::BinaryHeap),
            other => Err(format!(
                "unknown scheduler {other:?}; known: calendar, heap"
            )),
        }
    }

    /// A short stable identifier (`calendar` / `heap`).
    pub fn id(&self) -> &'static str {
        match self {
            SchedulerKind::Calendar => "calendar",
            SchedulerKind::BinaryHeap => "heap",
        }
    }
}

/// Counters describing what the scheduler did during one run. Purely
/// observational: none of these feed back into simulation results, so they
/// are reported outside [`SimReport`](crate::SimReport) (which must stay
/// bit-identical across scheduler kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerStats {
    /// Scheduler that produced these stats.
    pub kind: SchedulerKind,
    /// Calendar bucket count at the end of the run (0 for the heap).
    pub bucket_count: usize,
    /// Calendar bucket width in nanoseconds at the end of the run (0 for
    /// the heap).
    pub bucket_width_ns: u64,
    /// Largest number of events observed in a single bucket (0 for the
    /// heap).
    pub max_bucket_occupancy: usize,
    /// High-water mark of pending events (either scheduler).
    pub peak_events: usize,
    /// High-water mark of allocated event-arena slots (recycled through a
    /// free list, so bounded by concurrency, not run length).
    pub peak_event_slots: usize,
    /// Calendar geometry changes: bucket-count resizes plus width retunes.
    pub resizes: u64,
    /// High-water mark of the far-future overflow list (0 for the heap).
    pub peak_overflow: usize,
}

/// Smallest calendar size; also the floor the shrink rule stops at.
const MIN_BUCKETS: usize = 32;
/// Hard cap on calendar growth (2^20 buckets ≈ 24 MiB of headers).
const MAX_BUCKETS: usize = 1 << 20;
/// Grow when the population exceeds `bucket_count × GROW_AT`.
const GROW_AT: usize = 2;
/// Shrink when the population falls below `bucket_count / SHRINK_AT`.
const SHRINK_AT: usize = 8;
/// Retune the width when one window drains more than this many events
/// (the geometry is clearly too coarse for the event spacing).
const FAT_WINDOW: usize = 256;
/// Upper bound on the width exponent (2^42 ns ≈ 73 min per bucket).
const MAX_SHIFT: u32 = 42;

/// The bucketed calendar queue. See the module docs for the design.
pub(crate) struct CalendarQueue {
    /// Future buckets, unsorted. `buckets.len()` is a power of two.
    buckets: Vec<Vec<Entry>>,
    /// The current window, sorted descending by `(time, seq)`.
    current: Vec<Entry>,
    /// Events beyond the wheel horizon.
    overflow: Vec<Entry>,
    /// Earliest time in `overflow` (`u64::MAX` when empty): the advance
    /// loop migrates overflow back into the wheel the moment its earliest
    /// entry becomes due, so a far-future event can never be overtaken by
    /// a younger in-wheel event.
    overflow_min: Nanos,
    /// Redistribution scratch (kept to stay allocation-free in steady
    /// state).
    scratch: Vec<Entry>,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// `buckets.len() - 1`; bucket of day `d` is `d & mask`.
    mask: usize,
    /// Day index of the current window (`window start = day << shift`).
    day: u64,
    /// Total pending events.
    len: usize,
    /// Events currently stored in `buckets` (excludes current/overflow).
    wheel_len: usize,
    max_bucket_occupancy: usize,
    peak_events: usize,
    resizes: u64,
    peak_overflow: usize,
}

#[inline]
fn key(e: &Entry) -> (Nanos, u64) {
    (e.0, e.1)
}

impl CalendarQueue {
    pub(crate) fn new() -> CalendarQueue {
        CalendarQueue {
            buckets: Vec::new(),
            current: Vec::new(),
            overflow: Vec::new(),
            overflow_min: Nanos::MAX,
            scratch: Vec::new(),
            shift: 10,
            mask: 0,
            day: 0,
            len: 0,
            wheel_len: 0,
            max_bucket_occupancy: 0,
            peak_events: 0,
            resizes: 0,
            peak_overflow: 0,
        }
    }

    /// Clears the queue and re-derives the initial geometry from a hint:
    /// `width_hint_ns` ≈ the expected spacing between consecutive events,
    /// `concurrency_hint` ≈ how many events are typically pending. Buckets
    /// and scratch keep their capacity, so repeated runs do not allocate.
    pub(crate) fn reset(&mut self, width_hint_ns: Nanos, concurrency_hint: usize) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.current.clear();
        self.overflow.clear();
        self.overflow_min = Nanos::MAX;
        self.scratch.clear();
        self.shift = log2_clamped(width_hint_ns.saturating_mul(4).max(1));
        let want = (concurrency_hint.max(1) * 2)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        self.set_bucket_count(want);
        self.day = 0;
        self.len = 0;
        self.wheel_len = 0;
        self.max_bucket_occupancy = 0;
        self.peak_events = 0;
        self.resizes = 0;
        self.peak_overflow = 0;
    }

    fn set_bucket_count(&mut self, count: usize) {
        debug_assert!(count.is_power_of_two());
        if self.buckets.len() < count {
            self.buckets.resize_with(count, Vec::new);
        }
        // Shrinking only narrows the mask; spare bucket vectors keep their
        // capacity for the next growth instead of being dropped.
        self.mask = count - 1;
    }

    #[inline]
    fn bucket_count(&self) -> usize {
        self.mask + 1
    }

    /// Pushes an entry. `t` must be ≥ the last popped time (events are
    /// never scheduled in the past).
    pub(crate) fn push(&mut self, entry: Entry) {
        self.len += 1;
        self.peak_events = self.peak_events.max(self.len);
        if self.len > self.bucket_count() * GROW_AT && self.bucket_count() < MAX_BUCKETS {
            self.rebuild(self.bucket_count() * 2);
        }
        self.insert(entry);
    }

    /// Places an entry into current / wheel / overflow. Does not touch
    /// `len` (shared by push and redistribution).
    fn insert(&mut self, entry: Entry) {
        let d = entry.0 >> self.shift;
        if d <= self.day {
            // Current window: splice into the descending order.
            let at = match self
                .current
                .binary_search_by(|probe| key(&entry).cmp(&key(probe)))
            {
                Ok(i) | Err(i) => i,
            };
            self.current.insert(at, entry);
        } else if d - self.day < self.bucket_count() as u64 {
            let b = (d as usize) & self.mask;
            self.buckets[b].push(entry);
            self.wheel_len += 1;
            self.max_bucket_occupancy = self.max_bucket_occupancy.max(self.buckets[b].len());
        } else {
            self.overflow_min = self.overflow_min.min(entry.0);
            self.overflow.push(entry);
            self.peak_overflow = self.peak_overflow.max(self.overflow.len());
        }
    }

    /// Moves every overflow entry that now falls within the wheel horizon
    /// into its bucket (or the current window). Called when the earliest
    /// overflow entry becomes due; afterwards `overflow_min` is at least a
    /// full rotation ahead, so the scan re-runs at most once per rotation.
    fn migrate_overflow(&mut self) {
        debug_assert!(self.scratch.is_empty());
        self.scratch.append(&mut self.overflow);
        self.overflow_min = Nanos::MAX;
        while let Some(e) = self.scratch.pop() {
            self.insert(e);
        }
    }

    /// Pops the globally earliest `(time, seq)` entry.
    pub(crate) fn pop(&mut self) -> Option<Entry> {
        loop {
            if let Some(e) = self.current.pop() {
                self.len -= 1;
                return Some(e);
            }
            if self.len == 0 {
                return None;
            }
            if self.wheel_len == 0 {
                // Only far-future events remain: jump the wheel to the
                // earliest one instead of stepping empty windows.
                debug_assert!(self.overflow_min < Nanos::MAX);
                self.retune(self.overflow_min);
                continue;
            }
            // Advance to the next non-empty window (≤ one rotation, since
            // every wheel entry lies within the horizon). Overflow entries
            // whose day the cursor reaches are pulled in first, so they
            // sort into their window with the in-wheel events.
            loop {
                self.day += 1;
                if self.overflow_min >> self.shift <= self.day {
                    self.migrate_overflow();
                }
                let b = (self.day as usize) & self.mask;
                if !self.buckets[b].is_empty() {
                    self.wheel_len -= self.buckets[b].len();
                    let drained = self.buckets[b].len();
                    self.current.append(&mut self.buckets[b]);
                    self.current.sort_unstable_by_key(|e| Reverse(key(e)));
                    if drained > FAT_WINDOW && self.shift > 0 {
                        // The window is far coarser than the event spacing;
                        // re-derive the width before draining it linearly.
                        self.retune(self.current.last().expect("drained > 0").0);
                    }
                }
                if !self.current.is_empty() {
                    break;
                }
            }
        }
    }

    /// Rebuilds the wheel with `count` buckets, re-deriving the width from
    /// the pending population and re-anchoring at the earliest pending
    /// event (or the current window when the queue is empty).
    fn rebuild(&mut self, count: usize) {
        let anchor = self.min_pending_time().unwrap_or(self.day << self.shift);
        self.collect_pending();
        self.set_bucket_count(count.clamp(MIN_BUCKETS, MAX_BUCKETS));
        self.apply_geometry(anchor);
    }

    /// Re-derives the width (keeping the bucket count) and re-anchors the
    /// wheel at `anchor` — used for overflow drains and fat windows.
    fn retune(&mut self, anchor: Nanos) {
        self.collect_pending();
        self.apply_geometry(anchor);
    }

    fn min_pending_time(&self) -> Option<Nanos> {
        let cur = self.current.last().map(|e| e.0);
        let wheel = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|e| e.0))
            .min();
        let over = self.overflow.iter().map(|e| e.0).min();
        [cur, wheel, over].into_iter().flatten().min()
    }

    /// Moves every pending entry into `scratch`, leaving the structures
    /// empty (capacities retained).
    fn collect_pending(&mut self) {
        self.scratch.clear();
        self.scratch.append(&mut self.current);
        for b in &mut self.buckets {
            self.scratch.append(b);
        }
        self.scratch.append(&mut self.overflow);
        self.overflow_min = Nanos::MAX;
        self.wheel_len = 0;
    }

    /// Sets the width from the spacing of the entries in `scratch`,
    /// anchors the current window at `anchor`, and re-inserts everything.
    fn apply_geometry(&mut self, anchor: Nanos) {
        self.resizes += 1;
        if !self.scratch.is_empty() {
            let mut min_t = Nanos::MAX;
            let mut max_t = 0;
            for e in &self.scratch {
                min_t = min_t.min(e.0);
                max_t = max_t.max(e.0);
            }
            // Width ≈ 4× the average spacing, so one rotation covers a few
            // multiples of the pending span and buckets hold O(1) events.
            let sep = (max_t - min_t) / self.scratch.len() as u64;
            self.shift = log2_clamped(sep.saturating_mul(4).max(1));
        }
        self.day = anchor >> self.shift;
        // Drain scratch without freeing its buffer.
        while let Some(e) = self.scratch.pop() {
            self.insert(e);
        }
    }

    /// Shrinks the wheel when the population has collapsed well below the
    /// bucket count. Called from `maybe_shrink` on the engine's cadence
    /// (after pops) rather than on every pop.
    pub(crate) fn maybe_shrink(&mut self) {
        if self.bucket_count() > MIN_BUCKETS && self.len < self.bucket_count() / SHRINK_AT {
            self.rebuild(self.bucket_count() / 2);
        }
    }

    pub(crate) fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            kind: SchedulerKind::Calendar,
            bucket_count: self.bucket_count(),
            bucket_width_ns: 1u64 << self.shift,
            max_bucket_occupancy: self.max_bucket_occupancy,
            peak_events: self.peak_events,
            peak_event_slots: 0, // filled in by the engine
            resizes: self.resizes,
            peak_overflow: self.peak_overflow,
        }
    }
}

/// `floor(log2(x))` clamped to the supported width range.
fn log2_clamped(x: u64) -> u32 {
    (63 - x.max(1).leading_zeros().min(63)).min(MAX_SHIFT)
}

/// The scheduler facade the engine drives: one push/pop interface, two
/// backends, a single global `seq` counter assigning the tie-break key.
pub(crate) struct EventQueue {
    kind: SchedulerKind,
    heap: BinaryHeap<Reverse<Entry>>,
    calendar: CalendarQueue,
    seq: u64,
    heap_peak: usize,
    pops_since_shrink_check: u32,
}

/// How many pops between calendar shrink checks.
const SHRINK_CHECK_EVERY: u32 = 1024;

impl EventQueue {
    pub(crate) fn new() -> EventQueue {
        EventQueue {
            kind: SchedulerKind::Calendar,
            heap: BinaryHeap::new(),
            calendar: CalendarQueue::new(),
            seq: 0,
            heap_peak: 0,
            pops_since_shrink_check: 0,
        }
    }

    /// Clears state and selects the backend for the next run; retained
    /// capacity makes repeated runs allocation-free in steady state.
    pub(crate) fn reset(&mut self, kind: SchedulerKind, width_hint_ns: Nanos, concurrency: usize) {
        self.kind = kind;
        self.seq = 0;
        self.heap.clear();
        self.heap_peak = 0;
        self.pops_since_shrink_check = 0;
        self.calendar.reset(width_hint_ns, concurrency);
    }

    #[inline]
    pub(crate) fn push(&mut self, t: Nanos, id: EventId) {
        let entry = (t, self.seq, id);
        self.seq += 1;
        match self.kind {
            SchedulerKind::Calendar => self.calendar.push(entry),
            SchedulerKind::BinaryHeap => {
                self.heap.push(Reverse(entry));
                self.heap_peak = self.heap_peak.max(self.heap.len());
            }
        }
    }

    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Entry> {
        match self.kind {
            SchedulerKind::Calendar => {
                self.pops_since_shrink_check += 1;
                if self.pops_since_shrink_check >= SHRINK_CHECK_EVERY {
                    self.pops_since_shrink_check = 0;
                    self.calendar.maybe_shrink();
                }
                self.calendar.pop()
            }
            SchedulerKind::BinaryHeap => self.heap.pop().map(|Reverse(e)| e),
        }
    }

    pub(crate) fn stats(&self) -> SchedulerStats {
        match self.kind {
            SchedulerKind::Calendar => self.calendar.stats(),
            SchedulerKind::BinaryHeap => SchedulerStats {
                kind: SchedulerKind::BinaryHeap,
                peak_events: self.heap_peak,
                ..SchedulerStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the queue, asserting the pop order equals the `(t, seq)`
    /// sort of everything pushed.
    fn assert_drains_sorted(q: &mut CalendarQueue, mut pushed: Vec<Entry>) {
        pushed.sort_unstable_by_key(|e| (e.0, e.1));
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped, pushed);
        assert!(q.pop().is_none());
    }

    fn fresh(width_hint: Nanos) -> CalendarQueue {
        let mut q = CalendarQueue::new();
        q.reset(width_hint, 4);
        q
    }

    #[test]
    fn pops_in_time_seq_order_with_interleaved_pushes() {
        let mut q = fresh(100);
        let mut pushed = Vec::new();
        // A deterministic scatter of times, including duplicates (ordered
        // by seq) and zero.
        let mut t = 0u64;
        for seq in 0..200u64 {
            t = (t + (seq * 2654435761) % 1733) % 50_000;
            let e = (t, seq, seq as EventId);
            q.push(e);
            pushed.push(e);
        }
        assert_drains_sorted(&mut q, pushed);
    }

    #[test]
    fn events_exactly_on_bucket_edges() {
        // Width is 2^shift after reset; schedule events at exact multiples
        // of the width, one below, one above — the classic off-by-one
        // surface of a timing wheel.
        let mut q = fresh(1 << 6); // shift derives from 4× hint
        let w = {
            // Recover the actual width from stats.
            q.stats().bucket_width_ns
        };
        let mut pushed = Vec::new();
        let mut seq = 0;
        for day in [0u64, 1, 2, 5, 31, 32, 33] {
            for dt in [0u64, 1, w - 1] {
                let e = (day * w + dt, seq, seq as EventId);
                seq += 1;
                q.push(e);
                pushed.push(e);
            }
        }
        assert_drains_sorted(&mut q, pushed);
    }

    #[test]
    fn far_future_overflow_drains_in_order() {
        let mut q = fresh(16);
        let horizon = q.stats().bucket_width_ns * q.stats().bucket_count as u64;
        let mut pushed = Vec::new();
        // Near events plus events far beyond the horizon (several epochs
        // out), so the wheel must re-anchor through the overflow list.
        for (seq, t) in [
            (0u64, 5u64),
            (1, horizon * 3),
            (2, horizon * 3 + 1),
            (3, 10),
            (4, horizon * 100),
            (5, horizon * 2),
        ]
        .into_iter()
        {
            let e = (t, seq, seq as EventId);
            q.push(e);
            pushed.push(e);
        }
        assert!(q.stats().peak_overflow > 0, "far events must overflow");
        assert_drains_sorted(&mut q, pushed);
    }

    #[test]
    fn interleaved_pop_push_never_reorders() {
        // Pop half, push more (all ≥ the last popped time, as the engine
        // guarantees), pop the rest; the merged order must hold.
        let mut q = fresh(50);
        for seq in 0..50u64 {
            q.push((seq * 97 % 1000, seq, seq as EventId));
        }
        let mut popped = Vec::new();
        for _ in 0..25 {
            popped.push(q.pop().unwrap());
        }
        let now = popped.last().unwrap().0;
        for seq in 50..120u64 {
            q.push((now + seq * 31 % 2000, seq, seq as EventId));
        }
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        // The interleaved schedule is not globally sorted, but each pop
        // must be the minimum of what was pending at that moment; a
        // sufficient check is that pops are strictly increasing in
        // (t, seq) within each phase — and that nothing was lost.
        assert_eq!(popped.len(), 120);
        let mut seen: Vec<u32> = popped.iter().map(|e| e.2).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..120).collect::<Vec<u32>>());
        for w in popped[..25].windows(2) {
            assert!(key(&w[0]) < key(&w[1]));
        }
        for w in popped[25..].windows(2) {
            assert!(key(&w[0]) < key(&w[1]));
        }
    }

    #[test]
    fn growth_and_shrink_resize_keep_order() {
        let mut q = fresh(10);
        let initial_buckets = q.stats().bucket_count;
        let mut pushed = Vec::new();
        // Push far more than GROW_AT × initial buckets to force doubling.
        for seq in 0..(initial_buckets as u64 * 8) {
            let e = (seq * 13 % 100_000, seq, seq as EventId);
            q.push(e);
            pushed.push(e);
        }
        assert!(
            q.stats().bucket_count > initial_buckets,
            "population {} must have grown the {} buckets",
            pushed.len(),
            initial_buckets
        );
        assert!(q.stats().resizes > 0);
        assert_drains_sorted(&mut q, pushed);

        // After a full drain plus shrink checks, a tiny population shrinks
        // the wheel again.
        for seq in 0..4u64 {
            q.push((seq, seq, seq as EventId));
        }
        for _ in 0..4 {
            q.maybe_shrink();
        }
        assert!(q.stats().bucket_count < initial_buckets * 8);
        while q.pop().is_some() {}
    }

    #[test]
    fn heap_and_calendar_queue_pop_identically() {
        let mut eq_cal = EventQueue::new();
        let mut eq_heap = EventQueue::new();
        eq_cal.reset(SchedulerKind::Calendar, 100, 8);
        eq_heap.reset(SchedulerKind::BinaryHeap, 100, 8);
        let mut t = 1u64;
        for i in 0..500u32 {
            t = (t * 48271) % 0x7FFF_FFFF;
            let time = t % 1_000_000;
            eq_cal.push(time, i);
            eq_heap.push(time, i);
        }
        loop {
            let a = eq_cal.pop();
            let b = eq_heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn interleaved_random_stress_matches_heap() {
        // Mimics the sim's push pattern: each pop may push 0–2 new events
        // at now + delta, with deltas spanning sub-window to far-future.
        let mut cal = EventQueue::new();
        let mut heap = EventQueue::new();
        for trial in 0..50u64 {
            cal.reset(SchedulerKind::Calendar, 1 << (trial % 14), 4);
            heap.reset(SchedulerKind::BinaryHeap, 1 << (trial % 14), 4);
            let mut state = trial.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut rnd = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state.wrapping_mul(0x2545F4914F6CDD1D)
            };
            let mut id = 0u32;
            for _ in 0..20 {
                let t = rnd() % 100_000;
                cal.push(t, id);
                heap.push(t, id);
                id += 1;
            }
            let mut pops = 0u32;
            loop {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "trial {trial} diverged at pop {pops}");
                let Some((now, _, _)) = a else { break };
                pops += 1;
                if pops < 3000 {
                    for _ in 0..(rnd() % 3) {
                        let delta = match rnd() % 10 {
                            0..=5 => rnd() % 5_000,
                            6..=8 => rnd() % 500_000,
                            _ => rnd() % 500_000_000,
                        };
                        cal.push(now + delta, id);
                        heap.push(now + delta, id);
                        id += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn scheduler_kind_parses() {
        assert_eq!(
            SchedulerKind::parse("calendar").unwrap(),
            SchedulerKind::Calendar
        );
        assert_eq!(
            SchedulerKind::parse("heap").unwrap(),
            SchedulerKind::BinaryHeap
        );
        assert!(SchedulerKind::parse("fifo").is_err());
        assert_eq!(SchedulerKind::Calendar.id(), "calendar");
        assert_eq!(SchedulerKind::BinaryHeap.id(), "heap");
    }

    #[test]
    fn log2_clamps() {
        assert_eq!(log2_clamped(0), 0);
        assert_eq!(log2_clamped(1), 0);
        assert_eq!(log2_clamped(2), 1);
        assert_eq!(log2_clamped(1023), 9);
        assert_eq!(log2_clamped(1024), 10);
        assert_eq!(log2_clamped(u64::MAX), MAX_SHIFT);
    }
}
