//! Discrete-event packet-level network simulator — the SSFnet substitute
//! for §V.D of the SPEF paper.
//!
//! The paper runs SPEF and PEFT "for 400s" in SSFnet over the Fig. 4
//! network (5 Mb/s links) and the CERNET2 backbone, and reports the *mean
//! traffic load on each link* (Fig. 11). SSFnet is not available as a
//! maintained artifact, so this crate provides an equivalent simulator
//! that exercises the identical code path — the per-router probabilistic
//! forwarding tables — and measures the same statistic:
//!
//! * **Sources** generate fixed-size packets per demand pair as a Poisson
//!   process matching the pair's offered rate;
//! * **Routers** forward hop by hop: each packet independently samples a
//!   next hop from the [`ForwardingTable`] split ratios of its destination
//!   (exactly how SPEF/PEFT routers use their weights). The table is the
//!   flat CSR `spef_core::FibSet`: destination slots are resolved once per
//!   run and stamped into packets, so a hop is two index operations plus a
//!   binary search over precomputed cumulative split probabilities —
//!   bit-identical in its choices to the legacy linear ratio walk;
//! * **Links** are FIFO, drop-tail, with finite rate (serialisation
//!   delay), constant propagation delay and bounded buffers;
//! * **Measurements**: per-link mean load (bits/s over the measurement
//!   window), end-to-end delay of delivered packets, and drop counts.
//!
//! The simulator is fully deterministic in its seed, and its mean loads
//! are validated against the analytic flow solutions in the integration
//! test-suite.
//!
//! Events are scheduled by an adaptive **calendar queue** (see the
//! `sched` module) with payloads in free-list arenas; the legacy binary
//! heap remains available via [`SimConfig::scheduler`] and produces
//! bit-identical [`SimReport`]s. Batch callers should reuse a
//! [`SimWorkspace`] through [`simulate_with`] — repeated runs are then
//! allocation-free in steady state, and the workspace exposes
//! [`SchedulerStats`] for the last run.
//!
//! # Example
//!
//! ```
//! use spef_core::{Objective, SpefConfig, TeInstance, TeSolver};
//! use spef_netsim::{simulate, SimConfig};
//! use spef_topology::standard;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = standard::fig4();
//! let tm = standard::fig4_demands();
//! let obj = Objective::proportional(net.link_count());
//! let routing = SpefConfig::default().solve(TeInstance::new(&net, &tm, &obj))?;
//!
//! let cfg = SimConfig {
//!     duration: 5.0,
//!     capacity_to_bps: 1e6, // capacity "5" means 5 Mb/s
//!     demand_to_bps: 1e6,   // demand "4" means 4 Mb/s
//!     ..SimConfig::default()
//! };
//! let report = simulate(&net, &tm, routing.forwarding_table(), &cfg)?;
//! assert!(report.delivered_packets > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod sched;

pub use engine::{simulate, simulate_with, SimConfig, SimError, SimReport, SimWorkspace};
pub use sched::{SchedulerKind, SchedulerStats};
