//! Property tests: the calendar-queue scheduler is **bit-identical** to
//! the binary-heap scheduler.
//!
//! Both schedulers pop events in the same `(time, seq)` order, so the
//! simulation consumes its RNG stream identically and every [`SimReport`]
//! field — float link loads included — must agree exactly (`==`, not
//! approximately) on random topologies, demand matrices, and operating
//! points that cover clean delivery, multi-path splitting, and drop-tail
//! loss.

use proptest::prelude::*;
use spef_core::ForwardingTable;
use spef_graph::{NodeId, ShortestPathDag};
use spef_netsim::{simulate, simulate_with, SchedulerKind, SimConfig, SimWorkspace};
use spef_topology::{Network, TrafficMatrix};

/// A strongly connected random network (directed ring backbone plus
/// chords) with capacities in [4, 12], and a demand matrix over a random
/// subset of pairs.
fn random_scenario() -> impl Strategy<Value = (Network, TrafficMatrix)> {
    (3usize..9).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..(2 * n)),
            proptest::collection::vec(4.0f64..12.0, n + 2 * n),
            proptest::collection::vec((0..n, 0..n, 0.2f64..3.0), 1..6),
        )
            .prop_map(|(n, chords, caps, demands)| {
                let mut b = Network::builder("prop");
                let nodes: Vec<NodeId> = (0..n)
                    .map(|i| b.add_node(format!("n{i}"), (i as f64, 0.0)))
                    .collect();
                let mut next_cap = caps.into_iter();
                for i in 0..n {
                    b.add_link(nodes[i], nodes[(i + 1) % n], next_cap.next().unwrap());
                }
                for (u, v) in chords {
                    if u != v {
                        b.add_link(nodes[u], nodes[v], next_cap.next().unwrap());
                    }
                }
                let net = b.build().unwrap();
                let mut tm = TrafficMatrix::new(n);
                for (s, t, d) in demands {
                    if s != t {
                        tm.set(NodeId::new(s), NodeId::new(t), d);
                    }
                }
                (net, tm)
            })
    })
}

/// Builds a FIB from per-destination shortest-path DAGs (inverse-capacity
/// weights) with uniform splits — cheap, deterministic, and multi-path
/// whenever the DAG has equal-cost successors.
fn uniform_split_fib(net: &Network, tm: &TrafficMatrix) -> ForwardingTable {
    let g = net.graph();
    let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
    let dests = tm.destinations();
    let tables: Vec<Vec<Vec<_>>> = dests
        .iter()
        .map(|&t| {
            let dag = ShortestPathDag::build(g, &w, t, 0.0).unwrap();
            (0..net.node_count())
                .map(|u| {
                    let succ = dag.successors(NodeId::new(u));
                    let p = 1.0 / succ.len().max(1) as f64;
                    succ.iter().map(|&e| (e, p)).collect()
                })
                .collect()
        })
        .collect();
    ForwardingTable::new(net.node_count(), dests, tables)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heap and calendar reports agree bit for bit on random scenarios,
    /// across seeds, buffer regimes (including lossy ones), and
    /// propagation delays — and workspace reuse changes nothing.
    #[test]
    fn heap_and_calendar_reports_agree_exactly(
        (net, tm) in random_scenario(),
        seed in 0u64..1_000,
        buffer in prop_oneof![Just(3usize), Just(100usize)],
        propagation in prop_oneof![Just(0.0f64), Just(1e-3)],
    ) {
        prop_assume!(tm.pair_count() > 0);
        let fib = uniform_split_fib(&net, &tm);
        let base = SimConfig {
            duration: 3.0,
            warmup: 0.5,
            buffer_packets: buffer,
            propagation_delay: propagation,
            seed,
            ..SimConfig::default()
        };
        let heap = simulate(&net, &tm, &fib, &SimConfig {
            scheduler: SchedulerKind::BinaryHeap,
            ..base.clone()
        }).unwrap();
        let calendar = simulate(&net, &tm, &fib, &SimConfig {
            scheduler: SchedulerKind::Calendar,
            ..base.clone()
        }).unwrap();
        prop_assert_eq!(&heap, &calendar);
        // Float fields compare bit-for-bit, not just `==` (which would
        // also accept -0.0 vs 0.0).
        for (a, b) in heap.mean_link_load_bps.iter().zip(&calendar.mean_link_load_bps) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(heap.mean_delay.to_bits(), calendar.mean_delay.to_bits());
        prop_assert_eq!(heap.p99_delay.to_bits(), calendar.p99_delay.to_bits());

        // A warm workspace (previously used by a *different* scheduler)
        // reproduces the same report.
        let mut ws = SimWorkspace::new();
        simulate_with(&net, &tm, &fib, &SimConfig {
            scheduler: SchedulerKind::BinaryHeap,
            ..base.clone()
        }, &mut ws).unwrap();
        let warm = simulate_with(&net, &tm, &fib, &base, &mut ws).unwrap();
        prop_assert_eq!(&warm, &calendar);
    }

    /// Degenerate timing: zero propagation and tiny packets collapse many
    /// events onto identical timestamps, stressing the seq tie-break.
    #[test]
    fn equal_timestamp_bursts_stay_identical(
        (net, tm) in random_scenario(),
        seed in 0u64..1_000,
    ) {
        prop_assume!(tm.pair_count() > 0);
        let fib = uniform_split_fib(&net, &tm);
        let base = SimConfig {
            duration: 1.0,
            packet_size_bits: 1_200, // 10× the event density
            propagation_delay: 0.0,
            seed,
            ..SimConfig::default()
        };
        let heap = simulate(&net, &tm, &fib, &SimConfig {
            scheduler: SchedulerKind::BinaryHeap,
            ..base.clone()
        }).unwrap();
        let calendar = simulate(&net, &tm, &fib, &base).unwrap();
        prop_assert_eq!(&heap, &calendar);
    }
}
