//! Property-based tests for [`Network::without_links`] and
//! [`Network::duplex_circuits`] on random topologies.
//!
//! The failure sweeps lean on three contracts: the kept-edge map returned
//! by `without_links` preserves endpoints and capacities in the original
//! edge order, removals that disconnect the network are always rejected
//! (never silently produce a partial topology), and remapping a per-link
//! vector through the kept map round-trips against the original ids.

use proptest::prelude::*;
use spef_graph::traversal::is_strongly_connected;
use spef_graph::{EdgeId, Graph};
use spef_topology::{Network, TopologyError};

/// Strategy: a random duplex network over a Hamiltonian backbone ring
/// (guaranteeing strong connectivity) plus random duplex chords, with
/// capacities in (0, 10], and a random subset of circuits to fail.
fn network_and_failures() -> impl Strategy<Value = (Network, Vec<usize>)> {
    (3usize..10).prop_flat_map(|n| {
        let chords = proptest::collection::vec((0..n, 0..n), 0..(2 * n));
        let caps = proptest::collection::vec(0.01f64..10.0, n + 2 * n);
        let picks = proptest::collection::vec(0usize..2, n + 2 * n);
        (Just(n), chords, caps, picks).prop_map(|(n, chords, caps, picks)| {
            let mut b = Network::builder("prop");
            for i in 0..n {
                b.add_node(format!("n{i}"), (i as f64, 0.0));
            }
            let mut cap = caps.into_iter().cycle();
            for i in 0..n {
                b.add_duplex_link(i.into(), ((i + 1) % n).into(), cap.next().unwrap());
            }
            for (u, v) in chords {
                if u != v {
                    b.add_duplex_link(u.into(), v.into(), cap.next().unwrap());
                }
            }
            let net = b.build().expect("backbone ring is strongly connected");
            let circuits = net.duplex_circuits().len();
            let failed: Vec<usize> = picks
                .into_iter()
                .take(circuits)
                .enumerate()
                .filter_map(|(i, pick)| (pick == 1).then_some(i))
                .collect();
            (net, failed)
        })
    })
}

/// Rebuilds the surviving graph by hand (no builder validation) so the
/// disconnection verdict can be cross-checked independently.
fn surviving_graph(net: &Network, failed: &[EdgeId]) -> Graph {
    let mut g = Graph::with_nodes(net.node_count());
    for (e, u, v) in net.graph().edges() {
        if !failed.contains(&e) {
            g.add_edge(u, v);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kept_map_preserves_endpoints_capacities_and_order((net, fail) in network_and_failures()) {
        let circuits = net.duplex_circuits();
        let failed: Vec<EdgeId> = fail.iter().flat_map(|&i| circuits[i].clone()).collect();
        let Ok((degraded, kept)) = net.without_links(&failed) else {
            return Ok(()); // disconnection case covered below
        };
        prop_assert_eq!(degraded.link_count(), net.link_count() - failed.len());
        prop_assert_eq!(kept.len(), degraded.link_count());
        // Kept ids are strictly increasing (original edge order preserved)
        // and none of them was failed.
        for w in kept.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for (new_e, _, _) in degraded.graph().edges() {
            let old_e = kept[new_e.index()];
            prop_assert!(!failed.contains(&old_e));
            prop_assert_eq!(
                degraded.graph().endpoints(new_e),
                net.graph().endpoints(old_e)
            );
            prop_assert_eq!(
                degraded.capacity(new_e).to_bits(),
                net.capacity(old_e).to_bits()
            );
        }
    }

    #[test]
    fn disconnection_is_always_rejected((net, fail) in network_and_failures()) {
        let circuits = net.duplex_circuits();
        let failed: Vec<EdgeId> = fail.iter().flat_map(|&i| circuits[i].clone()).collect();
        let connected = is_strongly_connected(&surviving_graph(&net, &failed));
        match net.without_links(&failed) {
            Ok(..) => prop_assert!(connected, "accepted a disconnecting removal"),
            Err(TopologyError::NotStronglyConnected) => {
                prop_assert!(!connected, "rejected a connected survivor")
            }
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    #[test]
    fn remapped_per_link_vectors_round_trip((net, fail) in network_and_failures()) {
        let circuits = net.duplex_circuits();
        let failed: Vec<EdgeId> = fail.iter().flat_map(|&i| circuits[i].clone()).collect();
        let Ok((degraded, kept)) = net.without_links(&failed) else {
            return Ok(());
        };
        // Forward remap (the failure experiments' `remap` closure), then
        // scatter back: every kept id sees its original value again.
        let vals: Vec<f64> = (0..net.link_count()).map(|e| e as f64 + 0.25).collect();
        let remapped: Vec<f64> = kept.iter().map(|&old| vals[old.index()]).collect();
        prop_assert_eq!(remapped.len(), degraded.link_count());
        let mut scattered = vec![f64::NAN; net.link_count()];
        for (new_i, &old) in kept.iter().enumerate() {
            scattered[old.index()] = remapped[new_i];
        }
        for (e, &v) in vals.iter().enumerate() {
            let e = EdgeId::new(e);
            if failed.contains(&e) {
                prop_assert!(scattered[e.index()].is_nan());
            } else {
                prop_assert_eq!(scattered[e.index()].to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn duplex_circuits_partition_the_edge_set((net, _) in network_and_failures()) {
        let circuits = net.duplex_circuits();
        let mut seen = vec![false; net.link_count()];
        for circuit in &circuits {
            prop_assert!(!circuit.is_empty() && circuit.len() <= 2);
            for &e in circuit {
                prop_assert!(!seen[e.index()], "edge {e} in two circuits");
                seen[e.index()] = true;
            }
            if let [fwd, rev] = circuit[..] {
                let (u, v) = net.graph().endpoints(fwd);
                prop_assert_eq!(net.graph().endpoints(rev), (v, u));
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some edge in no circuit");
    }
}
