use std::fmt;

use serde::{Deserialize, Serialize};
use spef_graph::{traversal, EdgeId, Graph, NodeId};

/// Errors produced when building or validating a [`Network`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A link capacity was zero, negative, NaN or infinite.
    InvalidCapacity {
        /// The offending link.
        edge: EdgeId,
        /// The offending capacity.
        capacity: f64,
    },
    /// The network is not strongly connected, so some demand pairs could
    /// never be routed.
    NotStronglyConnected,
    /// A node name was referenced that does not exist.
    UnknownNode(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidCapacity { edge, capacity } => {
                write!(f, "link {edge} has invalid capacity {capacity}")
            }
            TopologyError::NotStronglyConnected => {
                write!(f, "network is not strongly connected")
            }
            TopologyError::UnknownNode(name) => write!(f, "unknown node name {name:?}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A network: directed graph plus per-link capacities, node names, and
/// planar node coordinates.
///
/// Coordinates feed the Fortz–Thorup demand generator (demands decay with
/// distance) and are set to rough geographic positions for the real
/// backbones and to generator-chosen positions for synthetic networks.
///
/// # Example
///
/// ```
/// use spef_topology::Network;
///
/// # fn main() -> Result<(), spef_topology::TopologyError> {
/// let mut b = Network::builder("toy");
/// let a = b.add_node("a", (0.0, 0.0));
/// let c = b.add_node("c", (1.0, 0.0));
/// b.add_duplex_link(a, c, 10.0);
/// let net = b.build()?;
/// assert_eq!(net.link_count(), 2);
/// assert_eq!(net.total_capacity(), 20.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    graph: Graph,
    capacities: Vec<f64>,
    node_names: Vec<String>,
    coords: Vec<(f64, f64)>,
}

impl Network {
    /// Starts building a network with the given display name.
    pub fn builder(name: impl Into<String>) -> NetworkBuilder {
        NetworkBuilder {
            name: name.into(),
            graph: Graph::new(),
            capacities: Vec::new(),
            node_names: Vec::new(),
            coords: Vec::new(),
        }
    }

    /// Display name (e.g. `"Abilene"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying directed graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Capacity of link `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.capacities[e.index()]
    }

    /// All link capacities, indexed by edge id.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// Sum of all link capacities (denominator of the paper's
    /// "network load" metric).
    pub fn total_capacity(&self) -> f64 {
        self.capacities.iter().sum()
    }

    /// Name of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn node_name(&self, u: NodeId) -> &str {
        &self.node_names[u.index()]
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(NodeId::new)
    }

    /// Planar coordinates of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn coord(&self, u: NodeId) -> (f64, f64) {
        self.coords[u.index()]
    }

    /// Euclidean distance between the coordinates of `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn euclidean_distance(&self, u: NodeId, v: NodeId) -> f64 {
        let (ux, uy) = self.coord(u);
        let (vx, vy) = self.coord(v);
        ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
    }

    /// Largest Euclidean distance between any node pair (the `Δ` of the
    /// Fortz–Thorup demand model). Zero for networks with fewer than two
    /// nodes.
    pub fn max_distance(&self) -> f64 {
        let mut best = 0.0f64;
        for u in self.graph.nodes() {
            for v in self.graph.nodes() {
                if u != v {
                    best = best.max(self.euclidean_distance(u, v));
                }
            }
        }
        best
    }

    /// Returns a copy of the network with the given directed links removed
    /// (to fail a duplex circuit, pass both directions), together with the
    /// mapping from new edge ids to the original ones.
    ///
    /// Used by failure-robustness studies: OSPF-family protocols reconverge
    /// on the surviving topology with their *existing* weights.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NotStronglyConnected`] if the removal
    /// disconnects the network.
    pub fn without_links(
        &self,
        failed: &[EdgeId],
    ) -> Result<(Network, Vec<EdgeId>), TopologyError> {
        let mut b = Network::builder(format!("{}-degraded", self.name));
        for node in self.graph.nodes() {
            b.add_node(self.node_name(node), self.coord(node));
        }
        let mut kept = Vec::new();
        for (e, u, v) in self.graph.edges() {
            if !failed.contains(&e) {
                b.add_link(u, v, self.capacity(e));
                kept.push(e);
            }
        }
        Ok((b.build()?, kept))
    }

    /// Groups the directed links into duplex *circuits*: a forward link and
    /// its antiparallel partner (same endpoints, opposite direction) form
    /// one circuit; a link with no surviving partner forms a circuit by
    /// itself. Failure studies take a whole circuit down at once — a fibre
    /// cut kills both directions — so this is the canonical enumeration of
    /// single-failure events.
    ///
    /// Deterministic: circuits are ordered by their lowest edge id, and
    /// each forward link pairs with the first unpaired reverse link (the
    /// builder's `add_duplex_link` always produces adjacent ids, so named
    /// topologies get the obvious `(2i, 2i+1)` pairing).
    pub fn duplex_circuits(&self) -> Vec<Vec<EdgeId>> {
        let m = self.graph.edge_count();
        let mut claimed = vec![false; m];
        let mut circuits = Vec::new();
        for (e, u, v) in self.graph.edges() {
            if claimed[e.index()] {
                continue;
            }
            claimed[e.index()] = true;
            let mut circuit = vec![e];
            if let Some(rev) = self
                .graph
                .edges()
                .find(|&(r, ru, rv)| !claimed[r.index()] && ru == v && rv == u)
                .map(|(r, _, _)| r)
            {
                claimed[rev.index()] = true;
                circuit.push(rev);
            }
            circuits.push(circuit);
        }
        circuits
    }

    /// Per-link utilizations `f_e / c_e` for a given aggregate flow vector.
    ///
    /// # Panics
    ///
    /// Panics if `flows.len() != self.link_count()`.
    pub fn utilizations(&self, flows: &[f64]) -> Vec<f64> {
        assert_eq!(flows.len(), self.link_count(), "flow vector length");
        flows
            .iter()
            .zip(&self.capacities)
            .map(|(f, c)| f / c)
            .collect()
    }
}

/// Incremental builder for [`Network`] (see [`Network::builder`]).
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    graph: Graph,
    capacities: Vec<f64>,
    node_names: Vec<String>,
    coords: Vec<(f64, f64)>,
}

impl NetworkBuilder {
    /// Adds a named node at the given planar coordinates.
    pub fn add_node(&mut self, name: impl Into<String>, coord: (f64, f64)) -> NodeId {
        let id = self.graph.add_node();
        self.node_names.push(name.into());
        self.coords.push(coord);
        id
    }

    /// Adds a directed link `u -> v` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `u == v`.
    pub fn add_link(&mut self, u: NodeId, v: NodeId, capacity: f64) -> EdgeId {
        let e = self.graph.add_edge(u, v);
        self.capacities.push(capacity);
        e
    }

    /// Adds a pair of directed links `u -> v` and `v -> u`, both with the
    /// given capacity (how every backbone in the paper is wired).
    ///
    /// Returns the pair of edge ids `(u→v, v→u)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `u == v`.
    pub fn add_duplex_link(&mut self, u: NodeId, v: NodeId, capacity: f64) -> (EdgeId, EdgeId) {
        (self.add_link(u, v, capacity), self.add_link(v, u, capacity))
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of directed links added so far.
    pub fn link_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Finalises the network.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::InvalidCapacity`] if any capacity is not a
    ///   strictly positive finite number,
    /// * [`TopologyError::NotStronglyConnected`] if some ordered node pair
    ///   has no directed path (demands between arbitrary pairs must be
    ///   routable).
    pub fn build(self) -> Result<Network, TopologyError> {
        for (i, &c) in self.capacities.iter().enumerate() {
            if !c.is_finite() || c <= 0.0 {
                return Err(TopologyError::InvalidCapacity {
                    edge: EdgeId::new(i),
                    capacity: c,
                });
            }
        }
        if !traversal::is_strongly_connected(&self.graph) {
            return Err(TopologyError::NotStronglyConnected);
        }
        Ok(Network {
            name: self.name,
            graph: self.graph,
            capacities: self.capacities,
            node_names: self.node_names,
            coords: self.coords,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Network {
        let mut b = Network::builder("tri");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (3.0, 4.0));
        let d = b.add_node("c", (0.0, 1.0));
        b.add_duplex_link(a, c, 1.0);
        b.add_duplex_link(c, d, 2.0);
        b.add_duplex_link(d, a, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_network() {
        let net = triangle();
        assert_eq!(net.name(), "tri");
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 6);
        assert_eq!(net.total_capacity(), 14.0);
        assert_eq!(net.capacity(EdgeId::new(2)), 2.0);
    }

    #[test]
    fn node_lookup_by_name() {
        let net = triangle();
        assert_eq!(net.node_by_name("b"), Some(NodeId::new(1)));
        assert_eq!(net.node_by_name("zzz"), None);
        assert_eq!(net.node_name(NodeId::new(2)), "c");
    }

    #[test]
    fn euclidean_distances() {
        let net = triangle();
        assert_eq!(net.euclidean_distance(NodeId::new(0), NodeId::new(1)), 5.0);
        assert_eq!(net.max_distance(), 5.0);
    }

    #[test]
    fn utilizations_divide_by_capacity() {
        let net = triangle();
        let u = net.utilizations(&[0.5, 1.0, 1.0, 0.0, 2.0, 4.0]);
        assert_eq!(u, vec![0.5, 1.0, 0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn rejects_nonpositive_capacity() {
        let mut b = Network::builder("bad");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (1.0, 0.0));
        b.add_duplex_link(a, c, 0.0);
        assert!(matches!(
            b.build(),
            Err(TopologyError::InvalidCapacity { .. })
        ));
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = Network::builder("bad");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (1.0, 0.0));
        b.add_link(a, c, 1.0); // one-way only
        assert_eq!(b.build(), Err(TopologyError::NotStronglyConnected));
    }

    #[test]
    fn single_node_network_is_valid() {
        let mut b = Network::builder("lonely");
        b.add_node("only", (0.0, 0.0));
        let net = b.build().unwrap();
        assert_eq!(net.max_distance(), 0.0);
    }

    #[test]
    fn without_links_drops_a_circuit_and_maps_ids() {
        let net = triangle();
        // Fail the duplex a<->b circuit (edges 0 and 1).
        let (degraded, kept) = net
            .without_links(&[EdgeId::new(0), EdgeId::new(1)])
            .unwrap();
        assert_eq!(degraded.link_count(), 4);
        assert_eq!(kept.len(), 4);
        // New edge 0 is the original edge 2.
        assert_eq!(kept[0], EdgeId::new(2));
        assert_eq!(
            degraded.capacity(EdgeId::new(0)),
            net.capacity(EdgeId::new(2))
        );
        assert_eq!(degraded.node_count(), 3);
    }

    #[test]
    fn duplex_circuits_pair_antiparallel_links() {
        let net = triangle();
        let circuits = net.duplex_circuits();
        assert_eq!(circuits.len(), 3);
        for (i, c) in circuits.iter().enumerate() {
            assert_eq!(c, &[EdgeId::new(2 * i), EdgeId::new(2 * i + 1)]);
            let (u0, v0) = net.graph().endpoints(c[0]);
            let (u1, v1) = net.graph().endpoints(c[1]);
            assert_eq!((u0, v0), (v1, u1));
        }
    }

    #[test]
    fn duplex_circuits_leave_unpaired_links_as_singletons() {
        // A directed 3-cycle plus one duplex pair: 3 singleton circuits and
        // one paired circuit.
        let mut b = Network::builder("mixed");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (1.0, 0.0));
        let d = b.add_node("c", (0.0, 1.0));
        b.add_link(a, c, 1.0); // 0
        b.add_link(c, d, 1.0); // 1
        b.add_link(d, a, 1.0); // 2
        b.add_duplex_link(a, d, 2.0); // 3, 4
        let net = b.build().unwrap();
        let circuits = net.duplex_circuits();
        assert_eq!(
            circuits,
            vec![
                vec![EdgeId::new(0)],
                vec![EdgeId::new(1)],
                // Edge 2 (d->a) pairs with edge 3 (a->d) of the duplex link.
                vec![EdgeId::new(2), EdgeId::new(3)],
                vec![EdgeId::new(4)],
            ]
        );
        let total: usize = circuits.iter().map(Vec::len).sum();
        assert_eq!(total, net.link_count());
    }

    #[test]
    fn without_links_rejects_disconnection() {
        let mut b = Network::builder("path");
        let a = b.add_node("a", (0.0, 0.0));
        let c = b.add_node("b", (1.0, 0.0));
        b.add_duplex_link(a, c, 1.0);
        let net = b.build().unwrap();
        assert_eq!(
            net.without_links(&[EdgeId::new(0), EdgeId::new(1)])
                .unwrap_err(),
            TopologyError::NotStronglyConnected
        );
    }
}
