//! The paper's concrete networks: Fig. 1, Fig. 4, Abilene and CERNET2.
//!
//! Abilene uses the historical Internet2 11-PoP topology (14 duplex
//! circuits, 10 Gb/s). CERNET2 and the Fig. 4 example are *reconstructions*:
//! the paper's figures are not machine-readable, so we rebuilt topologies
//! with the stated node/link counts and capacity classes that reproduce the
//! qualitative behaviour the paper reports — see `DESIGN.md` for the
//! substitution rationale.

use spef_graph::NodeId;

use crate::{Network, TrafficMatrix};

/// The 4-node example of Fig. 1 / TABLE I.
///
/// Nodes `1..4` (ids `0..3`); four unit-capacity directed links
/// `(1,3), (3,4), (1,2), (2,3)` in that edge-id order, matching the rows of
/// TABLE I.
pub fn fig1() -> Network {
    let mut b = Network::builder("Fig1");
    let n1 = b.add_node("1", (0.0, 1.0));
    let n2 = b.add_node("2", (1.0, 2.0));
    let n3 = b.add_node("3", (2.0, 1.0));
    let n4 = b.add_node("4", (3.0, 1.0));
    b.add_link(n1, n3, 1.0); // e0 = (1,3)
    b.add_link(n3, n4, 1.0); // e1 = (3,4)
    b.add_link(n1, n2, 1.0); // e2 = (1,2)
    b.add_link(n2, n3, 1.0); // e3 = (2,3)
                             // Return links so the network is strongly connected (the paper's
                             // example only uses the forward directions; these carry no demand and
                             // stay empty).
    b.add_link(n4, n3, 1.0); // e4
    b.add_link(n3, n1, 1.0); // e5
    b.build().expect("fig1 is valid by construction")
}

/// The demands of the Fig. 1 example: `d(1→3) = 1`, `d(3→4) = 0.9`.
pub fn fig1_demands() -> TrafficMatrix {
    let mut tm = TrafficMatrix::new(4);
    tm.set(NodeId::new(0), NodeId::new(2), 1.0);
    tm.set(NodeId::new(2), NodeId::new(3), 0.9);
    tm
}

/// Number of links of [`fig1`] that the paper's TABLE I reports on
/// (the first four edge ids; the remaining links are unused returns).
pub const FIG1_REPORTED_LINKS: usize = 4;

/// The 7-node, 13-link example of Fig. 4 (reconstruction).
///
/// Every link has capacity 5. Link ids follow the paper's link indices
/// 1..13 (edge id = paper index − 1). The reconstruction preserves the
/// facts the paper states about this network:
///
/// * OSPF (InvCap + ECMP) overloads one bottleneck link to utilization 1.6
///   (two 4-unit demands share it),
/// * the optimal distribution at β = 0 saturates that link exactly
///   (utilization 1.0) and its utilization decreases as β grows,
/// * longer alternate paths through nodes 5 and 6 give SPEF room to split.
pub fn fig4() -> Network {
    let mut b = Network::builder("Fig4");
    let n: Vec<NodeId> = (1..=7)
        .map(|i| {
            b.add_node(
                i.to_string(),
                ((i as f64) * 0.7, ((i * 3) % 5) as f64 * 0.5),
            )
        })
        .collect();
    let l = |k: usize| n[k - 1];
    let links = [
        (1, 4), // e0  = link 1 (the bottleneck)
        (4, 2), // e1  = link 2
        (4, 3), // e2  = link 3
        (1, 5), // e3  = link 4
        (5, 7), // e4  = link 5
        (1, 6), // e5  = link 6
        (6, 7), // e6  = link 7
        (3, 2), // e7  = link 8
        (7, 3), // e8  = link 9
        (5, 6), // e9  = link 10
        (7, 2), // e10 = link 11
        (4, 6), // e11 = link 12
        (5, 4), // e12 = link 13
    ];
    for (u, v) in links {
        b.add_link(l(u), l(v), 5.0);
    }
    // Unused return links (the paper: "we omit six links unused"): these
    // restore strong connectivity and never carry demand.
    for (u, v) in [(2, 1), (3, 1), (7, 1), (2, 4), (2, 3), (7, 5)] {
        b.add_link(l(u), l(v), 5.0);
    }
    b.build().expect("fig4 is valid by construction")
}

/// Number of links of [`fig4`] shown in the paper's Fig. 4/6/7 (link
/// indices 1..13 = edge ids 0..12).
pub const FIG4_SHOWN_LINKS: usize = 13;

/// The demands of the Fig. 4 example: 4 units each for
/// `1→2, 1→3, 3→2, 1→7`.
pub fn fig4_demands() -> TrafficMatrix {
    let mut tm = TrafficMatrix::new(7);
    let pairs = [(1, 2), (1, 3), (3, 2), (1, 7)];
    for (s, t) in pairs {
        tm.set(NodeId::new(s - 1), NodeId::new(t - 1), 4.0);
    }
    tm
}

/// The Abilene backbone: 11 PoPs, 28 directed 10 Gb/s links.
///
/// Capacities are in Gb/s. Coordinates are approximate continental-US
/// positions (longitude, latitude), which drive the Fortz–Thorup demand
/// generator exactly as in the paper's §V.B.
pub fn abilene() -> Network {
    let mut b = Network::builder("Abilene");
    let cities: [(&str, (f64, f64)); 11] = [
        ("Seattle", (-122.3, 47.6)),
        ("Sunnyvale", (-122.0, 37.4)),
        ("LosAngeles", (-118.2, 34.1)),
        ("Denver", (-104.9, 39.7)),
        ("Houston", (-95.4, 29.8)),
        ("KansasCity", (-94.6, 39.1)),
        ("Indianapolis", (-86.2, 39.8)),
        ("Chicago", (-87.6, 41.9)),
        ("Atlanta", (-84.4, 33.7)),
        ("WashingtonDC", (-77.0, 38.9)),
        ("NewYork", (-74.0, 40.7)),
    ];
    let ids: Vec<NodeId> = cities
        .iter()
        .map(|(name, coord)| b.add_node(*name, *coord))
        .collect();
    let by_name = |n: &str| -> NodeId { ids[cities.iter().position(|(c, _)| *c == n).unwrap()] };
    let circuits = [
        ("Seattle", "Sunnyvale"),
        ("Seattle", "Denver"),
        ("Sunnyvale", "LosAngeles"),
        ("Sunnyvale", "Denver"),
        ("LosAngeles", "Houston"),
        ("Denver", "KansasCity"),
        ("Houston", "KansasCity"),
        ("Houston", "Atlanta"),
        ("KansasCity", "Indianapolis"),
        ("Indianapolis", "Chicago"),
        ("Indianapolis", "Atlanta"),
        ("Chicago", "NewYork"),
        ("Atlanta", "WashingtonDC"),
        ("NewYork", "WashingtonDC"),
    ];
    for (u, v) in circuits {
        b.add_duplex_link(by_name(u), by_name(v), 10.0);
    }
    b.build().expect("abilene is valid by construction")
}

/// The CERNET2 backbone (reconstruction): 20 PoPs, 44 directed links —
/// 4 directed links (Beijing↔Wuhan, Wuhan↔Guangzhou) at 10 Gb/s and the
/// remaining 40 at 2.5 Gb/s, matching the 4:1 capacity split the paper
/// describes for its bold backbone links.
///
/// Capacities are in Gb/s; coordinates are approximate (longitude,
/// latitude). Node ids follow the listing order, so `NodeId(0)` = Beijing …
/// `NodeId(19)` = Dalian; the paper's node numbers 1..20 map to
/// `NodeId(k−1)`.
pub fn cernet2() -> Network {
    let mut b = Network::builder("Cernet2");
    let cities: [(&str, (f64, f64)); 20] = [
        ("Beijing", (116.4, 39.9)),   // 1
        ("Tianjin", (117.2, 39.1)),   // 2
        ("Jinan", (117.0, 36.7)),     // 3
        ("Shanghai", (121.5, 31.2)),  // 4
        ("Nanjing", (118.8, 32.1)),   // 5
        ("Hefei", (117.3, 31.9)),     // 6
        ("Hangzhou", (120.2, 30.3)),  // 7
        ("Wuhan", (114.3, 30.6)),     // 8
        ("Changsha", (113.0, 28.2)),  // 9
        ("Guangzhou", (113.3, 23.1)), // 10
        ("Xiamen", (118.1, 24.5)),    // 11
        ("Chengdu", (104.1, 30.7)),   // 12
        ("Chongqing", (106.5, 29.6)), // 13
        ("Xian", (108.9, 34.3)),      // 14
        ("Lanzhou", (103.8, 36.1)),   // 15
        ("Zhengzhou", (113.7, 34.8)), // 16
        ("Harbin", (126.6, 45.8)),    // 17
        ("Changchun", (125.3, 43.9)), // 18
        ("Shenyang", (123.4, 41.8)),  // 19
        ("Dalian", (121.6, 38.9)),    // 20
    ];
    let ids: Vec<NodeId> = cities
        .iter()
        .map(|(name, coord)| b.add_node(*name, *coord))
        .collect();
    let by_name = |n: &str| -> NodeId { ids[cities.iter().position(|(c, _)| *c == n).unwrap()] };
    // The two bold 10 Gb/s trunks.
    b.add_duplex_link(by_name("Beijing"), by_name("Wuhan"), 10.0);
    b.add_duplex_link(by_name("Wuhan"), by_name("Guangzhou"), 10.0);
    // The 2.5 Gb/s circuits.
    let circuits = [
        ("Beijing", "Tianjin"),
        ("Tianjin", "Jinan"),
        ("Jinan", "Nanjing"),
        ("Nanjing", "Shanghai"),
        ("Shanghai", "Hangzhou"),
        ("Hangzhou", "Xiamen"),
        ("Xiamen", "Guangzhou"),
        ("Guangzhou", "Changsha"),
        ("Changsha", "Wuhan"),
        ("Wuhan", "Hefei"),
        ("Wuhan", "Chongqing"),
        ("Chongqing", "Chengdu"),
        ("Chengdu", "Xian"),
        ("Xian", "Lanzhou"),
        ("Xian", "Zhengzhou"),
        ("Zhengzhou", "Beijing"),
        ("Beijing", "Shenyang"),
        ("Shenyang", "Changchun"),
        ("Changchun", "Harbin"),
    ];
    for (u, v) in circuits {
        b.add_duplex_link(by_name(u), by_name(v), 2.5);
    }
    // 22nd circuit: Dalian spur.
    b.add_duplex_link(by_name("Shenyang"), by_name("Dalian"), 2.5);
    b.build().expect("cernet2 is valid by construction")
}

/// The simulation demands of TABLE IV, in Mb/s, keyed by the paper's node
/// numbers.
///
/// * Simple network (Fig. 4): 4 Mb/s each for `1→2, 1→3, 3→2, 1→7`
///   (link capacities 5 Mb/s) — returned by [`table4_simple_demands`].
/// * CERNET2: Gb-scale demands `11→1: 3G, 11→2: 2G, 11→20: 2G, 13→6: 1G,
///   14→1: 4G, 14→8: 2G` — returned by this function, in Gb/s.
pub fn table4_cernet2_demands() -> TrafficMatrix {
    let mut tm = TrafficMatrix::new(20);
    let gb = [
        (11, 1, 3.0),
        (11, 2, 2.0),
        (11, 20, 2.0),
        (13, 6, 1.0),
        (14, 1, 4.0),
        (14, 8, 2.0),
    ];
    for (s, t, d) in gb {
        tm.set(NodeId::new(s - 1), NodeId::new(t - 1), d);
    }
    tm
}

/// The simple-network half of TABLE IV: the Fig. 4 demand set interpreted
/// at 4 Mb/s per pair over 5 Mb/s links (identical structure to
/// [`fig4_demands`], units of Mb/s).
pub fn table4_simple_demands() -> TrafficMatrix {
    fig4_demands()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_graph::{distances_to, traversal};

    #[test]
    fn fig1_matches_table1_layout() {
        let net = fig1();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.capacities()[..4], [1.0, 1.0, 1.0, 1.0]);
        let g = net.graph();
        assert_eq!(
            (g.source(0.into()), g.target(0.into())),
            (NodeId::new(0), NodeId::new(2))
        );
        let tm = fig1_demands();
        assert_eq!(tm.total_demand(), 1.9);
    }

    #[test]
    fn fig4_has_13_shown_links_of_capacity_5() {
        let net = fig4();
        assert_eq!(net.node_count(), 7);
        assert!(net.link_count() >= FIG4_SHOWN_LINKS);
        for e in 0..FIG4_SHOWN_LINKS {
            assert_eq!(net.capacity(spef_graph::EdgeId::new(e)), 5.0);
        }
        let tm = fig4_demands();
        assert_eq!(tm.total_demand(), 16.0);
        assert_eq!(tm.pair_count(), 4);
    }

    #[test]
    fn fig4_bottleneck_is_link_1_under_hop_count_routing() {
        // Unit weights = InvCap on equal capacities. Demands 1→2 and 1→3
        // must both route via node 4 (link 1 = edge 0) as unique 2-hop
        // paths, which is the OSPF overload the paper's Fig. 6 shows.
        let net = fig4();
        let g = net.graph();
        let w = vec![1.0; g.edge_count()];
        for target in [1usize, 2] {
            // node "2" is id 1, node "3" is id 2
            let d = distances_to(g, &w, NodeId::new(target)).unwrap();
            assert_eq!(d[0], 2.0, "1→{} should be 2 hops", target + 1);
            // via node 4 (id 3): distance from 4 is 1
            assert_eq!(d[3], 1.0);
            // via node 5 (id 4) or 6 (id 5) strictly longer
            assert!(d[4] >= 2.0);
            assert!(d[5] >= 2.0);
        }
        // 1→7: two equal 2-hop paths via 5 and via 6.
        let d = distances_to(g, &w, NodeId::new(6)).unwrap();
        assert_eq!(d[0], 2.0);
        assert_eq!(d[4], 1.0);
        assert_eq!(d[5], 1.0);
    }

    #[test]
    fn abilene_matches_table3() {
        let net = abilene();
        assert_eq!(net.node_count(), 11);
        assert_eq!(net.link_count(), 28);
        assert!(net.capacities().iter().all(|&c| c == 10.0));
        assert!(traversal::is_strongly_connected(net.graph()));
    }

    #[test]
    fn cernet2_matches_table3() {
        let net = cernet2();
        assert_eq!(net.node_count(), 20);
        assert_eq!(net.link_count(), 44);
        let tens = net.capacities().iter().filter(|&&c| c == 10.0).count();
        let rest = net.capacities().iter().filter(|&&c| c == 2.5).count();
        assert_eq!(tens, 4, "exactly 4 bold 10G directed links");
        assert_eq!(rest, 40);
        assert!(traversal::is_strongly_connected(net.graph()));
    }

    #[test]
    fn cernet2_node_numbering_matches_paper_mapping() {
        let net = cernet2();
        assert_eq!(net.node_name(NodeId::new(0)), "Beijing");
        assert_eq!(net.node_name(NodeId::new(7)), "Wuhan");
        assert_eq!(net.node_name(NodeId::new(19)), "Dalian");
    }

    #[test]
    fn table4_demands_are_routable_pairs() {
        let net = cernet2();
        let tm = table4_cernet2_demands();
        assert_eq!(tm.pair_count(), 6);
        assert_eq!(tm.total_demand(), 14.0);
        // All sources/destinations exist and are connected.
        let g = net.graph();
        let w = vec![1.0; g.edge_count()];
        for (s, t, _) in tm.pairs() {
            let d = distances_to(g, &w, t).unwrap();
            assert!(d[s.index()].is_finite());
        }
    }

    #[test]
    fn demands_fit_fig1_network_size() {
        let net = fig1();
        let tm = fig1_demands();
        assert_eq!(tm.node_count(), net.node_count());
    }
}
