//! Plain-text import/export of networks and traffic matrices.
//!
//! A deliberately simple line format (no extra dependencies) so topologies
//! and demand sets can be exchanged with other tools, diffed and
//! version-controlled:
//!
//! ```text
//! network Abilene
//! node Seattle -122.3 47.6
//! node Sunnyvale -122.0 37.4
//! link Seattle Sunnyvale 10
//! demand Seattle Sunnyvale 0.35
//! # comments and blank lines are ignored
//! ```
//!
//! `link` lines add a single directed link; use two lines for duplex
//! circuits. `demand` lines are optional and populate the returned traffic
//! matrix.

use std::fmt::Write as _;

use spef_graph::NodeId;

use crate::{Network, TopologyError, TrafficMatrix};

/// Serialises a network (and optionally a demand matrix) to the text
/// format.
///
/// # Panics
///
/// Panics if `traffic` is present and sized differently from `network`.
pub fn to_text(network: &Network, traffic: Option<&TrafficMatrix>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "network {}", network.name());
    for node in network.graph().nodes() {
        let (x, y) = network.coord(node);
        let _ = writeln!(out, "node {} {} {}", network.node_name(node), x, y);
    }
    for (e, u, v) in network.graph().edges() {
        let _ = writeln!(
            out,
            "link {} {} {}",
            network.node_name(u),
            network.node_name(v),
            network.capacity(e)
        );
    }
    if let Some(tm) = traffic {
        assert_eq!(tm.node_count(), network.node_count(), "size mismatch");
        for (s, t, d) in tm.pairs() {
            let _ = writeln!(
                out,
                "demand {} {} {}",
                network.node_name(s),
                network.node_name(t),
                d
            );
        }
    }
    out
}

/// Parses the text format back into a network and its demand matrix
/// (empty when the input has no `demand` lines).
///
/// # Errors
///
/// Returns [`TopologyError::UnknownNode`] for references to undeclared
/// nodes and [`TopologyError::InvalidCapacity`] /
/// [`TopologyError::NotStronglyConnected`] from network validation.
/// Malformed lines are reported as [`TopologyError::UnknownNode`] with the
/// offending text.
pub fn from_text(input: &str) -> Result<(Network, TrafficMatrix), TopologyError> {
    let mut name = "unnamed".to_string();
    let mut nodes: Vec<(String, f64, f64)> = Vec::new();
    let mut links: Vec<(String, String, f64)> = Vec::new();
    let mut demands: Vec<(String, String, f64)> = Vec::new();

    let malformed = |line: &str| TopologyError::UnknownNode(format!("malformed line: {line}"));

    for raw in input.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("network") => {
                name = parts.collect::<Vec<_>>().join(" ");
            }
            Some("node") => {
                let n = parts.next().ok_or_else(|| malformed(line))?;
                let x: f64 = parse_num(parts.next(), line)?;
                let y: f64 = parse_num(parts.next(), line)?;
                nodes.push((n.to_string(), x, y));
            }
            Some("link") => {
                let u = parts.next().ok_or_else(|| malformed(line))?;
                let v = parts.next().ok_or_else(|| malformed(line))?;
                let c: f64 = parse_num(parts.next(), line)?;
                links.push((u.to_string(), v.to_string(), c));
            }
            Some("demand") => {
                let s = parts.next().ok_or_else(|| malformed(line))?;
                let t = parts.next().ok_or_else(|| malformed(line))?;
                let d: f64 = parse_num(parts.next(), line)?;
                demands.push((s.to_string(), t.to_string(), d));
            }
            _ => return Err(malformed(line)),
        }
    }

    let mut builder = Network::builder(name);
    let mut ids: Vec<(String, NodeId)> = Vec::new();
    for (n, x, y) in nodes {
        let id = builder.add_node(n.clone(), (x, y));
        ids.push((n, id));
    }
    let lookup = |name: &str| -> Result<NodeId, TopologyError> {
        ids.iter()
            .find(|(n, _)| n == name)
            .map(|&(_, id)| id)
            .ok_or_else(|| TopologyError::UnknownNode(name.to_string()))
    };
    for (u, v, c) in links {
        builder.add_link(lookup(&u)?, lookup(&v)?, c);
    }
    let network = builder.build()?;
    let mut tm = TrafficMatrix::new(network.node_count());
    for (s, t, d) in demands {
        tm.set(lookup(&s)?, lookup(&t)?, d);
    }
    Ok((network, tm))
}

fn parse_num(token: Option<&str>, line: &str) -> Result<f64, TopologyError> {
    token
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| TopologyError::UnknownNode(format!("malformed line: {line}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard;

    #[test]
    fn roundtrips_abilene_with_demands() {
        let net = standard::abilene();
        let tm = TrafficMatrix::fortz_thorup(&net, 3);
        let text = to_text(&net, Some(&tm));
        let (net2, tm2) = from_text(&text).unwrap();
        assert_eq!(net, net2);
        // Demands survive within float-formatting precision.
        assert_eq!(tm.pair_count(), tm2.pair_count());
        for (s, t, d) in tm.pairs() {
            assert!((tm2.get(s, t) - d).abs() < 1e-12 * d.max(1.0));
        }
    }

    #[test]
    fn roundtrips_all_standard_networks() {
        for net in [
            standard::fig1(),
            standard::fig4(),
            standard::abilene(),
            standard::cernet2(),
        ] {
            let text = to_text(&net, None);
            let (net2, tm2) = from_text(&text).unwrap();
            assert_eq!(net, net2, "{}", net.name());
            assert_eq!(tm2.pair_count(), 0);
        }
    }

    #[test]
    fn parses_hand_written_input() {
        let text = "\
# a triangle
network tri
node a 0 0
node b 1 0
node c 0 1
link a b 2.5
link b a 2.5
link b c 1
link c b 1
link c a 1
link a c 1
demand a c 0.4
";
        let (net, tm) = from_text(text).unwrap();
        assert_eq!(net.name(), "tri");
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 6);
        assert_eq!(tm.get(0.into(), 2.into()), 0.4);
    }

    #[test]
    fn rejects_unknown_nodes_and_garbage() {
        assert!(from_text("link a b 1").is_err());
        assert!(from_text("node a 0 0\nfrobnicate").is_err());
        assert!(from_text("node a 0 0\nnode b 1 1\nlink a b squid").is_err());
    }

    #[test]
    fn rejects_invalid_networks() {
        // One-way link: not strongly connected.
        let text = "node a 0 0\nnode b 1 1\nlink a b 1";
        assert!(matches!(
            from_text(text),
            Err(TopologyError::NotStronglyConnected)
        ));
    }
}
