//! Synthetic network generators matching §V.B of the paper.
//!
//! * [`random_network`] — "the probability of having a link between two
//!   nodes is a constant parameter, and all link capacities are 1 unit";
//!   we additionally *target an exact link count* so the generated networks
//!   reproduce the sizes of TABLE III (Rand50a: 242, Rand50b: 230,
//!   Rand100: 392 directed links).
//! * [`hierarchical_network`] — GT-ITM-style 2-level networks "consisting
//!   of two kinds of links: local access links with 1 unit capacity and
//!   long distance links with 5-unit capacity" (Hier50a: 222, Hier50b: 152
//!   directed links).
//!
//! Both generators guarantee strong connectivity (a random spanning tree is
//! laid down first and every link is duplex) and are fully deterministic in
//! the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spef_graph::NodeId;

use crate::{Network, NetworkBuilder};

/// Capacity of local access links in 2-level networks (paper: 1 unit).
pub const LOCAL_CAPACITY: f64 = 1.0;
/// Capacity of long-distance links in 2-level networks (paper: 5 units).
pub const LONG_DISTANCE_CAPACITY: f64 = 5.0;

/// Capacity of core-ring and core-chord links in [`tiered_network`]s.
pub const CORE_CAPACITY: f64 = 40.0;
/// Capacity of aggregation-to-core uplinks in [`tiered_network`]s.
pub const AGGREGATION_CAPACITY: f64 = 10.0;
/// Capacity of edge-to-aggregation access links in [`tiered_network`]s.
pub const EDGE_CAPACITY: f64 = 2.5;

/// Generates a connected random network with `n` nodes, exactly
/// `directed_links` directed links (all capacity 1), and coordinates in the
/// unit square.
///
/// # Panics
///
/// Panics if `directed_links` is odd, below `2(n−1)` (a spanning tree needs
/// that many), or above `n(n−1)` (simple-graph maximum), or if `n < 2`.
///
/// # Example
///
/// ```
/// use spef_topology::gen::random_network;
///
/// let net = random_network("Rand50a", 50, 242, 1);
/// assert_eq!(net.node_count(), 50);
/// assert_eq!(net.link_count(), 242);
/// ```
pub fn random_network(name: &str, n: usize, directed_links: usize, seed: u64) -> Network {
    assert!(n >= 2, "need at least 2 nodes");
    assert!(
        directed_links.is_multiple_of(2),
        "directed link count must be even"
    );
    let undirected = directed_links / 2;
    assert!(
        undirected >= n - 1,
        "need at least {} undirected links for connectivity",
        n - 1
    );
    assert!(
        undirected <= n * (n - 1) / 2,
        "too many links for a simple graph on {n} nodes"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Network::builder(name);
    for i in 0..n {
        b.add_node(
            format!("r{i}"),
            (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
        );
    }
    let mut present = AdjacencySet::new(n);
    spanning_tree(
        &mut b,
        &mut rng,
        &mut present,
        &(0..n).collect::<Vec<_>>(),
        1.0,
    );
    fill_random_links(&mut b, &mut rng, &mut present, undirected, |_, _| 1.0);
    b.build().expect("random generator output is connected")
}

/// Generates a GT-ITM-style 2-level hierarchical network: `domains`
/// clusters of `per_domain` nodes, local links of capacity 1 inside a
/// domain, long-distance links of capacity 5 between domains, exactly
/// `directed_links` directed links in total.
///
/// # Panics
///
/// Panics if `directed_links` is odd or too small to connect the topology
/// (`2·(nodes − 1)` is the minimum), or if `domains`/`per_domain` is zero,
/// or if the count exceeds the simple-graph maximum.
///
/// # Example
///
/// ```
/// use spef_topology::gen::hierarchical_network;
///
/// let net = hierarchical_network("Hier50a", 5, 10, 222, 1);
/// assert_eq!(net.node_count(), 50);
/// assert_eq!(net.link_count(), 222);
/// ```
pub fn hierarchical_network(
    name: &str,
    domains: usize,
    per_domain: usize,
    directed_links: usize,
    seed: u64,
) -> Network {
    assert!(domains >= 1 && per_domain >= 1, "empty hierarchy");
    assert!(
        directed_links.is_multiple_of(2),
        "directed link count must be even"
    );
    let n = domains * per_domain;
    let undirected = directed_links / 2;
    assert!(
        undirected >= n - 1,
        "need at least {} undirected links for connectivity",
        n - 1
    );
    assert!(
        undirected <= n * (n - 1) / 2,
        "too many links for a simple graph on {n} nodes"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Network::builder(name);
    // Domain centres on a circle of radius 5; members jittered around them.
    for d in 0..domains {
        let angle = std::f64::consts::TAU * d as f64 / domains as f64;
        let (cx, cy) = (5.0 * angle.cos(), 5.0 * angle.sin());
        for k in 0..per_domain {
            b.add_node(
                format!("d{d}n{k}"),
                (
                    cx + rng.random_range(-0.5..0.5),
                    cy + rng.random_range(-0.5..0.5),
                ),
            );
        }
    }
    let domain_of = move |v: usize| v / per_domain;

    let mut present = AdjacencySet::new(n);
    // Local spanning tree inside each domain.
    for d in 0..domains {
        let members: Vec<usize> = (d * per_domain..(d + 1) * per_domain).collect();
        spanning_tree(&mut b, &mut rng, &mut present, &members, LOCAL_CAPACITY);
    }
    // Long-distance spanning tree over the domains (random member pairs).
    for d in 1..domains {
        let prev = rng.random_range(0..d);
        let u = prev * per_domain + rng.random_range(0..per_domain);
        let v = d * per_domain + rng.random_range(0..per_domain);
        present.insert(u, v);
        b.add_duplex_link(NodeId::new(u), NodeId::new(v), LONG_DISTANCE_CAPACITY);
    }
    // Random extras, classed by whether they cross domains.
    fill_random_links(&mut b, &mut rng, &mut present, undirected, |u, v| {
        if domain_of(u) == domain_of(v) {
            LOCAL_CAPACITY
        } else {
            LONG_DISTANCE_CAPACITY
        }
    });
    b.build()
        .expect("hierarchical generator output is connected")
}

/// Generates a 3-tier ISP-like network: a ring of `core` routers with
/// random chords ([`CORE_CAPACITY`]), `agg_per_core` aggregation routers
/// per core pod, each dual-homed to its own core and one random other core
/// ([`AGGREGATION_CAPACITY`]), and `edge_per_agg` edge routers per
/// aggregation router, each homed to its aggregation router plus one
/// redundant same-pod aggregation router ([`EDGE_CAPACITY`]).
///
/// The tier structure is what makes thousand-node scaling sweeps
/// representative: routing DAGs are shallow and wide like real ISP
/// topologies, capacities taper from core to edge, and every node pair is
/// connected through at most two tier crossings. The generator is fully
/// deterministic in the seed and guarantees strong connectivity by
/// construction (every link is duplex; edges hang off aggregations, which
/// hang off the connected core).
///
/// Node count is `core · (1 + agg_per_core · (1 + edge_per_agg))`; node
/// ids are assigned core tier first, then aggregation, then edge.
///
/// # Panics
///
/// Panics if `core` is zero.
///
/// # Example
///
/// ```
/// use spef_topology::gen::tiered_network;
///
/// let net = tiered_network("Tier200", 8, 4, 5, 1);
/// assert_eq!(net.node_count(), 8 + 8 * 4 + 8 * 4 * 5);
/// ```
pub fn tiered_network(
    name: &str,
    core: usize,
    agg_per_core: usize,
    edge_per_agg: usize,
    seed: u64,
) -> Network {
    assert!(core >= 1, "need at least one core router");
    let aggs = core * agg_per_core;
    let edges = aggs * edge_per_agg;
    let n = core + aggs + edges;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Network::builder(name);
    // Cores on an inner circle, aggregations fanned around their core's
    // angle, edges jittered further out.
    for c in 0..core {
        let angle = std::f64::consts::TAU * c as f64 / core as f64;
        b.add_node(format!("core{c}"), (angle.cos(), angle.sin()));
    }
    for q in 0..aggs {
        let pod = q / agg_per_core.max(1);
        let angle = std::f64::consts::TAU * pod as f64 / core as f64;
        b.add_node(
            format!("agg{q}"),
            (
                3.0 * angle.cos() + rng.random_range(-0.3..0.3),
                3.0 * angle.sin() + rng.random_range(-0.3..0.3),
            ),
        );
    }
    for r in 0..edges {
        let pod = r / (agg_per_core.max(1) * edge_per_agg.max(1));
        let angle = std::f64::consts::TAU * pod as f64 / core as f64;
        b.add_node(
            format!("edge{r}"),
            (
                5.0 * angle.cos() + rng.random_range(-0.5..0.5),
                5.0 * angle.sin() + rng.random_range(-0.5..0.5),
            ),
        );
    }

    let mut present = AdjacencySet::new(n);
    let link = |present: &mut AdjacencySet, b: &mut NetworkBuilder, u: usize, v: usize, c| {
        present.insert(u, v);
        b.add_duplex_link(NodeId::new(u), NodeId::new(v), c);
    };

    // Core ring plus core/2 random chords.
    for c in 0..core {
        let next = (c + 1) % core;
        if next != c && !present.contains(c, next) {
            link(&mut present, &mut b, c, next, CORE_CAPACITY);
        }
    }
    if core >= 4 {
        let mut chords = core / 2;
        while chords > 0 {
            let u = rng.random_range(0..core);
            let v = rng.random_range(0..core);
            if u == v || present.contains(u, v) {
                continue;
            }
            link(&mut present, &mut b, u, v, CORE_CAPACITY);
            chords -= 1;
        }
    }

    // Aggregation routers: primary home in their pod, secondary home on a
    // random other core.
    for q in 0..aggs {
        let pod = q / agg_per_core;
        let a = core + q;
        link(&mut present, &mut b, a, pod, AGGREGATION_CAPACITY);
        if core > 1 {
            let other = (pod + 1 + rng.random_range(0..core - 1)) % core;
            link(&mut present, &mut b, a, other, AGGREGATION_CAPACITY);
        }
    }

    // Edge routers: primary aggregation home, plus one redundant link to a
    // different aggregation router of the same pod.
    for r in 0..edges {
        let q = r / edge_per_agg;
        let pod = q / agg_per_core;
        let e = core + aggs + r;
        link(&mut present, &mut b, e, core + q, EDGE_CAPACITY);
        if agg_per_core > 1 {
            let local = q % agg_per_core;
            let backup = (local + 1 + rng.random_range(0..agg_per_core - 1)) % agg_per_core;
            link(
                &mut present,
                &mut b,
                e,
                core + pod * agg_per_core + backup,
                EDGE_CAPACITY,
            );
        }
    }

    b.build().expect("tiered generator output is connected")
}

/// Tracks which undirected pairs already have a link.
struct AdjacencySet {
    n: usize,
    present: Vec<bool>,
    count: usize,
}

impl AdjacencySet {
    fn new(n: usize) -> Self {
        AdjacencySet {
            n,
            present: vec![false; n * n],
            count: 0,
        }
    }

    fn contains(&self, u: usize, v: usize) -> bool {
        self.present[u * self.n + v]
    }

    fn insert(&mut self, u: usize, v: usize) {
        debug_assert!(u != v && !self.contains(u, v));
        self.present[u * self.n + v] = true;
        self.present[v * self.n + u] = true;
        self.count += 1;
    }
}

/// Wires `members` into a random spanning tree with duplex links of the
/// given capacity.
fn spanning_tree(
    b: &mut NetworkBuilder,
    rng: &mut StdRng,
    present: &mut AdjacencySet,
    members: &[usize],
    capacity: f64,
) {
    for (i, &v) in members.iter().enumerate().skip(1) {
        let u = members[rng.random_range(0..i)];
        present.insert(u, v);
        b.add_duplex_link(NodeId::new(u), NodeId::new(v), capacity);
    }
}

/// Adds uniformly random absent pairs until `present.count == target`.
fn fill_random_links(
    b: &mut NetworkBuilder,
    rng: &mut StdRng,
    present: &mut AdjacencySet,
    target: usize,
    capacity_of: impl Fn(usize, usize) -> f64,
) {
    let n = present.n;
    while present.count < target {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || present.contains(u, v) {
            continue;
        }
        present.insert(u, v);
        b.add_duplex_link(NodeId::new(u), NodeId::new(v), capacity_of(u, v));
    }
}

/// Builds the five synthetic networks of TABLE III with fixed seeds.
///
/// Returned in TABLE III order: Hier50a, Hier50b, Rand50a, Rand50b,
/// Rand100.
pub fn table3_synthetic_networks() -> Vec<Network> {
    vec![
        hierarchical_network("Hier50a", 5, 10, 222, 0xA11CE),
        hierarchical_network("Hier50b", 5, 10, 152, 0xB0B),
        random_network("Rand50a", 50, 242, 0xC0FFEE),
        random_network("Rand50b", 50, 230, 0xD1CE),
        random_network("Rand100", 100, 392, 0xFEED),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_graph::traversal;

    #[test]
    fn random_network_hits_exact_size() {
        for (links, seed) in [(242usize, 1u64), (230, 2), (98, 3)] {
            let net = random_network("r", 50, links, seed);
            assert_eq!(net.link_count(), links);
            assert!(traversal::is_strongly_connected(net.graph()));
            assert!(net.capacities().iter().all(|&c| c == 1.0));
        }
    }

    #[test]
    fn random_network_is_deterministic() {
        let a = random_network("r", 30, 120, 7);
        let b = random_network("r", 30, 120, 7);
        assert_eq!(a, b);
        let c = random_network("r", 30, 120, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn hierarchical_network_hits_exact_size_and_capacity_classes() {
        let net = hierarchical_network("h", 5, 10, 222, 9);
        assert_eq!(net.node_count(), 50);
        assert_eq!(net.link_count(), 222);
        assert!(traversal::is_strongly_connected(net.graph()));
        let locals = net
            .capacities()
            .iter()
            .filter(|&&c| c == LOCAL_CAPACITY)
            .count();
        let longs = net
            .capacities()
            .iter()
            .filter(|&&c| c == LONG_DISTANCE_CAPACITY)
            .count();
        assert_eq!(locals + longs, 222);
        // At least the intra-domain trees are local and the inter-domain
        // tree is long-distance.
        assert!(locals >= 2 * 5 * 9);
        assert!(longs >= 2 * 4);
    }

    #[test]
    fn hierarchical_local_links_stay_inside_domains() {
        let net = hierarchical_network("h", 5, 10, 200, 11);
        let g = net.graph();
        for (e, u, v) in g.edges() {
            let same_domain = u.index() / 10 == v.index() / 10;
            if net.capacity(e) == LOCAL_CAPACITY {
                assert!(same_domain, "local link {e} crosses domains");
            } else {
                assert!(!same_domain, "long link {e} inside a domain");
            }
        }
    }

    #[test]
    fn table3_synthetic_networks_match_paper_sizes() {
        let nets = table3_synthetic_networks();
        let expected = [
            ("Hier50a", 50, 222),
            ("Hier50b", 50, 152),
            ("Rand50a", 50, 242),
            ("Rand50b", 50, 230),
            ("Rand100", 100, 392),
        ];
        for (net, (name, nodes, links)) in nets.iter().zip(expected) {
            assert_eq!(net.name(), name);
            assert_eq!(net.node_count(), nodes, "{name} node count");
            assert_eq!(net.link_count(), links, "{name} link count");
            assert!(traversal::is_strongly_connected(net.graph()));
        }
    }

    #[test]
    fn tiered_network_structure_and_determinism() {
        let net = tiered_network("t", 8, 4, 5, 1);
        assert_eq!(net.node_count(), 8 + 32 + 160);
        // Ring 8 + chords 4 + agg dual-homes 64 + edge dual-homes 320,
        // each duplex.
        assert_eq!(net.link_count(), 2 * (8 + 4 + 64 + 320));
        assert!(traversal::is_strongly_connected(net.graph()));
        assert_eq!(net, tiered_network("t", 8, 4, 5, 1));
        assert_ne!(net, tiered_network("t", 8, 4, 5, 2));
        for cap in [CORE_CAPACITY, AGGREGATION_CAPACITY, EDGE_CAPACITY] {
            assert!(net.capacities().contains(&cap));
        }
        assert!(net.capacities().iter().all(|&c| [
            CORE_CAPACITY,
            AGGREGATION_CAPACITY,
            EDGE_CAPACITY
        ]
        .contains(&c)));
    }

    #[test]
    fn tiered_network_degenerate_tiers_stay_connected() {
        for (core, agg, edge) in [(1, 1, 1), (2, 1, 0), (3, 0, 0), (1, 3, 2)] {
            let net = tiered_network("t", core, agg, edge, 7);
            assert_eq!(net.node_count(), core + core * agg + core * agg * edge);
            assert!(
                traversal::is_strongly_connected(net.graph()),
                "{core}/{agg}/{edge}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_link_count_panics() {
        random_network("r", 10, 37, 0);
    }

    #[test]
    #[should_panic(expected = "connectivity")]
    fn too_few_links_panics() {
        random_network("r", 10, 16, 0);
    }

    #[test]
    #[should_panic(expected = "too many links")]
    fn too_many_links_panics() {
        random_network("r", 4, 14, 0);
    }

    #[test]
    fn minimum_tree_size_works() {
        let net = random_network("tree", 10, 18, 5);
        assert_eq!(net.link_count(), 18);
        assert!(traversal::is_strongly_connected(net.graph()));
    }
}
