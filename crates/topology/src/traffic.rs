use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use spef_graph::NodeId;

use crate::Network;

/// A traffic matrix: expected demand `d_st` for every ordered node pair.
///
/// This is the `D` of the paper's `TE(V, G, c, D)` — the per-destination
/// demand vectors `d^t` are views of this matrix.
///
/// # Example
///
/// ```
/// use spef_topology::TrafficMatrix;
///
/// let mut tm = TrafficMatrix::new(3);
/// tm.set(0.into(), 2.into(), 1.5);
/// assert_eq!(tm.get(0.into(), 2.into()), 1.5);
/// assert_eq!(tm.total_demand(), 1.5);
/// assert_eq!(tm.pairs().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    /// Dense row-major demands: `demands[s * n + t]`.
    demands: Vec<f64>,
}

impl TrafficMatrix {
    /// Creates an all-zero matrix over `n` nodes.
    pub fn new(n: usize) -> Self {
        TrafficMatrix {
            n,
            demands: vec![0.0; n * n],
        }
    }

    /// Number of nodes the matrix is defined over.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Sets the demand from `s` to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `s == t`, either id is out of range, or `demand` is
    /// negative or not finite.
    pub fn set(&mut self, s: NodeId, t: NodeId, demand: f64) {
        assert_ne!(s, t, "self-demand is not meaningful");
        assert!(
            demand.is_finite() && demand >= 0.0,
            "demand must be finite and non-negative, got {demand}"
        );
        self.demands[s.index() * self.n + t.index()] = demand;
    }

    /// Demand from `s` to `t` (zero when unset).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn get(&self, s: NodeId, t: NodeId) -> f64 {
        self.demands[s.index() * self.n + t.index()]
    }

    /// Iterates over the `(source, destination, demand)` triples with
    /// strictly positive demand.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.demands
            .iter()
            .enumerate()
            .filter(|&(_i, &d)| d > 0.0)
            .map(|(i, &d)| (NodeId::new(i / self.n), NodeId::new(i % self.n), d))
    }

    /// Destinations that receive positive demand — the commodity set `D` of
    /// the multi-commodity flow formulation.
    pub fn destinations(&self) -> Vec<NodeId> {
        let mut dests: Vec<NodeId> = (0..self.n)
            .filter(|&t| (0..self.n).any(|s| self.demands[s * self.n + t] > 0.0))
            .map(NodeId::new)
            .collect();
        dests.sort();
        dests
    }

    /// The per-source demand vector `d^t` toward destination `t`
    /// (`d^t_s = d_st`, zero at `t` itself).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn demands_to(&self, t: NodeId) -> Vec<f64> {
        let mut out = Vec::new();
        self.demands_to_into(t, &mut out);
        out
    }

    /// Writes the per-source demand vector `d^t` into `out` (resized to
    /// `node_count`), the allocation-free variant solver loops use.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn demands_to_into(&self, t: NodeId, out: &mut Vec<f64>) {
        assert!(t.index() < self.n, "destination {t} out of range");
        out.resize(self.n, 0.0);
        for (s, slot) in out.iter_mut().enumerate() {
            *slot = if s == t.index() {
                0.0
            } else {
                self.demands[s * self.n + t.index()]
            };
        }
    }

    /// Sum of all demands.
    pub fn total_demand(&self) -> f64 {
        self.demands.iter().sum()
    }

    /// The paper's *network load*: total demand over total capacity.
    ///
    /// # Panics
    ///
    /// Panics if the matrix and network sizes disagree.
    pub fn network_load(&self, network: &Network) -> f64 {
        assert_eq!(self.n, network.node_count(), "size mismatch");
        self.total_demand() / network.total_capacity()
    }

    /// Returns a copy with every demand multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> TrafficMatrix {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        TrafficMatrix {
            n: self.n,
            demands: self.demands.iter().map(|d| d * factor).collect(),
        }
    }

    /// Returns a copy uniformly rescaled so that
    /// [`network_load`](Self::network_load) equals `load` — how the paper
    /// creates "different congestion levels" from one base matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is all-zero or sizes disagree.
    pub fn scaled_to_network_load(&self, network: &Network, load: f64) -> TrafficMatrix {
        let current = self.network_load(network);
        assert!(current > 0.0, "cannot rescale an all-zero traffic matrix");
        self.scaled(load / current)
    }

    /// Number of ordered pairs with positive demand.
    pub fn pair_count(&self) -> usize {
        self.demands.iter().filter(|&&d| d > 0.0).count()
    }

    /// Generates demands with the Fortz–Thorup model used for the paper's
    /// Abilene and synthetic test cases: for each ordered pair `(s, t)`,
    ///
    /// `d_st = O_s · D_t · C_st · e^(−δ(s,t) / 2Δ)`
    ///
    /// with `O, D, C ~ U[0,1]` i.i.d., `δ` the Euclidean node distance and
    /// `Δ` the network diameter. The absolute scale is arbitrary; combine
    /// with [`scaled_to_network_load`](Self::scaled_to_network_load).
    pub fn fortz_thorup(network: &Network, seed: u64) -> TrafficMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = network.node_count();
        let o: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let d: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let delta_max = network.max_distance().max(f64::MIN_POSITIVE);
        let mut tm = TrafficMatrix::new(n);
        for (s, o_s) in o.iter().enumerate() {
            for (t, d_t) in d.iter().enumerate() {
                if s == t {
                    continue;
                }
                let c: f64 = rng.random_range(0.0..1.0);
                let dist = network.euclidean_distance(NodeId::new(s), NodeId::new(t));
                let demand = o_s * d_t * c * (-dist / (2.0 * delta_max)).exp();
                tm.set(NodeId::new(s), NodeId::new(t), demand);
            }
        }
        tm
    }

    /// Generates demands with a gravity model,
    /// `d_st ∝ m_s · m_t`, with log-normal node masses
    /// `m_i = exp(σ·z_i), z_i ~ N(0,1)`.
    ///
    /// This stands in for the paper's CERNET2 demands, which were fitted
    /// from proprietary NetFlow samples with a gravity model; the log-normal
    /// masses reproduce the heavy-tailed skew of real PoP loads. The
    /// absolute scale is arbitrary.
    pub fn gravity(network: &Network, sigma: f64, seed: u64) -> TrafficMatrix {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be finite");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = network.node_count();
        let masses: Vec<f64> = (0..n)
            .map(|_| (sigma * standard_normal(&mut rng)).exp())
            .collect();
        let total: f64 = masses.iter().sum();
        let mut tm = TrafficMatrix::new(n);
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    tm.set(
                        NodeId::new(s),
                        NodeId::new(t),
                        masses[s] * masses[t] / total,
                    );
                }
            }
        }
        tm
    }
}

/// One standard-normal sample via Box–Muller (the offline `rand` crate has
/// no normal distribution).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard;

    #[test]
    fn set_get_roundtrip() {
        let mut tm = TrafficMatrix::new(4);
        tm.set(1.into(), 3.into(), 2.5);
        assert_eq!(tm.get(1.into(), 3.into()), 2.5);
        assert_eq!(tm.get(3.into(), 1.into()), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-demand")]
    fn self_demand_panics() {
        let mut tm = TrafficMatrix::new(2);
        tm.set(0.into(), 0.into(), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_panics() {
        let mut tm = TrafficMatrix::new(2);
        tm.set(0.into(), 1.into(), -1.0);
    }

    #[test]
    fn destinations_and_demand_vectors() {
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 2.into(), 1.0);
        tm.set(1.into(), 2.into(), 2.0);
        tm.set(2.into(), 3.into(), 0.9);
        assert_eq!(tm.destinations(), vec![NodeId::new(2), NodeId::new(3)]);
        assert_eq!(tm.demands_to(2.into()), vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(tm.demands_to(3.into()), vec![0.0, 0.0, 0.9, 0.0]);
        assert_eq!(tm.pair_count(), 3);
    }

    #[test]
    fn scaling_and_network_load() {
        let net = standard::fig1();
        let mut tm = TrafficMatrix::new(4);
        tm.set(0.into(), 2.into(), 1.0);
        tm.set(2.into(), 3.into(), 0.9);
        // Fig. 1 has 6 unit-capacity links (4 reported + 2 returns).
        assert!((tm.network_load(&net) - 1.9 / 6.0).abs() < 1e-12);
        let rescaled = tm.scaled_to_network_load(&net, 0.25);
        assert!((rescaled.network_load(&net) - 0.25).abs() < 1e-12);
        let doubled = tm.scaled(2.0);
        assert_eq!(doubled.get(0.into(), 2.into()), 2.0);
    }

    #[test]
    fn fortz_thorup_is_deterministic_and_positive() {
        let net = standard::abilene();
        let a = TrafficMatrix::fortz_thorup(&net, 7);
        let b = TrafficMatrix::fortz_thorup(&net, 7);
        assert_eq!(a, b);
        let c = TrafficMatrix::fortz_thorup(&net, 8);
        assert_ne!(a, c);
        // All off-diagonal pairs get some (possibly tiny) demand.
        assert_eq!(a.pair_count(), 11 * 10);
        assert!(a.total_demand() > 0.0);
    }

    #[test]
    fn fortz_thorup_decays_with_distance() {
        // Demands toward far-away nodes are damped by exp(-d/2Δ) on
        // average; check the aggregate effect over many seeds.
        let net = standard::abilene();
        let mut near = 0.0;
        let mut far = 0.0;
        let (mut near_n, mut far_n) = (0, 0);
        for seed in 0..50 {
            let tm = TrafficMatrix::fortz_thorup(&net, seed);
            let dmax = net.max_distance();
            for (s, t, d) in tm.pairs() {
                if net.euclidean_distance(s, t) < 0.3 * dmax {
                    near += d;
                    near_n += 1;
                } else if net.euclidean_distance(s, t) > 0.7 * dmax {
                    far += d;
                    far_n += 1;
                }
            }
        }
        assert!(near / near_n as f64 > far / far_n as f64);
    }

    #[test]
    fn gravity_is_deterministic_and_skewed() {
        let net = standard::cernet2();
        let a = TrafficMatrix::gravity(&net, 1.0, 3);
        let b = TrafficMatrix::gravity(&net, 1.0, 3);
        assert_eq!(a, b);
        // With sigma > 0 the demand distribution is skewed: the max pair
        // demand well exceeds the mean.
        let demands: Vec<f64> = a.pairs().map(|(_, _, d)| d).collect();
        let mean = demands.iter().sum::<f64>() / demands.len() as f64;
        let max = demands.iter().cloned().fold(0.0, f64::max);
        assert!(max > 3.0 * mean);
    }

    #[test]
    fn gravity_sigma_zero_is_uniform() {
        let net = standard::fig1();
        let tm = TrafficMatrix::gravity(&net, 0.0, 1);
        let demands: Vec<f64> = tm.pairs().map(|(_, _, d)| d).collect();
        for d in &demands {
            assert!((d - demands[0]).abs() < 1e-12);
        }
    }
}
