//! Evaluation networks and traffic matrices for the SPEF reproduction.
//!
//! §V.B of the paper (TABLE III) evaluates SPEF on seven networks:
//!
//! | Net. ID  | Topology  | Nodes | Links |
//! |----------|-----------|-------|-------|
//! | Abilene  | backbone  | 11    | 28    |
//! | Cernet2  | backbone  | 20    | 44    |
//! | Hier50a  | 2-level   | 50    | 222   |
//! | Hier50b  | 2-level   | 50    | 152   |
//! | Rand50a  | random    | 50    | 242   |
//! | Rand50b  | random    | 50    | 230   |
//! | Rand100  | random    | 100   | 392   |
//!
//! plus the two pedagogical examples of Fig. 1 (4 nodes) and Fig. 4
//! (7 nodes, 13 links). This crate provides all of them:
//!
//! * [`Network`] — a directed graph with per-link capacities, node names and
//!   planar coordinates;
//! * [`standard`] — Fig. 1, Fig. 4, Abilene and CERNET2 (the latter two
//!   reconstructed; see `DESIGN.md` for the substitution notes);
//! * [`gen`] — GT-ITM-style 2-level hierarchical networks and random
//!   networks with exact link-count targeting;
//! * [`TrafficMatrix`] and its generators — the Fortz–Thorup demand model
//!   (used for Abilene and the synthetic networks) and a gravity model
//!   standing in for the paper's NetFlow-derived CERNET2 demands.
//!
//! # Example
//!
//! ```
//! use spef_topology::{standard, TrafficMatrix};
//!
//! let net = standard::abilene();
//! assert_eq!(net.node_count(), 11);
//! assert_eq!(net.link_count(), 28);
//!
//! let tm = TrafficMatrix::fortz_thorup(&net, 42);
//! let tm = tm.scaled_to_network_load(&net, 0.17);
//! assert!((tm.network_load(&net) - 0.17).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
mod network;
mod traffic;

pub mod gen;
pub mod standard;

pub use network::{Network, NetworkBuilder, TopologyError};
pub use traffic::TrafficMatrix;
