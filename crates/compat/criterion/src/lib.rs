//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API surface the `spef-bench` targets use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`criterion_group!`] and [`criterion_main!`] — with a plain wall-clock
//! measurement loop: a warm-up call, then `sample_size` timed samples, with
//! min / mean / max reported on stdout. No statistics, plots, or saved
//! baselines; the point is that `cargo bench` runs the real workloads and
//! prints comparable numbers on a machine without registry access.
//!
//! When invoked by `cargo test` (which passes `--test` to bench targets),
//! every benchmark body runs exactly once, mirroring upstream's smoke-test
//! mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark context handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters: if self.test_mode { 1 } else { self.sample_size },
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Starts a named group of benchmarks sharing configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks (upstream: shares sampling configuration).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iters = if self.criterion.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Finishes the group (upstream flushes reports here; a no-op in the
    /// shim, kept so call sites stay source-compatible).
    pub fn finish(&mut self) {}
}

/// Measures one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Calls `routine` once for warm-up, then `sample_size` timed times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {id:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "bench {id:<40} min {:>12?}  mean {:>12?}  max {:>12?}  ({} samples)",
            min,
            mean,
            max,
            self.samples.len()
        );
    }
}

/// Declares a benchmark group: a function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut calls = 0;
        c.bench_function("demo", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion {
            sample_size: 10,
            test_mode: false,
        };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("demo", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 3);
    }
}
