//! The JSON-shaped value tree all (de)serialization flows through.

/// A JSON number, kept wide enough that `u64` seeds and negative integers
/// survive a round-trip without going through `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An unsigned integer (anything parsed without sign or fraction).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // One side integral, the other not: compare as floats.
            }
        }
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {}
        }
        self.as_f64_lossy() == other.as_f64_lossy()
    }
}

impl Number {
    /// The value as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::UInt(n) => Some(n),
            Number::Int(n) => u64::try_from(n).ok(),
            Number::Float(x) => {
                if x.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&x) {
                    Some(x as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::UInt(n) => i64::try_from(n).ok(),
            Number::Int(n) => Some(n),
            Number::Float(x) => {
                if x.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&x) {
                    Some(x as i64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `f64` (integers convert, possibly losing precision
    /// beyond 2^53).
    pub fn as_f64_lossy(&self) -> f64 {
        match *self {
            Number::UInt(n) => n as f64,
            Number::Int(n) => n as f64,
            Number::Float(x) => x,
        }
    }
}

/// A JSON-shaped document tree.
///
/// Objects preserve insertion order (serialized structs keep their field
/// declaration order), matching what `serde_json` users expect from
/// `preserve_order`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of field name to value.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64_lossy()),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(Number::Float(x))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::UInt(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(Number::Int(n))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_equality_mixes_representations() {
        assert_eq!(Number::UInt(5), Number::Float(5.0));
        assert_eq!(Number::Int(-2), Number::Float(-2.0));
        assert_ne!(Number::UInt(5), Number::Float(5.5));
    }

    #[test]
    fn u64_seeds_do_not_lose_precision() {
        let big = u64::MAX - 1;
        let n = Number::UInt(big);
        assert_eq!(n.as_u64(), Some(big));
    }

    #[test]
    fn field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::from(1.0))]);
        assert!(v.get_field("a").is_some());
        assert!(v.get_field("b").is_none());
    }
}
