//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! compact serialization framework with serde's *shape* — `Serialize` /
//! `Deserialize` traits plus `#[derive(Serialize, Deserialize)]` — but a much
//! simpler contract: types convert to and from a JSON-shaped [`Value`] tree
//! instead of driving a streaming serializer. The sibling `serde_json` shim
//! renders and parses `Value` as JSON text.
//!
//! Supported by the derive macros (see `serde_derive`): structs with named
//! fields, newtype structs (serialized transparently, like upstream), and
//! fieldless enums (serialized as the variant-name string).
//!
//! ```
//! use serde::{Deserialize, Serialize, Value};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Point {
//!     x: f64,
//!     y: f64,
//! }
//!
//! let v = Point { x: 1.0, y: -2.5 }.to_value();
//! assert_eq!(v.get_field("y").unwrap(), &Value::from(-2.5));
//! let back = Point::from_value(&v).unwrap();
//! assert_eq!(back, Point { x: 1.0, y: -2.5 });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Number, Value};

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape or domain doesn't match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_string())
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        value
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        n
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        value
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        n
                    ))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, got {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let back = Vec::<(usize, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_value(&9u64.to_value()).unwrap(),
            Some(9)
        );
    }

    #[test]
    fn range_errors_are_reported() {
        let v = Value::Number(Number::UInt(300));
        assert!(u8::from_value(&v).is_err());
        assert!(bool::from_value(&v).is_err());
    }
}
