//! Collection strategies.

use core::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes, converted from `usize` ranges or a fixed
/// length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max_inclusive: len,
        }
    }
}

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng
            .rng()
            .random_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::deterministic("vec_respects_size_range");
        let s = vec(0.0f64..5.0, 0..64);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 64);
            assert!(v.iter().all(|x| (0.0..5.0).contains(x)));
        }
        let fixed = vec(0u64..9, 7..=7);
        assert_eq!(fixed.sample(&mut rng).len(), 7);
    }
}
