//! Test-runner configuration and the deterministic RNG behind sampling.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Error a property body can return (upstream: `TestCaseError`); the shim
/// only ever sees it through `?`/`return Err(...)` in test bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "test case failed: {}", self.0)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim keeps that fidelity.
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies: seeded from the test's name, so every run
/// of a given test samples the same inputs.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// The underlying `rand` generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
