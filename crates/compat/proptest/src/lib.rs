//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! Implements the API surface this workspace's property tests use —
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`Just`], [`prop_oneof!`], the
//! [`proptest!`] test macro and `prop_assert*` — with one simplification:
//! failing cases are **not shrunk**; the failing input is reported by the
//! panic message of the assertion that tripped.
//!
//! Sampling is fully deterministic: each generated test derives its RNG seed
//! from the test's name, so failures reproduce across runs and machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import module used by every property test.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests.
///
/// Each function takes `pattern in strategy` arguments; the macro expands it
/// into a `#[test]` that samples `config.cases` inputs and runs the body on
/// each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $cfg;
                let strategies = ($($strategy,)+);
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&strategies, &mut rng);
                    // Property bodies may `return Ok(())` to skip a case
                    // (upstream returns Result), so run them in a closure.
                    let outcome = (move || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        Ok(())
                    })();
                    outcome.expect("property case failed");
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; the shim
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}
