//! Strategies: composable recipes for sampling random test inputs.

use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

use rand::Rng;

/// A recipe for producing random values of type [`Strategy::Value`].
///
/// Unlike upstream, a strategy here is just a sampler — there is no value
/// tree and no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among boxed strategies (the [`crate::prop_oneof!`]
/// backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.rng().random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_composition() {
        let mut rng = TestRng::deterministic("ranges_and_composition");
        let s = (3usize..12).prop_flat_map(|n| (Just(n), 0.0f64..1.0));
        for _ in 0..100 {
            let (n, x) = s.sample(&mut rng);
            assert!((3..12).contains(&n));
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn union_hits_every_option() {
        let mut rng = TestRng::deterministic("union_hits_every_option");
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
