//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! `syn` and `quote` are not available offline, so the input item is parsed
//! directly from the [`proc_macro::TokenStream`] and the generated impls are
//! assembled as source text. Supported shapes — everything this workspace
//! derives on:
//!
//! * structs with named fields → JSON object in declaration order,
//! * newtype structs (`struct NodeId(usize)`) → serialized transparently,
//! * tuple structs with ≥ 2 fields → JSON array,
//! * unit structs → `null`,
//! * fieldless enums → the variant-name string.
//!
//! Generic parameters and data-carrying enum variants are rejected with a
//! compile error naming the offending item.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Kind::FieldlessEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\"))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize` (reconstruction from
/// `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::NewtypeStruct => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                             items.get({i}).ok_or_else(|| ::serde::Error::custom(\
                                 \"missing element {i} of {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) => \
                         ::std::result::Result::Ok({name}({elems})),\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected array for {name}\")),\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             value.get_field(\"{f}\").ok_or_else(|| \
                                 ::serde::Error::custom(\
                                     \"missing field `{f}` in {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::FieldlessEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok({name}::{v})"
                    )
                })
                .collect();
            format!(
                "match value.as_str() {{\n\
                     {arms},\n\
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                         \"unknown variant for {name}\")),\n\
                 }}",
                arms = arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    NewtypeStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    FieldlessEnum(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let kind = match (keyword.as_str(), tokens.next()) {
        ("struct", None) | ("struct", Some(TokenTree::Punct(_))) => Kind::UnitStruct,
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            match count_tuple_fields(g.stream()) {
                1 => Kind::NewtypeStruct,
                n => Kind::TupleStruct(n),
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::FieldlessEnum(parse_fieldless_variants(&name, g.stream()))
        }
        (kw, body) => panic!("serde shim derive: unsupported item `{kw}` with body {body:?}"),
    };
    Item { name, kind }
}

/// Skips leading `#[...]` attributes (including doc comments) and a `pub` /
/// `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Collects field names from `{ field: Type, ... }`, skipping each type by
/// scanning to the next comma outside `<...>` (angle brackets are plain
/// puncts, so nesting must be tracked by hand).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, got {other:?}"),
        }
        fields.push(name);
        skip_type_to_comma(&mut tokens);
    }
    fields
}

/// Counts top-level comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            break; // trailing comma
        }
        count += 1;
        skip_type_to_comma(&mut tokens);
    }
    count
}

/// Consumes tokens of one type expression up to (and including) the next
/// top-level `,`.
fn skip_type_to_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0usize;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Collects variant names from a fieldless enum body, rejecting
/// data-carrying variants.
fn parse_fieldless_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let variant = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        match tokens.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) => panic!(
                "serde shim derive: enum `{enum_name}` variant `{variant}` carries data, \
                 which the offline shim does not support"
            ),
            other => panic!(
                "serde shim derive: unexpected token after `{enum_name}::{variant}`: {other:?}"
            ),
        }
    }
    variants
}
