//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: renders and parses the serde shim's [`Value`] tree as JSON text.
//!
//! Floats are emitted with Rust's shortest round-trippable formatting;
//! non-finite floats serialize as `null` (upstream behaviour). Unsigned
//! 64-bit integers — scenario seeds — are parsed and emitted without passing
//! through `f64`, so they round-trip exactly.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Run {
//!     seed: u64,
//!     mlu: f64,
//! }
//!
//! let run = Run { seed: u64::MAX, mlu: 0.625 };
//! let text = serde_json::to_string(&run).unwrap();
//! let back: Run = serde_json::from_str(&text).unwrap();
//! assert_eq!(back, run);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize};

pub use serde::{Number, Value};

/// Error produced by JSON parsing or by [`serde::Deserialize`] conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors upstream's
/// signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors upstream's
/// signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
            let (k, v) = &fields[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write;
    match n {
        Number::UInt(v) => write!(out, "{v}").expect("write to String"),
        Number::Int(v) => write!(out, "{v}").expect("write to String"),
        Number::Float(x) if !x.is_finite() => out.push_str("null"),
        Number::Float(x) => {
            // Keep floats distinguishable from integers so they parse back
            // as floats.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                write!(out, "{x:.1}").expect("write to String");
            } else {
                write!(out, "{x}").expect("write to String");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), Error> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected {:?} at byte {}",
            byte as char, *pos
        )))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(Error::new("unexpected end of input"));
    };
    match b {
        b'n' => parse_keyword(bytes, pos, "null", Value::Null),
        b't' => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_at(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(Error::new(format!(
            "unexpected character {:?} at byte {}",
            other as char, *pos
        ))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::new("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                    }
                    other => return Err(Error::new(format!("unknown escape \\{}", other as char))),
                }
            }
            _ => {
                // Consume one UTF-8 character (input is a &str, so this is
                // always on a char boundary).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| Error::new("invalid UTF-8"))?;
                let c = rest.chars().next().ok_or_else(|| Error::new("empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(Error::new("unterminated string"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::UInt(u)));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Number(Number::Int(i)));
        }
    }
    text.parse::<f64>()
        .map(|x| Value::Number(Number::Float(x)))
        .map_err(|_| Error::new(format!("invalid number {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::from(1u64)),
            (
                "b".into(),
                Value::Array(vec![Value::from(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("a".into(), Value::from(1u64))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn float_int_distinction_roundtrips() {
        let v = Value::Number(Number::Float(2.0));
        let text = to_string(&v).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(parse_value(&text).unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn u64_max_roundtrips_exactly() {
        let text = to_string(&Value::from(u64::MAX)).unwrap();
        assert_eq!(parse_value(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\"quoted\"\tü\\end";
        let text = to_string(&Value::from(s)).unwrap();
        assert_eq!(parse_value(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("nulll").is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
