//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, deterministic replacement exposing exactly the `rand 0.9` API
//! surface the SPEF crates use:
//!
//! * [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64,
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`],
//! * [`Rng::random_range`] over half-open and inclusive integer/float ranges,
//! * [`Rng::random`] for `f64`/`bool`.
//!
//! The stream is **not** bit-compatible with upstream `StdRng` (which is
//! ChaCha12); it is, however, fully deterministic in the seed, which is the
//! property every experiment and test in this workspace relies on.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let xs: Vec<f64> = (0..4).map(|_| a.random_range(0.0..1.0)).collect();
//! let ys: Vec<f64> = (0..4).map(|_| b.random_range(0.0..1.0)).collect();
//! assert_eq!(xs, ys);
//! assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value of type `T` from its whole-domain distribution
    /// (`f64` in `[0, 1)`, uniform `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that [`Rng::random`] can produce.
pub trait Standard: Sized {
    /// Samples one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Whole-domain range: every 64-bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// SplitMix64 — used to expand `u64` seeds into full generator state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small state, passes BigCrush, and (unlike upstream's ChaCha12-backed
    /// `StdRng`) implementable in a few lines with no dependencies. All
    /// experiment seeds in this repository refer to this stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..u64::MAX),
                b.random_range(0u64..u64::MAX)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v: usize = rng.random_range(0..5);
            seen[v] = true;
            let w: u32 = rng.random_range(1..=20);
            assert!((1..=20).contains(&w));
            let z: i32 = rng.random_range(-3..3);
            assert!((-3..3).contains(&z));
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..5 hit");
    }

    #[test]
    fn random_standard() {
        let mut rng = StdRng::seed_from_u64(5);
        let x: f64 = rng.random();
        assert!((0.0..1.0).contains(&x));
        let mut trues = 0;
        for _ in 0..100 {
            if rng.random::<bool>() {
                trues += 1;
            }
        }
        assert!(trues > 20 && trues < 80);
    }
}
