//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the small slice of rayon's API this workspace uses — the
//! `into_par_iter().map(f).collect()` pipeline — with genuine parallelism on
//! top of `std::thread::scope`. Work is distributed dynamically (an atomic
//! work index, so uneven per-item costs balance across workers) and results
//! are returned **in input order**, matching rayon's indexed-iterator
//! semantics.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can be
//! lowered with the `RAYON_NUM_THREADS` environment variable, mirroring
//! upstream.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = (0u64..100).collect::<Vec<_>>()
//!     .into_par_iter()
//!     .map(|x| x * x)
//!     .collect();
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-style glob-import module.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParMap};
}

/// Number of worker threads: `RAYON_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over owned items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (executed in parallel at collect time).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A lazily mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        par_map_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Order-preserving parallel map: the work queue is a shared atomic index,
/// each worker claims the next unprocessed item, results land in their
/// original slot.
fn par_map_ordered<T: Send, U: Send>(items: Vec<T>, f: &(impl Fn(T) -> U + Sync)) -> Vec<U> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand every item its own claimable cell so workers can steal
    // independently of declaration order.
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = cells[i]
                    .lock()
                    .expect("poisoned work cell")
                    .take()
                    .expect("each cell is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("poisoned result cell") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("poisoned result cell")
                .expect("every slot filled by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![9].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn actually_runs_work_from_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Keep each item busy long enough for other workers to join.
                std::thread::sleep(std::time::Duration::from_micros(200));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(distinct > 1, "expected multiple worker threads");
        }
    }
}
