//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the slice of rayon's API this workspace uses — the
//! `into_par_iter().map(f).collect()` pipeline plus the borrowed-slice and
//! range entry points the batched routing engine needs (`par_iter`,
//! `par_iter_mut`, ranges, `enumerate`, `for_each`) — with genuine
//! parallelism on top of `std::thread::scope`. Work is distributed
//! dynamically (an atomic work index, so uneven per-item costs balance
//! across workers) and results are returned **in input order**, matching
//! rayon's indexed-iterator semantics.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can be
//! lowered with the `RAYON_NUM_THREADS` environment variable, mirroring
//! upstream.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = (0u64..100).collect::<Vec<_>>()
//!     .into_par_iter()
//!     .map(|x| x * x)
//!     .collect();
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-style glob-import module.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, ParMap,
    };
}

/// Number of worker threads: `RAYON_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Send + Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIter<&'a mut T> {
        self.as_mut_slice().into_par_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Rayon's `par_iter()` entry point: borrow a collection as a parallel
/// iterator over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// The reference type iterated over.
    type Item: Send + 'a;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.into_par_iter()
    }
}

impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

/// Rayon's `par_iter_mut()` entry point: borrow a collection as a parallel
/// iterator over exclusive references — the primitive the batched routing
/// engine uses to fan destination *slots* out across workers.
pub trait IntoParallelRefMutIterator<'a> {
    /// The reference type iterated over.
    type Item: Send + 'a;

    /// Mutably borrows `self` as a parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        self.into_par_iter()
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        self.as_mut_slice().into_par_iter()
    }
}

/// A parallel iterator over owned items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (executed in parallel at collect time).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pairs every item with its index, preserving input order — rayon's
    /// indexed-iterator `enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Runs `f` on every item in parallel, discarding results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_for_each(self.items, &f);
    }

    /// Collects the items in input order (no mapping step).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A lazily mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        par_map_ordered(self.items, &self.f).into_iter().collect()
    }

    /// Runs the map in parallel purely for its side effects.
    pub fn for_each<U, G>(self, g: G)
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        G: Fn(U) + Sync,
    {
        let f = &self.f;
        par_for_each(self.items, &|t| g(f(t)));
    }
}

/// Order-preserving parallel map: the work queue is a shared atomic index,
/// each worker claims the next unprocessed item, results land in their
/// original slot.
fn par_map_ordered<T: Send, U: Send>(items: Vec<T>, f: &(impl Fn(T) -> U + Sync)) -> Vec<U> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand every item its own claimable cell so workers can steal
    // independently of declaration order.
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = cells[i]
                    .lock()
                    .expect("poisoned work cell")
                    .take()
                    .expect("each cell is claimed exactly once");
                let out = f(item);
                *results[i].lock().expect("poisoned result cell") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("poisoned result cell")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Side-effect-only parallel iteration: same dynamic work distribution as
/// [`par_map_ordered`], without result storage.
fn par_for_each<T: Send>(items: Vec<T>, f: &(impl Fn(T) + Sync)) {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        items.into_iter().for_each(f);
        return;
    }

    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = cells[i]
                    .lock()
                    .expect("poisoned work cell")
                    .take()
                    .expect("each cell is claimed exactly once");
                f(item);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![9].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut data: Vec<u64> = (0..500).collect();
        data.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(data, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_reads_shared_refs() {
        let data: Vec<u64> = (0..100).collect();
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[40], 80);
        assert_eq!(data.len(), 100); // still owned by the caller
    }

    #[test]
    fn range_and_enumerate() {
        let out: Vec<(usize, usize)> = (10..15usize).into_par_iter().enumerate().collect();
        assert_eq!(out, vec![(0, 10), (1, 11), (2, 12), (3, 13), (4, 14)]);
    }

    #[test]
    fn for_each_runs_every_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        let sum = AtomicUsize::new(0);
        vec![1usize, 2, 3]
            .into_par_iter()
            .map(|x| x * 10)
            .for_each(|x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 60);
    }

    #[test]
    fn indexed_slot_fanout_preserves_slot_identity() {
        // The batched-engine usage pattern: disjoint &mut slots, each worker
        // writes only through its own reference.
        let mut slots = vec![0usize; 64];
        slots
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = i * i);
        for (i, &v) in slots.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn actually_runs_work_from_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Keep each item busy long enough for other workers to join.
                std::thread::sleep(std::time::Duration::from_micros(200));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(distinct > 1, "expected multiple worker threads");
        }
    }
}
