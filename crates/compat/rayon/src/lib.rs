//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the slice of rayon's API this workspace uses — the
//! `into_par_iter().map(f).collect()` pipeline plus the borrowed-slice and
//! range entry points the batched routing engine needs (`par_iter`,
//! `par_iter_mut`, ranges, `enumerate`, `for_each`) — with genuine
//! parallelism on a **persistent worker pool** (see [`pool`]): worker
//! threads are spawned lazily once, parked on a condvar, and dispatched
//! borrowed job shares per parallel call, mirroring real rayon's global
//! pool instead of paying `std::thread::scope` spawn-up on every call.
//! Work is distributed dynamically (an atomic work index, so uneven
//! per-item costs balance across workers) and results are returned **in
//! input order**, matching rayon's indexed-iterator semantics.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can be
//! lowered with the `RAYON_NUM_THREADS` environment variable, mirroring
//! upstream (read once, when the pool first spins up).
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = (0u64..100).collect::<Vec<_>>()
//!     .into_par_iter()
//!     .map(|x| x * x)
//!     .collect();
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

mod pool;

/// The rayon-style glob-import module.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter, ParMap,
    };
}

/// Number of worker threads: `RAYON_NUM_THREADS` if set and positive,
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Send + Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIter<&'a mut T> {
        self.as_mut_slice().into_par_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Rayon's `par_iter()` entry point: borrow a collection as a parallel
/// iterator over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// The reference type iterated over.
    type Item: Send + 'a;

    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.into_par_iter()
    }
}

impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

/// Rayon's `par_iter_mut()` entry point: borrow a collection as a parallel
/// iterator over exclusive references — the primitive the batched routing
/// engine uses to fan destination *slots* out across workers.
pub trait IntoParallelRefMutIterator<'a> {
    /// The reference type iterated over.
    type Item: Send + 'a;

    /// Mutably borrows `self` as a parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        self.into_par_iter()
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        self.as_mut_slice().into_par_iter()
    }
}

/// A parallel iterator over owned items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (executed in parallel at collect time).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Pairs every item with its index, preserving input order — rayon's
    /// indexed-iterator `enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Runs `f` on every item in parallel, discarding results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_for_each(self.items, &f);
    }

    /// Collects the items in input order (no mapping step).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A lazily mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map in parallel and collects the results in input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        par_map_ordered(self.items, &self.f).into_iter().collect()
    }

    /// Runs the map in parallel purely for its side effects.
    pub fn for_each<U, G>(self, g: G)
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        G: Fn(U) + Sync,
    {
        let f = &self.f;
        par_for_each(self.items, &|t| g(f(t)));
    }
}

/// Order-preserving parallel map: the work queue is a shared atomic index,
/// each worker claims the next unprocessed item, results land in their
/// original slot. Executed on the persistent [`pool`] — no threads are
/// spawned per call once the pool is warm.
fn par_map_ordered<T: Send, U: Send>(items: Vec<T>, f: &(impl Fn(T) -> U + Sync)) -> Vec<U> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Hand every item its own claimable cell so workers can steal
    // independently of declaration order.
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    let claim_loop = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = cells[i]
            .lock()
            .expect("poisoned work cell")
            .take()
            .expect("each cell is claimed exactly once");
        let out = f(item);
        *results[i].lock().expect("poisoned result cell") = Some(out);
    };
    pool::run_batch(&claim_loop, threads);

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("poisoned result cell")
                .expect("every slot filled by a worker")
        })
        .collect()
}

/// Side-effect-only parallel iteration: same dynamic work distribution as
/// [`par_map_ordered`], without result storage.
fn par_for_each<T: Send>(items: Vec<T>, f: &(impl Fn(T) + Sync)) {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        items.into_iter().for_each(f);
        return;
    }

    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);

    let claim_loop = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = cells[i]
            .lock()
            .expect("poisoned work cell")
            .take()
            .expect("each cell is claimed exactly once");
        f(item);
    };
    pool::run_batch(&claim_loop, threads);
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![9].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut data: Vec<u64> = (0..500).collect();
        data.par_iter_mut().for_each(|x| *x *= 3);
        assert_eq!(data, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_reads_shared_refs() {
        let data: Vec<u64> = (0..100).collect();
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[40], 80);
        assert_eq!(data.len(), 100); // still owned by the caller
    }

    #[test]
    fn range_and_enumerate() {
        let out: Vec<(usize, usize)> = (10..15usize).into_par_iter().enumerate().collect();
        assert_eq!(out, vec![(0, 10), (1, 11), (2, 12), (3, 13), (4, 14)]);
    }

    #[test]
    fn for_each_runs_every_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        let sum = AtomicUsize::new(0);
        vec![1usize, 2, 3]
            .into_par_iter()
            .map(|x| x * 10)
            .for_each(|x| {
                sum.fetch_add(x, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 60);
    }

    #[test]
    fn indexed_slot_fanout_preserves_slot_identity() {
        // The batched-engine usage pattern: disjoint &mut slots, each worker
        // writes only through its own reference.
        let mut slots = vec![0usize; 64];
        slots
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, slot)| *slot = i * i);
        for (i, &v) in slots.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn pool_does_not_spawn_threads_per_call() {
        // Force a multi-threaded pool even on single-core runners: the
        // batches below ask for 4 shares regardless of the env knob.
        let shares = 4usize;
        let run_round = |round: usize| {
            let hits = std::sync::atomic::AtomicUsize::new(0);
            let n = 64;
            let next = std::sync::atomic::AtomicUsize::new(0);
            let claim = || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(100));
            };
            super::pool::run_batch(&claim, shares);
            assert_eq!(
                hits.load(std::sync::atomic::Ordering::Relaxed),
                n,
                "round {round}: every item processed exactly once"
            );
        };
        // Warm the pool: after one batch it holds at least `shares − 1`
        // workers.
        run_round(0);
        let warmed = super::pool::spawned_workers();
        assert!(warmed >= shares - 1, "pool under-provisioned: {warmed}");
        for round in 1..9 {
            run_round(round);
        }
        // Other tests running concurrently in this process may grow the
        // shared pool toward the machine's parallelism, but the pool's cap
        // is the largest `shares − 1` any call has requested — a per-call
        // `thread::scope` implementation would instead mint
        // 8 × (shares − 1) fresh threads for these rounds.
        let cap = warmed.max(super::current_num_threads().saturating_sub(1));
        let after = super::pool::spawned_workers();
        assert!(
            after <= cap,
            "repeated batches grew the pool past its cap {cap}: {after}"
        );
    }

    #[test]
    fn nested_parallel_calls_complete() {
        // A dispatcher blocked on its batch must help drain the queue, so
        // nested fan-outs terminate even when every worker is busy.
        let outer: Vec<usize> = (0..8).collect();
        let totals: Vec<usize> = outer
            .into_par_iter()
            .map(|k| {
                let inner: Vec<usize> = (0..50usize)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(|x| x * k)
                    .collect();
                inner.into_iter().sum()
            })
            .collect();
        for (k, &total) in totals.iter().enumerate() {
            assert_eq!(total, k * (49 * 50) / 2);
        }
    }

    #[test]
    fn panics_propagate_to_the_dispatcher() {
        let result = std::panic::catch_unwind(|| {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let claim = || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= 16 {
                    break;
                }
                if i == 7 {
                    panic!("boom at {i}");
                }
            };
            super::pool::run_batch(&claim, 4);
        });
        let payload = result.expect_err("panic must cross the pool");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
    }

    #[test]
    fn actually_runs_work_from_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Keep each item busy long enough for other workers to join.
                std::thread::sleep(std::time::Duration::from_micros(200));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(distinct > 1, "expected multiple worker threads");
        }
    }
}
