//! The persistent worker pool behind every parallel call.
//!
//! Worker threads are spawned lazily (growing up to the requested
//! parallelism minus the calling thread, which always executes one share
//! itself), then parked on a condvar waiting for work — the per-call
//! `std::thread::scope` spawn/join cost the pre-pool shim paid on every
//! parallel section is gone.
//!
//! A parallel call dispatches one **job** — a `Fn() + Sync` closure whose
//! body is a claim-next-index loop over the call's items — as `shares`
//! identical entries on the pool queue. The dispatching thread runs one
//! share inline, then helps drain the queue until its batch's counter hits
//! zero. That help-while-waiting rule is what makes *nested* parallel
//! calls (a scenario sweep whose scenarios fan destinations out again)
//! deadlock-free even when every pool worker is busy: a dispatcher blocked
//! on its batch executes queued shares — its own or other batches' —
//! instead of sleeping, so some thread always makes progress.
//!
//! ## Safety
//!
//! This module contains the shim's only `unsafe` code: the dispatched job
//! reference has its lifetime erased to `'static` so parked workers can
//! hold it. Soundness rests on one invariant, enforced by
//! [`run_batch`]: the dispatching frame never returns (or unwinds — the
//! inline share is run under `catch_unwind`) before every queued share of
//! its batch has finished executing, so the erased reference never
//! outlives the closure it points to.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One dispatched batch: how many shares are still running, the first
/// captured panic payload, and the condvar its dispatcher waits on.
struct Batch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A queued share: the lifetime-erased job plus its batch handle.
struct Share {
    job: &'static (dyn Fn() + Sync),
    batch: Arc<Batch>,
}

struct PoolInner {
    queue: VecDeque<Share>,
    spawned: usize,
}

struct Pool {
    inner: Mutex<PoolInner>,
    work_ready: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn instance() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        inner: Mutex::new(PoolInner {
            queue: VecDeque::new(),
            spawned: 0,
        }),
        work_ready: Condvar::new(),
    })
}

impl Pool {
    /// Grows the pool to at least `target` parked workers (never shrinks;
    /// threads are daemons that live for the process).
    fn ensure_workers(&'static self, target: usize) {
        let mut inner = self.inner.lock().expect("pool poisoned");
        while inner.spawned < target {
            let id = inner.spawned;
            std::thread::Builder::new()
                .name(format!("rayon-shim-worker-{id}"))
                .spawn(move || worker_loop(self))
                .expect("failed to spawn pool worker");
            inner.spawned += 1;
        }
    }
}

/// Total workers the pool has ever spawned (test instrumentation: the
/// pool's cap is the largest `shares − 1` any call has requested, and it
/// must never grow just because batches repeat).
#[cfg(test)]
pub(crate) fn spawned_workers() -> usize {
    instance().inner.lock().expect("pool poisoned").spawned
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let share = {
            let mut inner = pool.inner.lock().expect("pool poisoned");
            loop {
                if let Some(share) = inner.queue.pop_front() {
                    break share;
                }
                inner = pool.work_ready.wait(inner).expect("pool poisoned");
            }
        };
        execute(share);
    }
}

/// Runs one share's job, capturing a panic into the batch (first wins) so
/// the dispatcher can re-raise it; always decrements the batch counter.
fn execute(share: Share) {
    let result = catch_unwind(AssertUnwindSafe(|| (share.job)()));
    if let Err(payload) = result {
        let mut slot = share.batch.panic.lock().expect("batch poisoned");
        slot.get_or_insert(payload);
    }
    let mut remaining = share.batch.remaining.lock().expect("batch poisoned");
    *remaining -= 1;
    if *remaining == 0 {
        share.batch.done.notify_all();
    }
}

/// Executes `work` from `shares` threads in total: `shares − 1` pool
/// workers plus the calling thread. `work` must be a self-contained
/// claim-loop (every invocation pulls items off a shared atomic index
/// until none remain), so running it from fewer live threads than
/// `shares` — or more than once per thread — is always correct.
///
/// Blocks until every share has finished; panics from any share are
/// re-raised here after the batch has fully drained.
pub(crate) fn run_batch(work: &(dyn Fn() + Sync), shares: usize) {
    let extra = shares.saturating_sub(1);
    if extra == 0 {
        work();
        return;
    }
    let pool = instance();
    pool.ensure_workers(extra);

    // SAFETY: `job` is `work` with its lifetime erased so parked workers
    // can hold it. This frame does not return or unwind past the drain
    // loop below until `remaining == 0`, i.e. until every queued share
    // has finished executing — the reference cannot outlive the closure.
    let job: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(work) };
    let batch = Arc::new(Batch {
        remaining: Mutex::new(extra),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    {
        let mut inner = pool.inner.lock().expect("pool poisoned");
        for _ in 0..extra {
            inner.queue.push_back(Share {
                job,
                batch: Arc::clone(&batch),
            });
        }
    }
    if extra == 1 {
        pool.work_ready.notify_one();
    } else {
        pool.work_ready.notify_all();
    }

    // The dispatcher is a worker too: run one share inline (under
    // catch_unwind so an early panic cannot unwind while queued shares
    // still borrow `work`) …
    let inline_result = catch_unwind(AssertUnwindSafe(work));

    // … then help drain the queue until this batch is fully executed.
    loop {
        if *batch.remaining.lock().expect("batch poisoned") == 0 {
            break;
        }
        let stolen = pool.inner.lock().expect("pool poisoned").queue.pop_front();
        match stolen {
            Some(share) => execute(share),
            None => {
                // Nothing left to steal: the outstanding shares are being
                // executed right now; sleep until the last one signals.
                let mut remaining = batch.remaining.lock().expect("batch poisoned");
                while *remaining != 0 {
                    remaining = batch.done.wait(remaining).expect("batch poisoned");
                }
                break;
            }
        }
    }

    if let Err(payload) = inline_result {
        resume_unwind(payload);
    }
    let worker_panic = batch.panic.lock().expect("batch poisoned").take();
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}
