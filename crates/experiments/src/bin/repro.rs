//! `repro` — regenerates the SPEF paper's tables and figures, and runs
//! scenario sweeps.
//!
//! ```bash
//! repro                         # run everything at full fidelity
//! repro --exp fig9,table1      # selected experiments
//! repro --quick                # reduced iteration budgets
//! repro --out results          # CSV output directory (default: results)
//! repro --list                 # list experiment ids
//!
//! repro sweep                  # default smoke grid, parallel, JSON report
//! repro sweep --topologies abilene,cernet2 --seeds 1,2,3 \
//!     --loads 0.15,0.3 --betas 0.5,1.0,2.0 --solvers fw \
//!     --json BENCH_sweep.json
//!
//! repro sweep --family sim     # packet-level sim grid (fig4/abilene/cernet2)
//! repro sweep --family failure # single-circuit failure grid (abilene)
//! repro sweep --family scale   # tiered 200/500/1000-node scaling ladder
//! repro sweep --family scale --tile 64   # same ladder, tiled arenas:
//!                                        # results must not move a bit
//! repro sweep --family all     # te grid + sim grid, one report (PR 6 gate)
//! repro sweep --family all --cold-solves   # same grid, isolated cold solves:
//!                                          # results must not move a bit
//! repro sweep --family sim --sim-scheduler heap   # same grid, heap scheduler:
//!                                                 # results must not move a bit
//! repro sweep --family te --full-rebuild   # dense SPF rebuilds everywhere:
//!                                          # results must not move a bit
//!
//! repro diff BENCH_a.json BENCH_b.json   # fail on any scenario-result drift
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use spef_experiments::{
    harness::{run_batch, BatchOptions},
    run_experiment, Quality, ScenarioGrid, SolverSpec, TopologySpec, TrafficModel, ALL_EXPERIMENTS,
    EXTRA_EXPERIMENTS,
};
use spef_netsim::SchedulerKind;

struct Args {
    experiments: Vec<String>,
    out_dir: PathBuf,
    quality: Quality,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut experiments: Vec<String> = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    let mut out_dir = PathBuf::from("results");
    let mut quality = Quality::Full;
    let mut list = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--exp" => {
                let val = argv.next().ok_or("--exp needs a value")?;
                if val != "all" {
                    experiments = val.split(',').map(|s| s.trim().to_string()).collect();
                }
            }
            "--out" => {
                out_dir = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--quick" => quality = Quality::Quick,
            "--list" => list = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp all|id,id,...] [--out DIR] [--quick] [--list]\n\
                     paper artifacts: {}\n\
                     extensions:      {}",
                    ALL_EXPERIMENTS.join(", "),
                    EXTRA_EXPERIMENTS.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        experiments,
        out_dir,
        quality,
        list,
    })
}

/// Parses and runs `repro sweep ...`, returning the process exit code.
fn run_sweep(argv: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let mut grid = ScenarioGrid::new();
    let mut family_all = false;
    let mut json_path = PathBuf::from("BENCH_sweep.json");
    let mut options = BatchOptions::default();

    let parse_list =
        |val: &str| -> Vec<String> { val.split(',').map(|s| s.trim().to_string()).collect() };
    let parse_f64s = |flag: &str, val: &str| -> Result<Vec<f64>, String> {
        val.split(',')
            .map(|s| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("{flag}: invalid number {s:?}: {e}"))
            })
            .collect()
    };

    let mut argv = argv.peekable();
    let mut grid_customised = false;
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value"));
        if arg.starts_with("--")
            && !matches!(
                arg.as_str(),
                "--family"
                    | "--json"
                    | "--serial"
                    | "--cold-solves"
                    | "--sim-scheduler"
                    | "--tile"
                    | "--full-rebuild"
                    | "--help"
                    | "-h"
            )
        {
            grid_customised = true;
        }
        match arg.as_str() {
            "--family" => {
                if grid_customised {
                    return Err(
                        "--family replaces the whole grid; pass it before any grid flags".into(),
                    );
                }
                let val = value("--family")?;
                match val.as_str() {
                    "te" => grid = ScenarioGrid::te_family(),
                    "sim" => grid = ScenarioGrid::sim_family(),
                    "failure" => grid = ScenarioGrid::failure_family(),
                    "scale" => grid = ScenarioGrid::scale_family(),
                    "all" => family_all = true,
                    other => {
                        return Err(format!(
                        "--family: unknown family {other:?}; known: te, sim, failure, scale, all"
                    ))
                    }
                };
            }
            "--topologies" => {
                let names = value("--topologies")?;
                grid = grid.topologies(
                    parse_list(&names)
                        .iter()
                        .map(|n| TopologySpec::parse(n))
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            "--seeds" => {
                let val = value("--seeds")?;
                grid = grid.seeds(
                    parse_list(&val)
                        .iter()
                        .map(|s| {
                            s.parse::<u64>()
                                .map_err(|e| format!("--seeds: invalid seed {s:?}: {e}"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            "--loads" => {
                let val = value("--loads")?;
                grid = grid.loads(parse_f64s("--loads", &val)?);
            }
            "--betas" => {
                let val = value("--betas")?;
                grid = grid.betas(parse_f64s("--betas", &val)?);
            }
            "--q" => {
                let val = value("--q")?;
                grid = grid.q(val
                    .parse::<f64>()
                    .map_err(|e| format!("--q: invalid value {val:?}: {e}"))?);
            }
            "--solvers" => {
                let val = value("--solvers")?;
                grid = grid.solvers(
                    parse_list(&val)
                        .iter()
                        .map(|n| SolverSpec::parse(n))
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            "--traffic" => {
                let val = value("--traffic")?;
                grid = grid.traffic_model(match val.as_str() {
                    "ft" => TrafficModel::FortzThorup,
                    "gravity" => TrafficModel::Gravity,
                    other => return Err(format!("--traffic: unknown model {other:?}")),
                });
            }
            "--base-seed" => {
                let val = value("--base-seed")?;
                grid = grid.base_seed(
                    val.parse::<u64>()
                        .map_err(|e| format!("--base-seed: invalid value {val:?}: {e}"))?,
                );
            }
            "--sim-durations" => {
                let val = value("--sim-durations")?;
                grid = grid.sim_durations(parse_f64s("--sim-durations", &val)?);
            }
            "--sim-warmup-frac" => {
                let val = value("--sim-warmup-frac")?;
                grid = grid.sim_warmup_frac(
                    val.parse::<f64>()
                        .map_err(|e| format!("--sim-warmup-frac: invalid value {val:?}: {e}"))?,
                );
            }
            "--sim-unit" => {
                let val = value("--sim-unit")?;
                grid = grid.sim_unit_bps(
                    val.parse::<f64>()
                        .map_err(|e| format!("--sim-unit: invalid value {val:?}: {e}"))?,
                );
            }
            "--sim-seed" => {
                let val = value("--sim-seed")?;
                grid = grid.sim_seed(
                    val.parse::<u64>()
                        .map_err(|e| format!("--sim-seed: invalid value {val:?}: {e}"))?,
                );
            }
            "--sim-scheduler" => {
                let val = value("--sim-scheduler")?;
                options.sim_scheduler =
                    SchedulerKind::parse(&val).map_err(|e| format!("--sim-scheduler: {e}"))?;
            }
            "--json" => json_path = PathBuf::from(value("--json")?),
            "--serial" => options.serial = true,
            "--cold-solves" => options.cold_solves = true,
            "--full-rebuild" => options.full_rebuild = true,
            "--tile" => {
                let val = value("--tile")?;
                let tile = val
                    .parse::<usize>()
                    .map_err(|e| format!("--tile: invalid value {val:?}: {e}"))?;
                if tile == 0 {
                    return Err("--tile: tile size must be at least 1".into());
                }
                options.tile = Some(tile);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro sweep [--family te|sim|failure|scale|all] [--topologies a,b,...] \
                     [--seeds 1,2,...] [--loads 0.15,...] [--betas 1.0,...] [--q 1.0] \
                     [--solvers fw|fw-fast|fw-pinned|dd|ft] [--traffic ft|gravity] \
                     [--base-seed N] [--sim-durations 2,5] [--sim-warmup-frac 0.1] \
                     [--sim-unit 1e6] [--sim-seed N] [--sim-scheduler calendar|heap] \
                     [--json FILE] [--serial] [--cold-solves] [--tile N] [--full-rebuild]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown sweep argument {other:?}")),
        }
    }

    let scenarios = if family_all {
        // The full regression surface: the PR 2 `te` grid followed by the
        // PR 4 `sim` family, as one report (the PR 6 baseline pair). The
        // solver row is pinned to the PR 6 surface — the Fortz–Thorup row
        // the `te` family gained later is gated by its own PR 9 baseline
        // pair, and the committed PR 6 reports must keep diffing clean.
        let mut scenarios = ScenarioGrid::te_family()
            .solvers([SolverSpec::FrankWolfeFast])
            .build();
        scenarios.extend(ScenarioGrid::sim_family().build());
        scenarios
    } else {
        grid.build()
    };
    println!(
        "sweep: {} scenario(s), {} thread(s)",
        scenarios.len(),
        if options.serial {
            1
        } else {
            rayon::current_num_threads()
        }
    );
    let report = run_batch(scenarios, &options);
    print!("{}", report.summary_table());
    report
        .write(&json_path)
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    println!(
        "sweep: {} ok, {} failed, {:.1}s total; report: {}",
        report.results.len(),
        report.failures.len(),
        report.total_wall_ms / 1e3,
        json_path.display()
    );
    if let Some(spf) = &report.spf {
        println!(
            "  spf: {} builds ({} incremental, {} slots rebuilt), \
             {} topology patches over {} masked links",
            spf.builds,
            spf.incremental_builds,
            spf.slots_rebuilt,
            spf.topology_builds,
            spf.masked_links
        );
    }
    if report.failures.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

/// Parses and runs `repro diff BASELINE.json CANDIDATE.json`: compares the
/// deterministic scenario results of two sweep reports and fails on any
/// drift. Wall-clock fields are ignored. The regression gate for perf PRs.
fn run_diff(mut argv: impl Iterator<Item = String>) -> Result<ExitCode, String> {
    let usage = "usage: repro diff BASELINE.json CANDIDATE.json";
    let baseline_path = argv.next().ok_or(usage)?;
    let candidate_path = argv.next().ok_or(usage)?;
    if let Some(extra) = argv.next() {
        return Err(format!("unexpected diff argument {extra:?}\n{usage}"));
    }
    let load = |path: &str| -> Result<spef_experiments::harness::BatchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        spef_experiments::harness::BatchReport::from_json(&text)
            .map_err(|e| format!("parsing {path}: {e}"))
    };
    let baseline = load(&baseline_path)?;
    let candidate = load(&candidate_path)?;
    let drift = baseline.result_drift(&candidate);
    if drift.is_empty() {
        println!(
            "diff: {} scenario(s) bit-identical ({} vs {}); wall {:.1} ms -> {:.1} ms",
            baseline.results.len(),
            baseline_path,
            candidate_path,
            baseline.total_wall_ms,
            candidate.total_wall_ms,
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "diff: {} drift(s) between {} and {}:",
            drift.len(),
            baseline_path,
            candidate_path
        );
        for line in &drift {
            eprintln!("  {line}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("sweep") {
        argv.next();
        return match run_sweep(argv) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.peek().map(String::as_str) == Some("diff") {
        argv.next();
        return match run_diff(argv) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for id in ALL_EXPERIMENTS.into_iter().chain(EXTRA_EXPERIMENTS) {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    for id in &args.experiments {
        let started = std::time::Instant::now();
        match run_experiment(id, args.quality) {
            Ok(result) => {
                print!("{result}");
                if let Err(e) = result.write_csvs(&args.out_dir) {
                    eprintln!("error: writing CSVs for {id}: {e}");
                    failed = true;
                } else {
                    println!(
                        "[{id}] done in {:.1}s; {} CSV file(s) in {}\n",
                        started.elapsed().as_secs_f64(),
                        result.csvs.len(),
                        args.out_dir.display()
                    );
                }
            }
            Err(e) => {
                eprintln!("error: experiment {id}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
