//! `repro` — regenerates the SPEF paper's tables and figures.
//!
//! ```bash
//! repro                         # run everything at full fidelity
//! repro --exp fig9,table1      # selected experiments
//! repro --quick                # reduced iteration budgets
//! repro --out results          # CSV output directory (default: results)
//! repro --list                 # list experiment ids
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use spef_experiments::{run_experiment, Quality, ALL_EXPERIMENTS, EXTRA_EXPERIMENTS};

struct Args {
    experiments: Vec<String>,
    out_dir: PathBuf,
    quality: Quality,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut experiments: Vec<String> = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    let mut out_dir = PathBuf::from("results");
    let mut quality = Quality::Full;
    let mut list = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--exp" => {
                let val = argv.next().ok_or("--exp needs a value")?;
                if val != "all" {
                    experiments = val.split(',').map(|s| s.trim().to_string()).collect();
                }
            }
            "--out" => {
                out_dir = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--quick" => quality = Quality::Quick,
            "--list" => list = true,
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp all|id,id,...] [--out DIR] [--quick] [--list]\n\
                     paper artifacts: {}\n\
                     extensions:      {}",
                    ALL_EXPERIMENTS.join(", "),
                    EXTRA_EXPERIMENTS.join(", ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        experiments,
        out_dir,
        quality,
        list,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for id in ALL_EXPERIMENTS.into_iter().chain(EXTRA_EXPERIMENTS) {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let mut failed = false;
    for id in &args.experiments {
        let started = std::time::Instant::now();
        match run_experiment(id, args.quality) {
            Ok(result) => {
                print!("{result}");
                if let Err(e) = result.write_csvs(&args.out_dir) {
                    eprintln!("error: writing CSVs for {id}: {e}");
                    failed = true;
                } else {
                    println!(
                        "[{id}] done in {:.1}s; {} CSV file(s) in {}\n",
                        started.elapsed().as_secs_f64(),
                        result.csvs.len(),
                        args.out_dir.display()
                    );
                }
            }
            Err(e) => {
                eprintln!("error: experiment {id}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
