//! Fig. 3: link weights (a) and utilizations (b) versus the load-balance
//! parameter β on the Fig. 1 network, q = 1.
//!
//! The paper's qualitative findings reproduced here: the weight of the
//! bottleneck arc (3,4) grows explosively with β (its spare capacity is
//! pinned at 0.1, so `w = 1/0.1^β`), the arcs (1,2) and (2,3) always share
//! one weight, and the utilization of (1,3) decreases from 1 toward the
//! min-max split 0.5 as β grows.

use spef_core::{Objective, SpefError, TeInstance, TeSolver, TeWorkspace};
use spef_topology::standard;

use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::Quality;

/// β sample points (denser near 0 where the behaviour changes fastest).
pub fn beta_samples(quality: Quality) -> Vec<f64> {
    match quality {
        Quality::Full => (0..=20).map(|i| i as f64 * 0.25).collect(),
        Quality::Quick => vec![0.0, 0.5, 1.0, 2.0, 3.0, 5.0],
    }
}

/// Runs the Fig. 3 reproduction.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let net = standard::fig1();
    let tm = standard::fig1_demands();
    let fw = quality.fw();
    // One workspace across the beta sweep: the objective changes every
    // solve, so each runs the cold trajectory on warm arenas.
    let mut ws = TeWorkspace::new();

    let mut rows = Vec::new();
    for beta in beta_samples(quality) {
        let obj = Objective::uniform(beta, net.link_count());
        let sol = fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)?;
        let u = net.utilizations(sol.flows.aggregate());
        rows.push(vec![
            beta,
            sol.weights[0],
            sol.weights[1],
            sol.weights[2],
            sol.weights[3],
            u[0],
            u[1],
            u[2],
            u[3],
        ]);
    }

    let mut table = TextTable::new(
        "Fig. 3 — weights and utilizations vs beta (Fig. 1 network, q = 1)",
        &[
            "beta", "w(1,3)", "w(3,4)", "w(1,2)", "w(2,3)", "u(1,3)", "u(3,4)", "u(1,2)", "u(2,3)",
        ],
    );
    for row in &rows {
        table.push_row(row.iter().map(|&v| fmt_val(v)).collect());
    }

    Ok(ExperimentResult {
        id: "fig3",
        tables: vec![table],
        csvs: vec![CsvFile::from_rows(
            "fig3.csv",
            &[
                "beta", "w13", "w34", "w12", "w23", "u13", "u34", "u12", "u23",
            ],
            &rows,
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_holds() {
        let r = run(Quality::Quick).unwrap();
        let rows = &r.csvs[0].content;
        let parsed: Vec<Vec<f64>> = rows
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // Fig. 3(a): w(3,4) grows explosively with beta.
        let w34_first = parsed.first().unwrap()[2];
        let w34_last = parsed.last().unwrap()[2];
        assert!(
            w34_last > 100.0 * w34_first.max(1.0),
            "{w34_first} → {w34_last}"
        );
        // Arcs (1,2) and (2,3) always share a weight.
        for row in &parsed {
            assert!((row[3] - row[4]).abs() < 1e-6 * row[3].max(1.0));
        }
        // Fig. 3(b): u(1,3) decreases in beta, from 1.0 toward 0.5.
        let u13: Vec<f64> = parsed.iter().map(|r| r[5]).collect();
        assert!((u13[0] - 1.0).abs() < 1e-6);
        for w in u13.windows(2) {
            assert!(w[1] <= w[0] + 1e-6);
        }
        assert!(*u13.last().unwrap() < 0.6);
        // u(3,4) constant at 0.9 (single path).
        for row in &parsed {
            assert!((row[6] - 0.9).abs() < 1e-9);
        }
    }
}
