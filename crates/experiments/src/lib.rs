//! Experiment harness regenerating every table and figure of the SPEF
//! paper's evaluation (§II TABLE I, §V TABLES III–V, Figs. 2–13).
//!
//! Each experiment module exposes `run(quality) -> ExperimentResult`
//! containing human-readable tables (printed by the `repro` binary) and
//! CSV series (written to the results directory for plotting). The mapping
//! from module to paper artifact is in `DESIGN.md`'s per-experiment index;
//! paper-vs-measured numbers live in `EXPERIMENTS.md`.
//!
//! Run everything:
//!
//! ```bash
//! cargo run --release -p spef-experiments --bin repro -- --exp all --out results
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod reconfig;
pub mod report;
pub mod scale;
pub mod scenario;

pub mod failure;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod scaling;
pub mod table1;
pub mod table3;
pub mod table5;

pub use harness::{
    run_batch, run_scenario, run_scenario_in, BatchOptions, BatchReport, FailureScenarioResult,
    ScenarioFailure, ScenarioResult, SimScenarioResult,
};
pub use reconfig::ReconfigOutcome;
pub use report::{CsvFile, ExperimentResult, TextTable};
pub use scenario::{
    FailureSpec, ObjectiveSpec, Scenario, ScenarioGrid, SimSpec, SolverSpec, TopologySpec,
    TrafficModel, TrafficSpec,
};

/// Fidelity of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Paper-fidelity iteration budgets (the `repro` binary default).
    Full,
    /// Reduced budgets for CI and integration tests.
    Quick,
}

impl Quality {
    /// Frank–Wolfe configuration for this fidelity.
    pub fn fw(self) -> spef_core::FrankWolfeConfig {
        match self {
            Quality::Full => spef_core::FrankWolfeConfig::default(),
            Quality::Quick => spef_core::FrankWolfeConfig {
                convergence: spef_core::ConvergenceCriteria::with_tolerance(300, 1e-6),
                ..spef_core::FrankWolfeConfig::default()
            },
        }
    }

    /// NEM configuration for this fidelity.
    pub fn nem(self) -> spef_core::NemConfig {
        let budget = match self {
            Quality::Full => 6000,
            Quality::Quick => 1000,
        };
        spef_core::NemConfig {
            convergence: spef_core::ConvergenceCriteria::budget(budget),
            ..spef_core::NemConfig::default()
        }
    }

    /// A default SPEF pipeline config (β-independent parts).
    pub fn spef_config(self) -> spef_core::SpefConfig {
        spef_core::SpefConfig {
            solver: spef_core::TeSolverKind::FrankWolfe(self.fw()),
            nem: self.nem(),
            ..spef_core::SpefConfig::default()
        }
    }
}

/// All paper-artifact experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 12] = [
    "table1", "fig2", "fig3", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13", "table3",
    "table5",
];

/// Extension experiments beyond the paper's artifacts (run explicitly via
/// `repro --exp <id>`): the §VII computational-scaling ablation and a
/// single-link-failure robustness study.
pub const EXTRA_EXPERIMENTS: [&str; 2] = ["scaling", "failure"];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns an error string for unknown ids or if the underlying solvers
/// fail (which indicates a bug — the shipped experiments are all feasible).
pub fn run_experiment(id: &str, quality: Quality) -> Result<ExperimentResult, String> {
    match id {
        "table1" => table1::run(quality).map_err(|e| e.to_string()),
        "fig2" => Ok(fig2::run()),
        "fig3" => fig3::run(quality).map_err(|e| e.to_string()),
        "fig6" => fig6::run(quality).map_err(|e| e.to_string()),
        "fig7" => fig7::run(quality).map_err(|e| e.to_string()),
        "fig9" => fig9::run(quality).map_err(|e| e.to_string()),
        "fig10" => fig10::run(quality).map_err(|e| e.to_string()),
        "fig11" => fig11::run(quality).map_err(|e| e.to_string()),
        "fig12" => fig12::run(quality).map_err(|e| e.to_string()),
        "fig13" => fig13::run(quality).map_err(|e| e.to_string()),
        "table3" => Ok(table3::run()),
        "table5" => table5::run(quality).map_err(|e| e.to_string()),
        "scaling" => scaling::run(quality).map_err(|e| e.to_string()),
        "failure" => failure::run(quality).map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown experiment {other:?}; known: {ALL_EXPERIMENTS:?} plus {EXTRA_EXPERIMENTS:?}"
        )),
    }
}
