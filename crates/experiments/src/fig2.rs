//! Fig. 2: link cost as a function of load for a unit-capacity link —
//! the Fortz–Thorup piecewise-linear cost against the (q, β) family with
//! β = 0, 1, 2 and q = 1.
//!
//! The (q, β) "cost" of load `f` on a unit link is the utility loss
//! `Φ_β(f) = V(1) − V(1 − f)`, normalised so `Φ_β(0) = 0`:
//! `Φ_0(f) = f`, `Φ_1(f) = −ln(1 − f)`, `Φ_2(f) = 1/(1−f) − 1`.

use spef_baselines::fortz_thorup::FtCost;
use spef_core::Objective;
use spef_graph::EdgeId;

use crate::report::{CsvFile, ExperimentResult, TextTable};

/// Loads sampled along the x-axis.
pub const SAMPLES: usize = 100;

/// Computes the β-family cost `V(1) − V(1 − f)` for a unit link.
pub fn beta_cost(beta: f64, load: f64) -> f64 {
    let obj = Objective::uniform(beta, 1);
    let e = EdgeId::new(0);
    obj.utility(e, 1.0) - obj.utility(e, (1.0 - load).max(1e-12))
}

/// Runs the Fig. 2 reproduction.
pub fn run() -> ExperimentResult {
    let mut rows = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        let load = i as f64 / SAMPLES as f64;
        rows.push(vec![
            load,
            FtCost.cost(load, 1.0),
            beta_cost(0.0, load),
            beta_cost(1.0, load),
            beta_cost(2.0, load),
        ]);
    }

    let mut table = TextTable::new(
        "Fig. 2 — link cost vs load (capacity 1); sampled points",
        &["load", "FT", "beta=0", "beta=1", "beta=2"],
    );
    for &i in &[0usize, 33, 66, 90, 95, 99] {
        table.push_row(rows[i].iter().map(|v| format!("{v:.3}")).collect());
    }

    ExperimentResult {
        id: "fig2",
        tables: vec![table],
        csvs: vec![CsvFile::from_rows(
            "fig2.csv",
            &["load", "ft", "beta0", "beta1", "beta2"],
            &rows,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_paper_shape() {
        // All curves are 0 at load 0, increasing; the barrier curves
        // (β ≥ 1) and FT explode near 1, β=0 stays linear.
        assert_eq!(beta_cost(0.0, 0.0), 0.0);
        assert!((beta_cost(0.0, 0.7) - 0.7).abs() < 1e-12);
        assert!(beta_cost(1.0, 0.99) > 4.0);
        assert!(beta_cost(2.0, 0.99) > beta_cost(1.0, 0.99));
        // FT reaches ~10 at capacity and explodes past it (the 500 slope).
        assert!(FtCost.cost(0.99, 1.0) > 9.0);
        assert!(FtCost.cost(1.05, 1.0) > 10.0);
        // Ordering at moderate load: β=2 ≥ β=1 ≥ β=0.
        let f = 0.8;
        assert!(beta_cost(2.0, f) >= beta_cost(1.0, f));
        assert!(beta_cost(1.0, f) >= beta_cost(0.0, f));
    }

    #[test]
    fn run_produces_full_csv() {
        let r = run();
        assert_eq!(r.csvs[0].content.lines().count(), SAMPLES + 1);
        assert_eq!(r.tables[0].rows.len(), 6);
    }
}
