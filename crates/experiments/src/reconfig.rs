//! Reconfiguration workload: ordered weight pushes between two weight
//! settings, with the transient MLU after every push.
//!
//! After a failure the operator re-optimises and must migrate the network
//! from the stale weight setting to the new optimum. Weights are pushed one
//! link at a time (an LSA flood per change), and between pushes the network
//! routes on a *mixed* weight vector that is optimal for neither endpoint —
//! the transient. This module measures that transient: starting from
//! `from`, push each differing weight until the vector equals `to`,
//! routing even-ECMP at every intermediate state and recording the peak
//! MLU along the way.
//!
//! Two push orders are compared:
//!
//! * **naive** — ascending link index, the "replay the diff" order an
//!   unsophisticated tool would use;
//! * **greedy** — at each step push the weight whose new mixed state has
//!   the lowest MLU (ties broken toward the lowest link index), an O(k²)
//!   lookahead that models a transient-aware scheduler.
//!
//! Both orders traverse the same endpoints, so `greedy_peak_mlu <=
//! naive_peak_mlu` is *not* guaranteed in general (greedy is myopic), but
//! the greedy order never does worse on the first step and in practice
//! shaves the worst transients.
//!
//! Routing during the transient is plain even-split ECMP: the second
//! weights are stale the moment the path set changes, so the split ratios
//! degenerate exactly as in the stale-failure model (see
//! [`crate::failure`]). Equal-cost ties are detected with the shared
//! stale-weight threshold [`spef_core::STALE_WEIGHT_DAG_RTOL`] scaled by
//! the largest weight of the *current mixed vector*.

use spef_core::{
    build_dags, metrics, traffic_distribution, Flows, RoutingEngine, SpefError, SpfStats,
    SplitRule, STALE_WEIGHT_DAG_RTOL,
};
use spef_graph::NodeId;
use spef_topology::{Network, TrafficMatrix};

/// Transient measurements of one ordered weight migration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigOutcome {
    /// Number of links whose weight differs between the endpoints (pushes
    /// performed by each order).
    pub steps: usize,
    /// Peak transient MLU under the naive ascending-index push order
    /// (maximum over the start state and the state after every push).
    pub naive_peak_mlu: f64,
    /// Peak transient MLU under the greedy minimum-MLU push order.
    pub greedy_peak_mlu: f64,
}

/// Even-ECMP MLU of one weight vector on a (possibly degraded) network
/// under the given equal-cost tolerance. Shared by the reconfiguration
/// transient, the harness's failure stage and the failure experiment.
pub(crate) fn even_ecmp_mlu(
    network: &Network,
    traffic: &TrafficMatrix,
    dests: &[NodeId],
    weights: &[f64],
    dijkstra_tolerance: f64,
) -> Result<f64, SpefError> {
    let dags = build_dags(network.graph(), weights, dests, dijkstra_tolerance)?;
    let flows = traffic_distribution(network.graph(), &dags, traffic, SplitRule::EvenEcmp)?;
    Ok(metrics::max_link_utilization(network, flows.aggregate()))
}

/// Even-ECMP MLU of one (possibly mixed) weight vector, with the stale
/// equal-cost tolerance scaled to the vector's largest weight — the
/// free-function reference the engine-backed evaluation in
/// [`migrate_with`] is pinned against (production code routes through the
/// persistent engine; this stays as the test oracle).
#[cfg(test)]
fn transient_mlu(
    network: &Network,
    traffic: &TrafficMatrix,
    dests: &[NodeId],
    weights: &[f64],
) -> Result<f64, SpefError> {
    let max_w = weights.iter().cloned().fold(0.0, f64::max);
    even_ecmp_mlu(
        network,
        traffic,
        dests,
        weights,
        STALE_WEIGHT_DAG_RTOL * max_w,
    )
}

/// Measures the transient of migrating `network`'s weights from `from` to
/// `to`, one push at a time, under both push orders.
///
/// Weights are compared bitwise: a link is "changed" iff its weight
/// differs in the `f64` bit pattern, so the step count is deterministic
/// and never inflated by representation noise.
///
/// # Errors
///
/// Propagates routing errors from any intermediate state; panics if the
/// two vectors' lengths differ from the network's link count.
pub fn migrate(
    network: &Network,
    traffic: &TrafficMatrix,
    from: &[f64],
    to: &[f64],
) -> Result<ReconfigOutcome, SpefError> {
    migrate_with(network, traffic, from, to, false).map(|(outcome, _)| outcome)
}

/// [`migrate`] with an explicit engine mode, returning the probe engine's
/// SPF counters alongside the outcome — the bench surface of the
/// incremental path. `full_rebuild` forces dense SPF rebuilds for every
/// intermediate state; the default incremental mode rebuilds only
/// destinations a push can affect (bit-identical outcome either way).
///
/// Every intermediate state is evaluated on **one persistent engine**, so
/// consecutive single-push states are one-weight deltas the engine's
/// delta path can exploit. The per-state equal-cost tolerance still
/// tracks the mixed vector's largest weight; a push that changes the
/// maximum changes the tolerance and falls back to a dense rebuild
/// automatically.
///
/// # Errors
///
/// Same conditions as [`migrate`].
pub fn migrate_with(
    network: &Network,
    traffic: &TrafficMatrix,
    from: &[f64],
    to: &[f64],
    full_rebuild: bool,
) -> Result<(ReconfigOutcome, SpfStats), SpefError> {
    let m = network.link_count();
    assert_eq!(from.len(), m, "`from` must cover every link");
    assert_eq!(to.len(), m, "`to` must cover every link");
    let dests = traffic.destinations();

    let mut engine = RoutingEngine::new(network.graph());
    engine.set_incremental(!full_rebuild);
    let mut flows = engine.distribute_fresh();
    // The engine-backed twin of [`transient_mlu`]: bit-identical MLUs
    // (pinned by `engine_matches_free_functions_bit_for_bit` below), but
    // DAGs, tables and flow columns persist across the push sequence.
    let eval =
        |w: &[f64], engine: &mut RoutingEngine<'_>, flows: &mut Flows| -> Result<f64, SpefError> {
            let max_w = w.iter().cloned().fold(0.0, f64::max);
            engine.build_dags(w, &dests, STALE_WEIGHT_DAG_RTOL * max_w)?;
            engine.distribute_into(traffic, SplitRule::EvenEcmp, flows)?;
            Ok(metrics::max_link_utilization(network, flows.aggregate()))
        };

    let changed: Vec<usize> = (0..m)
        .filter(|&e| from[e].to_bits() != to[e].to_bits())
        .collect();
    let start_mlu = eval(from, &mut engine, &mut flows)?;

    // Naive order: ascending link index.
    let mut w = from.to_vec();
    let mut naive_peak = start_mlu;
    for &e in &changed {
        w[e] = to[e];
        naive_peak = naive_peak.max(eval(&w, &mut engine, &mut flows)?);
    }

    // Greedy order: at each step try every remaining push and commit the
    // one whose mixed state has the lowest MLU (lowest index on ties).
    let mut w = from.to_vec();
    let mut greedy_peak = start_mlu;
    let mut remaining = changed.clone();
    while !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None; // (position in `remaining`, mlu)
        for (pos, &e) in remaining.iter().enumerate() {
            let old = w[e];
            w[e] = to[e];
            let mlu = eval(&w, &mut engine, &mut flows)?;
            w[e] = old;
            // Strict `<` keeps the first (lowest-index) minimiser.
            if best.map(|(_, b)| mlu < b).unwrap_or(true) {
                best = Some((pos, mlu));
            }
        }
        let (pos, mlu) = best.expect("remaining is non-empty");
        let e = remaining.remove(pos);
        w[e] = to[e];
        greedy_peak = greedy_peak.max(mlu);
    }

    Ok((
        ReconfigOutcome {
            steps: changed.len(),
            naive_peak_mlu: naive_peak,
            greedy_peak_mlu: greedy_peak,
        },
        engine.spf_stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_topology::standard;

    fn abilene_instance(load: f64) -> (Network, TrafficMatrix) {
        let net = standard::abilene();
        let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, load);
        (net, tm)
    }

    #[test]
    fn identical_endpoints_take_zero_steps() {
        let (net, tm) = abilene_instance(0.05);
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let out = migrate(&net, &tm, &w, &w).unwrap();
        assert_eq!(out.steps, 0);
        // Both peaks degenerate to the (shared) endpoint MLU.
        assert_eq!(out.naive_peak_mlu.to_bits(), out.greedy_peak_mlu.to_bits());
        assert!(out.naive_peak_mlu > 0.0);
    }

    #[test]
    fn peaks_dominate_both_endpoints() {
        let (net, tm) = abilene_instance(0.05);
        let from: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        // A deliberately different endpoint: uniform weights.
        let to = vec![1.0; net.link_count()];
        let dests = tm.destinations();
        let start = transient_mlu(&net, &tm, &dests, &from).unwrap();
        let end = transient_mlu(&net, &tm, &dests, &to).unwrap();
        let out = migrate(&net, &tm, &from, &to).unwrap();
        assert!(out.steps > 0);
        for peak in [out.naive_peak_mlu, out.greedy_peak_mlu] {
            assert!(peak >= start - 1e-12, "peak {peak} vs start {start}");
            assert!(peak >= end - 1e-12, "peak {peak} vs end {end}");
        }
    }

    #[test]
    fn migration_is_deterministic() {
        let (net, tm) = abilene_instance(0.08);
        let from: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let to = vec![1.0; net.link_count()];
        let a = migrate(&net, &tm, &from, &to).unwrap();
        let b = migrate(&net, &tm, &from, &to).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.naive_peak_mlu.to_bits(), b.naive_peak_mlu.to_bits());
        assert_eq!(a.greedy_peak_mlu.to_bits(), b.greedy_peak_mlu.to_bits());
    }

    #[test]
    fn engine_matches_free_functions_bit_for_bit() {
        // The persistent-engine evaluation must reproduce the legacy
        // free-function transient MLUs exactly: recompute the naive
        // order's peak with `transient_mlu` and compare bitwise, for the
        // incremental and the forced-dense engine alike.
        let (net, tm) = abilene_instance(0.08);
        let from: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let to: Vec<f64> = vec![1.0; net.link_count()];
        let dests = tm.destinations();
        let changed: Vec<usize> = (0..net.link_count())
            .filter(|&e| from[e].to_bits() != to[e].to_bits())
            .collect();
        let mut peak = transient_mlu(&net, &tm, &dests, &from).unwrap();
        let mut w = from.clone();
        for &e in &changed {
            w[e] = to[e];
            peak = peak.max(transient_mlu(&net, &tm, &dests, &w).unwrap());
        }
        let (inc, inc_stats) = migrate_with(&net, &tm, &from, &to, false).unwrap();
        let (full, full_stats) = migrate_with(&net, &tm, &from, &to, true).unwrap();
        assert_eq!(inc.naive_peak_mlu.to_bits(), peak.to_bits());
        assert_eq!(full.naive_peak_mlu.to_bits(), peak.to_bits());
        assert_eq!(inc, full);
        assert!(
            inc_stats.incremental_builds > 0,
            "push probes never took the incremental path: {inc_stats:?}"
        );
        assert_eq!(full_stats.incremental_builds, 0);
    }

    #[test]
    fn greedy_first_step_never_exceeds_naive_first_step() {
        // The greedy order's first push is the minimum over all single
        // pushes, which includes naive's first push — so with exactly one
        // changed weight the two orders coincide.
        let (net, tm) = abilene_instance(0.05);
        let from: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let mut to = from.clone();
        to[3] += 0.5;
        let out = migrate(&net, &tm, &from, &to).unwrap();
        assert_eq!(out.steps, 1);
        assert_eq!(out.naive_peak_mlu.to_bits(), out.greedy_peak_mlu.to_bits());
    }
}
