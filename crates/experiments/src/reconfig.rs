//! Reconfiguration workload: ordered weight pushes between two weight
//! settings, with the transient MLU after every push.
//!
//! After a failure the operator re-optimises and must migrate the network
//! from the stale weight setting to the new optimum. Weights are pushed one
//! link at a time (an LSA flood per change), and between pushes the network
//! routes on a *mixed* weight vector that is optimal for neither endpoint —
//! the transient. This module measures that transient: starting from
//! `from`, push each differing weight until the vector equals `to`,
//! routing even-ECMP at every intermediate state and recording the peak
//! MLU along the way.
//!
//! Two push orders are compared:
//!
//! * **naive** — ascending link index, the "replay the diff" order an
//!   unsophisticated tool would use;
//! * **greedy** — at each step push the weight whose new mixed state has
//!   the lowest MLU (ties broken toward the lowest link index), an O(k²)
//!   lookahead that models a transient-aware scheduler.
//!
//! Both orders traverse the same endpoints, so `greedy_peak_mlu <=
//! naive_peak_mlu` is *not* guaranteed in general (greedy is myopic), but
//! the greedy order never does worse on the first step and in practice
//! shaves the worst transients.
//!
//! Routing during the transient is plain even-split ECMP: the second
//! weights are stale the moment the path set changes, so the split ratios
//! degenerate exactly as in the stale-failure model (see
//! [`crate::failure`]). Equal-cost ties are detected with the shared
//! stale-weight threshold [`spef_core::STALE_WEIGHT_DAG_RTOL`] scaled by
//! the largest weight of the *current mixed vector*.

use spef_core::{
    metrics, EngineState, Flows, RoutingEngine, SpefError, SpfStats, SplitRule,
    STALE_WEIGHT_DAG_RTOL,
};
use spef_graph::{EdgeId, NodeId};
use spef_topology::{Network, TrafficMatrix};

/// Transient measurements of one ordered weight migration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigOutcome {
    /// Number of links whose weight differs between the endpoints (pushes
    /// performed by each order).
    pub steps: usize,
    /// Peak transient MLU under the naive ascending-index push order
    /// (maximum over the start state and the state after every push).
    pub naive_peak_mlu: f64,
    /// Peak transient MLU under the greedy minimum-MLU push order.
    pub greedy_peak_mlu: f64,
}

/// Even-ECMP MLU of one weight vector on a (possibly degraded) network
/// under the given equal-cost tolerance — the cold free-function oracle
/// the persistent probes ([`MluProbe`], [`migrate_with`]) are pinned
/// against. Production code routes through the engines; this stays as
/// the reference.
#[cfg(test)]
fn even_ecmp_mlu(
    network: &Network,
    traffic: &TrafficMatrix,
    dests: &[NodeId],
    weights: &[f64],
    dijkstra_tolerance: f64,
) -> Result<f64, SpefError> {
    let dags = spef_core::build_dags(network.graph(), weights, dests, dijkstra_tolerance)?;
    let flows =
        spef_core::traffic_distribution(network.graph(), &dags, traffic, SplitRule::EvenEcmp)?;
    Ok(metrics::max_link_utilization(network, flows.aggregate()))
}

/// A persistent even-ECMP MLU probe over failure circuits: one detached
/// engine state plus one flow buffer, reused across calls.
///
/// Each [`MluProbe::mlu`] call attaches the saved state to the *intact*
/// network, masks the probed circuit in place with
/// [`RoutingEngine::fail_links`], routes, folds the MLU, and restores the
/// mask before detaching again. Because the weights passed across calls
/// are typically identical (a fixed routing probed under many circuits),
/// the SPF fingerprint survives every round-trip and each probe rebuilds
/// only the destinations whose DAGs used the failed links. The MLU is
/// bit-identical to [`even_ecmp_mlu`] on the matching `without_links`
/// degraded network with kept-remapped weights: the masked adjacency
/// compacts to the degraded one entry for entry, masked links carry zero
/// flow, and link utilisations are non-negative, so the intact-link fold
/// reaches the same maximum.
///
/// An empty `circuit` degenerates to a persistent intact-network MLU
/// evaluation.
pub struct MluProbe {
    state: Option<EngineState>,
    flows: Option<Flows>,
    full_rebuild: bool,
}

impl MluProbe {
    /// Creates an empty probe. `full_rebuild` forces dense SPF rebuilds
    /// on every call (the regression baseline); the default incremental
    /// mode patches masks and weights in place.
    pub fn new(full_rebuild: bool) -> MluProbe {
        MluProbe {
            state: None,
            flows: None,
            full_rebuild,
        }
    }

    /// Even-ECMP MLU of `weights` (full length — one per intact link) on
    /// `network` with the links of `circuit` failed.
    ///
    /// # Errors
    ///
    /// Propagates routing errors and out-of-range circuit ids. On error
    /// the saved state is discarded — a half-masked engine is never
    /// reattached, so the next call starts cold.
    pub fn mlu(
        &mut self,
        network: &Network,
        traffic: &TrafficMatrix,
        dests: &[NodeId],
        weights: &[f64],
        dijkstra_tolerance: f64,
        circuit: &[EdgeId],
    ) -> Result<f64, SpefError> {
        let mut engine = match self.state.take() {
            Some(state) => RoutingEngine::with_state(network.graph(), state),
            None => RoutingEngine::new(network.graph()),
        };
        engine.set_incremental(!self.full_rebuild);
        let mut flows = self
            .flows
            .take()
            .unwrap_or_else(|| engine.distribute_fresh());
        engine.fail_links(circuit)?;
        engine.build_dags(weights, dests, dijkstra_tolerance)?;
        engine.distribute_into(traffic, SplitRule::EvenEcmp, &mut flows)?;
        let mlu = metrics::max_link_utilization(network, flows.aggregate());
        engine.restore_links(circuit)?;
        self.state = Some(engine.into_state());
        self.flows = Some(flows);
        Ok(mlu)
    }

    /// SPF counters accumulated by the saved engine state (zeroed until
    /// the first successful probe).
    pub fn spf_stats(&self) -> SpfStats {
        self.state
            .as_ref()
            .map(EngineState::spf_stats)
            .unwrap_or_default()
    }
}

/// Even-ECMP MLU of one (possibly mixed) weight vector, with the stale
/// equal-cost tolerance scaled to the vector's largest weight — the
/// free-function reference the engine-backed evaluation in
/// [`migrate_with`] is pinned against (production code routes through the
/// persistent engine; this stays as the test oracle).
#[cfg(test)]
fn transient_mlu(
    network: &Network,
    traffic: &TrafficMatrix,
    dests: &[NodeId],
    weights: &[f64],
) -> Result<f64, SpefError> {
    let max_w = weights.iter().cloned().fold(0.0, f64::max);
    even_ecmp_mlu(
        network,
        traffic,
        dests,
        weights,
        STALE_WEIGHT_DAG_RTOL * max_w,
    )
}

/// Measures the transient of migrating `network`'s weights from `from` to
/// `to`, one push at a time, under both push orders.
///
/// Weights are compared bitwise: a link is "changed" iff its weight
/// differs in the `f64` bit pattern, so the step count is deterministic
/// and never inflated by representation noise.
///
/// # Errors
///
/// Propagates routing errors from any intermediate state; panics if the
/// two vectors' lengths differ from the network's link count.
pub fn migrate(
    network: &Network,
    traffic: &TrafficMatrix,
    from: &[f64],
    to: &[f64],
) -> Result<ReconfigOutcome, SpefError> {
    migrate_with(network, traffic, from, to, false).map(|(outcome, _)| outcome)
}

/// [`migrate`] with an explicit engine mode, returning the probe engine's
/// SPF counters alongside the outcome — the bench surface of the
/// incremental path. `full_rebuild` forces dense SPF rebuilds for every
/// intermediate state; the default incremental mode rebuilds only
/// destinations a push can affect (bit-identical outcome either way).
///
/// Every intermediate state is evaluated on **one persistent engine**, so
/// consecutive single-push states are one-weight deltas the engine's
/// delta path can exploit. The per-state equal-cost tolerance still
/// tracks the mixed vector's largest weight; a push that changes the
/// maximum changes the tolerance and falls back to a dense rebuild
/// automatically.
///
/// # Errors
///
/// Same conditions as [`migrate`].
pub fn migrate_with(
    network: &Network,
    traffic: &TrafficMatrix,
    from: &[f64],
    to: &[f64],
    full_rebuild: bool,
) -> Result<(ReconfigOutcome, SpfStats), SpefError> {
    let m = network.link_count();
    assert_eq!(from.len(), m, "`from` must cover every link");
    assert_eq!(to.len(), m, "`to` must cover every link");
    let dests = traffic.destinations();

    let mut engine = RoutingEngine::new(network.graph());
    engine.set_incremental(!full_rebuild);
    let mut flows = engine.distribute_fresh();
    // The engine-backed twin of [`transient_mlu`]: bit-identical MLUs
    // (pinned by `engine_matches_free_functions_bit_for_bit` below), but
    // DAGs, tables and flow columns persist across the push sequence.
    let eval =
        |w: &[f64], engine: &mut RoutingEngine<'_>, flows: &mut Flows| -> Result<f64, SpefError> {
            let max_w = w.iter().cloned().fold(0.0, f64::max);
            engine.build_dags(w, &dests, STALE_WEIGHT_DAG_RTOL * max_w)?;
            engine.distribute_into(traffic, SplitRule::EvenEcmp, flows)?;
            Ok(metrics::max_link_utilization(network, flows.aggregate()))
        };

    let changed: Vec<usize> = (0..m)
        .filter(|&e| from[e].to_bits() != to[e].to_bits())
        .collect();
    let start_mlu = eval(from, &mut engine, &mut flows)?;

    // Naive order: ascending link index.
    let mut w = from.to_vec();
    let mut naive_peak = start_mlu;
    for &e in &changed {
        w[e] = to[e];
        naive_peak = naive_peak.max(eval(&w, &mut engine, &mut flows)?);
    }

    // Greedy order: at each step try every remaining push and commit the
    // one whose mixed state has the lowest MLU (lowest index on ties).
    let mut w = from.to_vec();
    let mut greedy_peak = start_mlu;
    let mut remaining = changed.clone();
    while !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None; // (position in `remaining`, mlu)
        for (pos, &e) in remaining.iter().enumerate() {
            let old = w[e];
            w[e] = to[e];
            let mlu = eval(&w, &mut engine, &mut flows)?;
            w[e] = old;
            // Strict `<` keeps the first (lowest-index) minimiser.
            if best.map(|(_, b)| mlu < b).unwrap_or(true) {
                best = Some((pos, mlu));
            }
        }
        let (pos, mlu) = best.expect("remaining is non-empty");
        let e = remaining.remove(pos);
        w[e] = to[e];
        greedy_peak = greedy_peak.max(mlu);
    }

    Ok((
        ReconfigOutcome {
            steps: changed.len(),
            naive_peak_mlu: naive_peak,
            greedy_peak_mlu: greedy_peak,
        },
        engine.spf_stats(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_topology::standard;

    fn abilene_instance(load: f64) -> (Network, TrafficMatrix) {
        let net = standard::abilene();
        let tm = TrafficMatrix::fortz_thorup(&net, 1).scaled_to_network_load(&net, load);
        (net, tm)
    }

    #[test]
    fn identical_endpoints_take_zero_steps() {
        let (net, tm) = abilene_instance(0.05);
        let w: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let out = migrate(&net, &tm, &w, &w).unwrap();
        assert_eq!(out.steps, 0);
        // Both peaks degenerate to the (shared) endpoint MLU.
        assert_eq!(out.naive_peak_mlu.to_bits(), out.greedy_peak_mlu.to_bits());
        assert!(out.naive_peak_mlu > 0.0);
    }

    #[test]
    fn peaks_dominate_both_endpoints() {
        let (net, tm) = abilene_instance(0.05);
        let from: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        // A deliberately different endpoint: uniform weights.
        let to = vec![1.0; net.link_count()];
        let dests = tm.destinations();
        let start = transient_mlu(&net, &tm, &dests, &from).unwrap();
        let end = transient_mlu(&net, &tm, &dests, &to).unwrap();
        let out = migrate(&net, &tm, &from, &to).unwrap();
        assert!(out.steps > 0);
        for peak in [out.naive_peak_mlu, out.greedy_peak_mlu] {
            assert!(peak >= start - 1e-12, "peak {peak} vs start {start}");
            assert!(peak >= end - 1e-12, "peak {peak} vs end {end}");
        }
    }

    #[test]
    fn migration_is_deterministic() {
        let (net, tm) = abilene_instance(0.08);
        let from: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let to = vec![1.0; net.link_count()];
        let a = migrate(&net, &tm, &from, &to).unwrap();
        let b = migrate(&net, &tm, &from, &to).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.naive_peak_mlu.to_bits(), b.naive_peak_mlu.to_bits());
        assert_eq!(a.greedy_peak_mlu.to_bits(), b.greedy_peak_mlu.to_bits());
    }

    #[test]
    fn engine_matches_free_functions_bit_for_bit() {
        // The persistent-engine evaluation must reproduce the legacy
        // free-function transient MLUs exactly: recompute the naive
        // order's peak with `transient_mlu` and compare bitwise, for the
        // incremental and the forced-dense engine alike.
        let (net, tm) = abilene_instance(0.08);
        let from: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let to: Vec<f64> = vec![1.0; net.link_count()];
        let dests = tm.destinations();
        let changed: Vec<usize> = (0..net.link_count())
            .filter(|&e| from[e].to_bits() != to[e].to_bits())
            .collect();
        let mut peak = transient_mlu(&net, &tm, &dests, &from).unwrap();
        let mut w = from.clone();
        for &e in &changed {
            w[e] = to[e];
            peak = peak.max(transient_mlu(&net, &tm, &dests, &w).unwrap());
        }
        let (inc, inc_stats) = migrate_with(&net, &tm, &from, &to, false).unwrap();
        let (full, full_stats) = migrate_with(&net, &tm, &from, &to, true).unwrap();
        assert_eq!(inc.naive_peak_mlu.to_bits(), peak.to_bits());
        assert_eq!(full.naive_peak_mlu.to_bits(), peak.to_bits());
        assert_eq!(inc, full);
        assert!(
            inc_stats.incremental_builds > 0,
            "push probes never took the incremental path: {inc_stats:?}"
        );
        assert_eq!(full_stats.incremental_builds, 0);
    }

    #[test]
    fn mlu_probe_matches_degraded_free_function() {
        // One persistent probe across every connected circuit must
        // reproduce the cold free-function MLU on the corresponding
        // `without_links` network bit for bit, under both engine modes.
        // Varied integer weights keep the DAGs thin enough that some
        // circuits sit on few of them, so the in-place patch path (not
        // just its dense fallback) is exercised; invcap with tolerance 0
        // ties so many equal-cost paths on Abilene that every circuit
        // dirties more than half the destinations.
        let (net, tm) = abilene_instance(0.05);
        let dests = tm.destinations();
        let weights: Vec<f64> = (0..net.link_count())
            .map(|e| 1.0 + (e % 7) as f64)
            .collect();
        let mut masked = MluProbe::new(false);
        let mut dense = MluProbe::new(true);
        let mut probed = 0usize;
        for circuit in net.duplex_circuits() {
            let Ok((degraded, kept)) = net.without_links(&circuit) else {
                continue;
            };
            let dw: Vec<f64> = kept.iter().map(|e| weights[e.index()]).collect();
            let expect = even_ecmp_mlu(&degraded, &tm, &dests, &dw, 0.0).unwrap();
            for probe in [&mut masked, &mut dense] {
                let got = probe
                    .mlu(&net, &tm, &dests, &weights, 0.0, &circuit)
                    .unwrap();
                assert_eq!(got.to_bits(), expect.to_bits());
            }
            probed += 1;
        }
        assert!(probed > 0);
        let stats = masked.spf_stats();
        assert!(stats.topology_builds > 0, "{stats:?}");
        assert_eq!(dense.spf_stats().topology_builds, 0);
    }

    #[test]
    fn greedy_first_step_never_exceeds_naive_first_step() {
        // The greedy order's first push is the minimum over all single
        // pushes, which includes naive's first push — so with exactly one
        // changed weight the two orders coincide.
        let (net, tm) = abilene_instance(0.05);
        let from: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();
        let mut to = from.clone();
        to[3] += 0.5;
        let out = migrate(&net, &tm, &from, &to).unwrap();
        assert_eq!(out.steps, 1);
        assert_eq!(out.naive_peak_mlu.to_bits(), out.greedy_peak_mlu.to_bits());
    }
}
