//! Declarative scenario descriptions for the sweep harness.
//!
//! A [`Scenario`] pins down everything needed to reproduce one SPEF run —
//! topology, traffic model and seed, load scale, (q, β) objective, solver —
//! as plain serializable data, so a batch of results can name exactly what
//! produced each number. [`ScenarioGrid`] builds the cartesian product the
//! paper-style evaluations sweep over (topology × seed × load × β × solver).

use serde::{Deserialize, Serialize};
use serde::{Error as SerdeError, Value};
use spef_core::{
    ConvergenceCriteria, DualDecompConfig, FrankWolfeConfig, NemConfig, Objective, SpefConfig,
    TeSolverKind,
};
use spef_netsim::SimConfig;
use spef_topology::{gen, standard, Network, TrafficMatrix};

/// Which evaluation network a scenario runs on.
///
/// The named variants are the paper's networks (§V.B TABLE III plus the two
/// pedagogical examples); [`TopologySpec::Random`] and
/// [`TopologySpec::Hierarchical`] expose the generators directly so sweeps
/// can scale beyond the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// Fig. 1's 4-node example.
    Fig1,
    /// Fig. 4's 7-node, 13-link example.
    Fig4,
    /// The Abilene backbone (11 nodes, 28 links).
    Abilene,
    /// The CERNET2 backbone (20 nodes, 44 links).
    Cernet2,
    /// TABLE III's Hier50a (seeded 2-level GT-ITM-style hierarchy).
    Hier50a,
    /// TABLE III's Hier50b.
    Hier50b,
    /// TABLE III's Rand50a (seeded random network).
    Rand50a,
    /// TABLE III's Rand50b.
    Rand50b,
    /// TABLE III's Rand100.
    Rand100,
    /// A seeded 200-node 3-tier ISP-like network (8 cores × 4 aggregation
    /// × 5 edge routers) — the smallest rung of the scaling family.
    Hier200,
    /// A seeded 500-node 3-tier network (10 cores × 7 aggregation × 6
    /// edge routers).
    Hier500,
    /// A seeded 1000-node 3-tier network (10 cores × 9 aggregation × 10
    /// edge routers) — the thousand-node rung the tiled engine exists for.
    Hier1000,
    /// A connected random network with exactly `links` directed links.
    Random {
        /// Node count.
        nodes: usize,
        /// Directed link count (must be even and connectable).
        links: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A 2-level hierarchical network of `domains × per_domain` nodes.
    Hierarchical {
        /// Number of top-level domains.
        domains: usize,
        /// Nodes per domain.
        per_domain: usize,
        /// Directed link count.
        links: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Materializes the network.
    pub fn build(&self) -> Network {
        match self {
            TopologySpec::Fig1 => standard::fig1(),
            TopologySpec::Fig4 => standard::fig4(),
            TopologySpec::Abilene => standard::abilene(),
            TopologySpec::Cernet2 => standard::cernet2(),
            TopologySpec::Hier50a => gen::hierarchical_network("Hier50a", 5, 10, 222, 0xA11CE),
            TopologySpec::Hier50b => gen::hierarchical_network("Hier50b", 5, 10, 152, 0xB0B),
            TopologySpec::Rand50a => gen::random_network("Rand50a", 50, 242, 0xC0FFEE),
            TopologySpec::Rand50b => gen::random_network("Rand50b", 50, 230, 0xD1CE),
            TopologySpec::Rand100 => gen::random_network("Rand100", 100, 392, 0xFEED),
            TopologySpec::Hier200 => gen::tiered_network("Tier200", 8, 4, 5, 0x7E2),
            TopologySpec::Hier500 => gen::tiered_network("Tier500", 10, 7, 6, 0x7E5),
            TopologySpec::Hier1000 => gen::tiered_network("Tier1000", 10, 9, 10, 0x7EA),
            TopologySpec::Random { nodes, links, seed } => {
                gen::random_network(&format!("Rand{nodes}"), *nodes, *links, *seed)
            }
            TopologySpec::Hierarchical {
                domains,
                per_domain,
                links,
                seed,
            } => gen::hierarchical_network(
                &format!("Hier{}", domains * per_domain),
                *domains,
                *per_domain,
                *links,
                *seed,
            ),
        }
    }

    /// A short stable identifier used in scenario ids and CLI flags.
    pub fn id(&self) -> String {
        match self {
            TopologySpec::Fig1 => "fig1".into(),
            TopologySpec::Fig4 => "fig4".into(),
            TopologySpec::Abilene => "abilene".into(),
            TopologySpec::Cernet2 => "cernet2".into(),
            TopologySpec::Hier50a => "hier50a".into(),
            TopologySpec::Hier50b => "hier50b".into(),
            TopologySpec::Rand50a => "rand50a".into(),
            TopologySpec::Rand50b => "rand50b".into(),
            TopologySpec::Rand100 => "rand100".into(),
            TopologySpec::Hier200 => "hier200".into(),
            TopologySpec::Hier500 => "hier500".into(),
            TopologySpec::Hier1000 => "hier1000".into(),
            TopologySpec::Random { nodes, links, seed } => {
                format!("random-n{nodes}-m{links}-s{seed}")
            }
            TopologySpec::Hierarchical {
                domains,
                per_domain,
                links,
                seed,
            } => format!("hier-d{domains}x{per_domain}-m{links}-s{seed}"),
        }
    }

    /// Parses a CLI topology name (the named variants only).
    ///
    /// # Errors
    ///
    /// Returns a message listing the known names on failure.
    pub fn parse(name: &str) -> Result<TopologySpec, String> {
        match name {
            "fig1" => Ok(TopologySpec::Fig1),
            "fig4" => Ok(TopologySpec::Fig4),
            "abilene" => Ok(TopologySpec::Abilene),
            "cernet2" => Ok(TopologySpec::Cernet2),
            "hier50a" => Ok(TopologySpec::Hier50a),
            "hier50b" => Ok(TopologySpec::Hier50b),
            "rand50a" => Ok(TopologySpec::Rand50a),
            "rand50b" => Ok(TopologySpec::Rand50b),
            "rand100" => Ok(TopologySpec::Rand100),
            "hier200" => Ok(TopologySpec::Hier200),
            "hier500" => Ok(TopologySpec::Hier500),
            "hier1000" => Ok(TopologySpec::Hier1000),
            other => Err(format!(
                "unknown topology {other:?}; known: fig1, fig4, abilene, cernet2, \
                 hier50a, hier50b, rand50a, rand50b, rand100, hier200, hier500, \
                 hier1000"
            )),
        }
    }
}

// The offline serde derive handles fieldless enums only, so the two
// data-carrying variants are encoded by hand: named networks serialize as
// their id string, generator variants as a single-key object.
impl Serialize for TopologySpec {
    fn to_value(&self) -> Value {
        match self {
            TopologySpec::Random { nodes, links, seed } => Value::Object(vec![(
                "random".to_string(),
                Value::Object(vec![
                    ("nodes".to_string(), nodes.to_value()),
                    ("links".to_string(), links.to_value()),
                    ("seed".to_string(), seed.to_value()),
                ]),
            )]),
            TopologySpec::Hierarchical {
                domains,
                per_domain,
                links,
                seed,
            } => Value::Object(vec![(
                "hierarchical".to_string(),
                Value::Object(vec![
                    ("domains".to_string(), domains.to_value()),
                    ("per_domain".to_string(), per_domain.to_value()),
                    ("links".to_string(), links.to_value()),
                    ("seed".to_string(), seed.to_value()),
                ]),
            )]),
            named => Value::String(named.id()),
        }
    }
}

impl Deserialize for TopologySpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        if let Some(name) = value.as_str() {
            return TopologySpec::parse(name).map_err(SerdeError::custom);
        }
        let field = |outer: &Value, key: &str| -> Result<usize, SerdeError> {
            outer
                .get_field(key)
                .ok_or_else(|| SerdeError::custom(format!("missing field `{key}`")))
                .and_then(usize::from_value)
        };
        if let Some(body) = value.get_field("random") {
            return Ok(TopologySpec::Random {
                nodes: field(body, "nodes")?,
                links: field(body, "links")?,
                seed: u64::from_value(
                    body.get_field("seed")
                        .ok_or_else(|| SerdeError::custom("missing field `seed`"))?,
                )?,
            });
        }
        if let Some(body) = value.get_field("hierarchical") {
            return Ok(TopologySpec::Hierarchical {
                domains: field(body, "domains")?,
                per_domain: field(body, "per_domain")?,
                links: field(body, "links")?,
                seed: u64::from_value(
                    body.get_field("seed")
                        .ok_or_else(|| SerdeError::custom("missing field `seed`"))?,
                )?,
            });
        }
        Err(SerdeError::custom(format!(
            "invalid topology spec: {value:?}"
        )))
    }
}

/// Which demand model generates the traffic matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// The Fortz–Thorup demand model (used for Abilene and the synthetic
    /// networks in §V.B).
    FortzThorup,
    /// The gravity model with σ = 1 (the stand-in for the paper's
    /// NetFlow-derived CERNET2 demands).
    Gravity,
}

/// Traffic matrix recipe: model, seed and target network load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Demand model.
    pub model: TrafficModel,
    /// Demand-generator seed.
    pub seed: u64,
    /// Target network load the matrix is scaled to (total demand ÷ total
    /// capacity, as in `TrafficMatrix::scaled_to_network_load`).
    pub load: f64,
}

impl TrafficSpec {
    /// Materializes the traffic matrix for `network`.
    pub fn build(&self, network: &Network) -> TrafficMatrix {
        let tm = match self.model {
            TrafficModel::FortzThorup => TrafficMatrix::fortz_thorup(network, self.seed),
            TrafficModel::Gravity => TrafficMatrix::gravity(network, 1.0, self.seed),
        };
        tm.scaled_to_network_load(network, self.load)
    }

    /// A short stable identifier used in scenario ids.
    pub fn id(&self) -> String {
        let model = match self.model {
            TrafficModel::FortzThorup => "ft",
            TrafficModel::Gravity => "grav",
        };
        // Shortest round-trip float formatting: distinct loads always
        // produce distinct ids (ids are the join key of batch reports).
        format!("{model}-s{}-l{}", self.seed, self.load)
    }
}

/// The (q, β) proportional load-balance objective of Eq. (4), with uniform
/// per-link weight `q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveSpec {
    /// Uniform per-link objective weight (the paper's evaluations use 1).
    pub q: f64,
    /// The load-balance exponent β (β = 1 is proportional balance, β = 0
    /// the linear objective, large β approaches min-max).
    pub beta: f64,
}

impl ObjectiveSpec {
    /// Materializes the objective for a network with `links` links.
    pub fn build(&self, links: usize) -> Objective {
        Objective::with_weights(vec![self.q; links], self.beta)
    }
}

/// Which solver pipeline computes the routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverSpec {
    /// Frank–Wolfe at paper-fidelity budgets (the reference).
    FrankWolfe,
    /// Frank–Wolfe at reduced budgets (`FrankWolfeConfig::fast`) — the CI
    /// and smoke-sweep setting.
    FrankWolfeFast,
    /// Frank–Wolfe with *pinned* iteration counts (12 TE, 40 NEM): runs
    /// exactly that many iterations, ignores saved workspace solutions,
    /// and so produces results that are a pure function of the instance.
    /// The scaling family's setting — thousand-node sweeps finish in
    /// seconds and diff bit-identically regardless of sweep order.
    FrankWolfePinned,
    /// The paper's Algorithm 1 (distributed dual decomposition).
    DualDecomposition,
    /// The Fortz–Thorup OSPF weight local search
    /// ([`spef_baselines::FtOutcome`]) at a fixed sweep budget (weights
    /// 1..=20, 1000 evaluations, 1 restart, seed 0xF7). It produces an
    /// even-ECMP routing, not a SPEF pipeline, so the harness dispatches
    /// it directly — [`SolverSpec::build`] panics for this variant.
    FortzThorup,
}

impl SolverSpec {
    /// Materializes the full SPEF pipeline configuration.
    ///
    /// # Panics
    ///
    /// Panics for [`SolverSpec::FortzThorup`], which runs the
    /// `spef-baselines` weight search instead of a SPEF pipeline; the
    /// harness dispatches it before ever building a config.
    pub fn build(&self) -> SpefConfig {
        match self {
            SolverSpec::FortzThorup => {
                panic!("FortzThorup has no SpefConfig; the sweep harness dispatches it directly")
            }
            SolverSpec::FrankWolfe => SpefConfig::default(),
            SolverSpec::FrankWolfeFast => SpefConfig {
                solver: TeSolverKind::FrankWolfe(FrankWolfeConfig::fast()),
                nem: NemConfig {
                    convergence: ConvergenceCriteria::budget(1000),
                    ..NemConfig::default()
                },
                ..SpefConfig::default()
            },
            SolverSpec::FrankWolfePinned => SpefConfig {
                solver: TeSolverKind::FrankWolfe(FrankWolfeConfig {
                    convergence: ConvergenceCriteria::pinned(12),
                    ..FrankWolfeConfig::default()
                }),
                nem: NemConfig {
                    convergence: ConvergenceCriteria::pinned(40),
                    ..NemConfig::default()
                },
                ..SpefConfig::default()
            },
            SolverSpec::DualDecomposition => SpefConfig {
                solver: TeSolverKind::DualDecomposition(DualDecompConfig::default()),
                ..SpefConfig::default()
            },
        }
    }

    /// A short stable identifier used in scenario ids and CLI flags.
    pub fn id(&self) -> &'static str {
        match self {
            SolverSpec::FrankWolfe => "fw",
            SolverSpec::FrankWolfeFast => "fw-fast",
            SolverSpec::FrankWolfePinned => "fw-pinned",
            SolverSpec::DualDecomposition => "dd",
            SolverSpec::FortzThorup => "ft",
        }
    }

    /// Parses a CLI solver name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the known names on failure.
    pub fn parse(name: &str) -> Result<SolverSpec, String> {
        match name {
            "fw" => Ok(SolverSpec::FrankWolfe),
            "fw-fast" => Ok(SolverSpec::FrankWolfeFast),
            "fw-pinned" => Ok(SolverSpec::FrankWolfePinned),
            "dd" => Ok(SolverSpec::DualDecomposition),
            "ft" => Ok(SolverSpec::FortzThorup),
            other => Err(format!(
                "unknown solver {other:?}; known: fw, fw-fast, fw-pinned, dd, ft"
            )),
        }
    }
}

/// Packet-level simulation stage riding on a scenario: after the SPEF
/// pipeline solves the routing, the resulting FIB is driven through the
/// `spef-netsim` discrete-event simulator for `duration` simulated
/// seconds — the §V.D (Fig. 11) workload as a sweepable scenario family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSpec {
    /// Simulated seconds.
    pub duration: f64,
    /// Simulated seconds excluded from load/delay statistics.
    pub warmup: f64,
    /// Converts both capacity and demand units to bits/s (the sweep keeps
    /// the two symmetric; 1e6 = "one capacity unit is 1 Mb/s").
    pub unit_bps: f64,
    /// Simulator RNG seed (arrivals + forwarding choices).
    pub seed: u64,
}

impl SimSpec {
    /// Materializes the simulator configuration. The scheduler is *not*
    /// part of the spec: heap and calendar produce bit-identical reports,
    /// so the choice belongs to execution options
    /// ([`BatchOptions::sim_scheduler`](crate::harness::BatchOptions)),
    /// not to scenario identity.
    pub fn config(&self) -> SimConfig {
        SimConfig {
            duration: self.duration,
            warmup: self.warmup,
            capacity_to_bps: self.unit_bps,
            demand_to_bps: self.unit_bps,
            seed: self.seed,
            ..SimConfig::default()
        }
    }

    /// A short stable identifier used in scenario ids.
    pub fn id(&self) -> String {
        format!(
            "sim-d{}w{}u{}s{}",
            self.duration, self.warmup, self.unit_bps, self.seed
        )
    }
}

/// Single-circuit failure stage riding on a scenario: after the SPEF
/// pipeline solves the intact topology, the duplex circuit with index
/// `circuit` (in [`Network::duplex_circuits`] order) is failed and the
/// scenario reports the OSPF / stale-SPEF / re-optimised-SPEF MLU triple,
/// the robust-weight worst case, and the weight-reconfiguration transient
/// — the §VI failure study as a sweepable, regression-gated family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Index of the failed duplex circuit in
    /// [`Network::duplex_circuits`] order.
    pub circuit: u64,
    /// Candidate budget of the robust weight search
    /// ([`spef_baselines::RobustConfig::max_evaluations`]).
    pub robust_evals: u64,
    /// Scan-order seed of the robust weight search.
    pub robust_seed: u64,
}

impl FailureSpec {
    /// A short stable identifier used in scenario ids.
    pub fn id(&self) -> String {
        format!(
            "fail-c{}e{}s{}",
            self.circuit, self.robust_evals, self.robust_seed
        )
    }
}

/// One fully pinned-down run of the SPEF pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Stable human-readable id (topology + traffic + objective + solver,
    /// plus the sim stage when present).
    pub id: String,
    /// Network to route on.
    pub topology: TopologySpec,
    /// Demand recipe (model, seed, load scale).
    pub traffic: TrafficSpec,
    /// The (q, β) objective.
    pub objective: ObjectiveSpec,
    /// Solver pipeline.
    pub solver: SolverSpec,
    /// Optional packet-level simulation stage over the solved FIB.
    pub sim: Option<SimSpec>,
    /// Optional single-circuit failure stage after the intact solve.
    pub failure: Option<FailureSpec>,
    /// Scale-ablation stage: when set, the harness records deterministic
    /// size metrics (node/link/destination counts, FIB entries) and the
    /// peak routing-arena bytes after the solve.
    pub scale: bool,
}

impl Scenario {
    /// Creates a scenario with its canonical id (no simulation stage).
    pub fn new(
        topology: TopologySpec,
        traffic: TrafficSpec,
        objective: ObjectiveSpec,
        solver: SolverSpec,
    ) -> Scenario {
        let id = format!(
            "{}+{}+q{}b{}+{}",
            topology.id(),
            traffic.id(),
            objective.q,
            objective.beta,
            solver.id()
        );
        Scenario {
            id,
            topology,
            traffic,
            objective,
            solver,
            sim: None,
            failure: None,
            scale: false,
        }
    }

    /// Attaches a packet-level simulation stage, extending the id (ids
    /// stay the unique join key of batch reports).
    pub fn with_sim(mut self, sim: SimSpec) -> Scenario {
        self.id = format!("{}+{}", self.id, sim.id());
        self.sim = Some(sim);
        self
    }

    /// Attaches a single-circuit failure stage, extending the id (ids
    /// stay the unique join key of batch reports).
    pub fn with_failure(mut self, failure: FailureSpec) -> Scenario {
        self.id = format!("{}+{}", self.id, failure.id());
        self.failure = Some(failure);
        self
    }

    /// Attaches the scale-ablation stage, extending the id (ids stay the
    /// unique join key of batch reports).
    pub fn with_scale(mut self) -> Scenario {
        self.id = format!("{}+scale", self.id);
        self.scale = true;
        self
    }

    /// The warm-start chain key: everything that pins the scenario's
    /// *solver workspace compatibility* — topology, demand model and seed,
    /// objective, solver — but **not** the load scale or the sim stage.
    /// Scenarios sharing a chain key differ only by a uniform demand
    /// rescale (and possibly a sim duration), exactly the neighbouring
    /// grid points a [`spef_core::TeWorkspace`] can serve.
    pub fn chain_key(&self) -> String {
        format!(
            "{}+{:?}-s{}+q{}b{}+{}",
            self.topology.id(),
            self.traffic.model,
            self.traffic.seed,
            self.objective.q,
            self.objective.beta,
            self.solver.id()
        )
    }

    /// The solve key: the chain key plus the load — two scenarios with
    /// equal solve keys run the *identical* SPEF pipeline instance (they
    /// can differ only in the attached sim or failure stage), so one
    /// intact solve serves both.
    pub fn solve_key(&self) -> String {
        format!("{}+l{}", self.chain_key(), self.traffic.load)
    }
}

// Hand-written (like `TopologySpec`) because the optional `sim`, `failure`
// and `scale` fields must be *omitted* when absent: pre-PR 4 baseline
// reports have no `sim` key, pre-PR 7 reports have no `failure` key,
// pre-PR 8 reports have no `scale` key, and all must keep parsing;
// stage-less scenarios must serialize byte-identically to the committed
// earlier baselines.
impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), self.id.to_value()),
            ("topology".to_string(), self.topology.to_value()),
            ("traffic".to_string(), self.traffic.to_value()),
            ("objective".to_string(), self.objective.to_value()),
            ("solver".to_string(), self.solver.to_value()),
        ];
        if let Some(sim) = &self.sim {
            fields.push(("sim".to_string(), sim.to_value()));
        }
        if let Some(failure) = &self.failure {
            fields.push(("failure".to_string(), failure.to_value()));
        }
        if self.scale {
            fields.push(("scale".to_string(), true.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for Scenario {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let field = |key: &str| -> Result<&Value, SerdeError> {
            value
                .get_field(key)
                .ok_or_else(|| SerdeError::custom(format!("missing field `{key}` in Scenario")))
        };
        Ok(Scenario {
            id: String::from_value(field("id")?)?,
            topology: TopologySpec::from_value(field("topology")?)?,
            traffic: TrafficSpec::from_value(field("traffic")?)?,
            objective: ObjectiveSpec::from_value(field("objective")?)?,
            solver: SolverSpec::from_value(field("solver")?)?,
            sim: match value.get_field("sim") {
                None => None,
                Some(v) => Option::<SimSpec>::from_value(v)?,
            },
            failure: match value.get_field("failure") {
                None => None,
                Some(v) => Option::<FailureSpec>::from_value(v)?,
            },
            scale: match value.get_field("scale") {
                None => false,
                Some(v) => bool::from_value(v)?,
            },
        })
    }
}

/// Cartesian-product builder for scenario batches:
/// topologies × traffic seeds × loads × βs × solvers.
///
/// Traffic seeds are mixed with the grid's `base_seed`, so two grids with
/// different base seeds explore disjoint demand draws while each grid stays
/// fully deterministic.
///
/// # Example
///
/// ```
/// use spef_experiments::{ScenarioGrid, TopologySpec};
///
/// let scenarios = ScenarioGrid::new()
///     .topologies([TopologySpec::Fig1, TopologySpec::Abilene])
///     .seeds([1, 2])
///     .loads([0.15])
///     .betas([1.0])
///     .build();
/// assert_eq!(scenarios.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    topologies: Vec<TopologySpec>,
    traffic_model: TrafficModel,
    seeds: Vec<u64>,
    loads: Vec<f64>,
    q: f64,
    betas: Vec<f64>,
    solvers: Vec<SolverSpec>,
    base_seed: u64,
    /// Simulated durations (seconds) of the packet-level stage; empty
    /// means no simulation.
    sim_durations: Vec<f64>,
    sim_warmup_frac: f64,
    sim_unit_bps: f64,
    sim_seed: u64,
    /// Failed duplex-circuit indices of the failure stage; empty means no
    /// failure stage.
    failure_circuits: Vec<u64>,
    robust_evals: u64,
    robust_seed: u64,
    /// Whether every scenario carries the scale-ablation stage.
    scale: bool,
}

impl Default for ScenarioGrid {
    fn default() -> Self {
        ScenarioGrid {
            topologies: vec![
                TopologySpec::Fig1,
                TopologySpec::Fig4,
                TopologySpec::Abilene,
            ],
            traffic_model: TrafficModel::FortzThorup,
            seeds: vec![1, 2],
            // Loads every default topology can route with headroom (Abilene
            // under Fortz-Thorup demands already reaches MLU ~0.86 at 0.15).
            loads: vec![0.1, 0.15],
            q: 1.0,
            betas: vec![1.0],
            solvers: vec![SolverSpec::FrankWolfeFast],
            base_seed: 0,
            sim_durations: Vec::new(),
            sim_warmup_frac: 0.1,
            sim_unit_bps: 1e6,
            sim_seed: 0x5117,
            failure_circuits: Vec::new(),
            robust_evals: 150,
            robust_seed: 0x0b57,
            scale: false,
        }
    }
}

impl ScenarioGrid {
    /// Starts from the default smoke grid (fig1/fig4/abilene × 2 seeds ×
    /// loads {0.1, 0.15} × β = 1 × fast Frank–Wolfe, no simulation).
    pub fn new() -> Self {
        Self::default()
    }

    /// The `sim` scenario family: the Fig. 11 networks (Fig. 4, Abilene,
    /// CERNET2) × loads {0.04, 0.08} × simulated durations {5 s, 20 s}
    /// under fast Frank–Wolfe — the packet-level workload as a sweepable,
    /// regression-gated grid. Load 0.08 puts CERNET2 near MLU 1, so the
    /// family spans clean delivery through near-saturation (the diverse
    /// load regimes the TE-comparison literature insists on).
    pub fn sim_family() -> Self {
        ScenarioGrid::new()
            .topologies([
                TopologySpec::Fig4,
                TopologySpec::Abilene,
                TopologySpec::Cernet2,
            ])
            .seeds([1])
            .loads([0.04, 0.08])
            .betas([1.0])
            .solvers([SolverSpec::FrankWolfeFast])
            .sim_durations([5.0, 20.0])
    }

    /// The `te` scenario family: the PR 2 regression grid — every built-in
    /// topology (Fig. 1, Fig. 4, Abilene, CERNET2) × seeds {1, 2, 3} ×
    /// load 0.15 — under fast Frank–Wolfe plus (since PR 9) the
    /// Fortz–Thorup weight search, no simulation stage. The CERNET2
    /// scenarios are intentionally infeasible at this load; their failures
    /// (solver infeasibility for Frank–Wolfe, an overloaded best routing
    /// for Fortz–Thorup) are part of the committed baseline and pin the
    /// failure-reporting path. The `all` family keeps the PR 6
    /// Frank–Wolfe-only surface, so the PR 9 rows are gated by their own
    /// baseline pair.
    pub fn te_family() -> Self {
        ScenarioGrid::new()
            .topologies([
                TopologySpec::Fig1,
                TopologySpec::Fig4,
                TopologySpec::Abilene,
                TopologySpec::Cernet2,
            ])
            .seeds([1, 2, 3])
            .loads([0.15])
            .betas([1.0])
            .solvers([SolverSpec::FrankWolfeFast, SolverSpec::FortzThorup])
    }

    /// The `failure` scenario family: Abilene (the one built-in backbone
    /// whose links are all duplex and bridge-free) × loads {0.04, 0.08} ×
    /// four failed circuits spread across the ring, under fast
    /// Frank–Wolfe. Each scenario reports the OSPF / SPEF-stale /
    /// SPEF-reopt MLU triple after the failure, the robust-weight worst
    /// case, and the weight-reconfiguration transient. Loads sit well
    /// inside every single-circuit feasibility boundary, so the family is
    /// failure-free and fully deterministic — the PR 7 regression grid.
    pub fn failure_family() -> Self {
        ScenarioGrid::new()
            .topologies([TopologySpec::Abilene])
            .seeds([1])
            .loads([0.04, 0.08])
            .betas([1.0])
            .solvers([SolverSpec::FrankWolfeFast])
            .failure_circuits([0, 3, 7, 11])
    }

    /// The `scale` scenario family: the tiered 200/500/1000-node networks
    /// plus a 200-node random control, at a low load every rung routes
    /// with headroom, under pinned Frank–Wolfe (results are a pure
    /// function of the instance — independent of sweep order, workspace
    /// history, and the tile-size execution knob). Each scenario carries
    /// the scale-ablation stage, so the report pins node/link/destination
    /// counts and total FIB entries while peak arena bytes stay outside
    /// the diff — the PR 8 regression grid.
    pub fn scale_family() -> Self {
        ScenarioGrid::new()
            .topologies([
                TopologySpec::Hier200,
                TopologySpec::Hier500,
                TopologySpec::Hier1000,
                TopologySpec::Random {
                    nodes: 200,
                    links: 800,
                    seed: 0x5CA1E,
                },
            ])
            .seeds([1])
            .loads([0.04])
            .betas([1.0])
            .solvers([SolverSpec::FrankWolfePinned])
            .scale_stage(true)
    }

    /// Sets the topologies to sweep.
    pub fn topologies(mut self, topologies: impl IntoIterator<Item = TopologySpec>) -> Self {
        self.topologies = topologies.into_iter().collect();
        self
    }

    /// Sets the demand model (applied to every scenario).
    pub fn traffic_model(mut self, model: TrafficModel) -> Self {
        self.traffic_model = model;
        self
    }

    /// Sets the traffic seeds to sweep.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the network loads to sweep.
    pub fn loads(mut self, loads: impl IntoIterator<Item = f64>) -> Self {
        self.loads = loads.into_iter().collect();
        self
    }

    /// Sets the uniform objective weight q (applied to every scenario).
    pub fn q(mut self, q: f64) -> Self {
        self.q = q;
        self
    }

    /// Sets the β values to sweep.
    pub fn betas(mut self, betas: impl IntoIterator<Item = f64>) -> Self {
        self.betas = betas.into_iter().collect();
        self
    }

    /// Sets the solvers to sweep.
    pub fn solvers(mut self, solvers: impl IntoIterator<Item = SolverSpec>) -> Self {
        self.solvers = solvers.into_iter().collect();
        self
    }

    /// Sets the base seed mixed into every scenario's traffic seed.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Attaches a packet-level simulation stage to every scenario, one per
    /// duration (an extra grid dimension). An empty list removes the
    /// stage.
    pub fn sim_durations(mut self, durations: impl IntoIterator<Item = f64>) -> Self {
        self.sim_durations = durations.into_iter().collect();
        self
    }

    /// Sets the warmup fraction of each simulated duration (default 0.1).
    pub fn sim_warmup_frac(mut self, frac: f64) -> Self {
        self.sim_warmup_frac = frac;
        self
    }

    /// Sets the unit→bits/s conversion of the sim stage (default 1e6).
    pub fn sim_unit_bps(mut self, unit_bps: f64) -> Self {
        self.sim_unit_bps = unit_bps;
        self
    }

    /// Sets the simulator RNG seed (default 0x5117, the fig11 seed).
    pub fn sim_seed(mut self, seed: u64) -> Self {
        self.sim_seed = seed;
        self
    }

    /// Attaches a single-circuit failure stage to every scenario, one per
    /// circuit index (an extra grid dimension). An empty list removes the
    /// stage.
    pub fn failure_circuits(mut self, circuits: impl IntoIterator<Item = u64>) -> Self {
        self.failure_circuits = circuits.into_iter().collect();
        self
    }

    /// Sets the robust weight search's candidate budget (default 150).
    pub fn robust_evals(mut self, evals: u64) -> Self {
        self.robust_evals = evals;
        self
    }

    /// Sets the robust weight search's scan-order seed (default 0x0b57).
    pub fn robust_seed(mut self, seed: u64) -> Self {
        self.robust_seed = seed;
        self
    }

    /// Attaches (or removes) the scale-ablation stage on every scenario.
    pub fn scale_stage(mut self, scale: bool) -> Self {
        self.scale = scale;
        self
    }

    /// Derives the per-scenario traffic seed from the base seed and the
    /// grid seed (SplitMix64 finalizer, so nearby seeds decorrelate).
    fn scenario_seed(&self, seed: u64) -> u64 {
        if self.base_seed == 0 {
            return seed; // Grids without a base seed use their seeds as-is.
        }
        let mut z = self
            .base_seed
            .wrapping_add(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Expands the grid into the full cartesian product, in deterministic
    /// order (topology-major, failure-circuit-minor).
    pub fn build(&self) -> Vec<Scenario> {
        let mut scenarios = Vec::new();
        let mut push = |base: Scenario| {
            let base = if self.scale { base.with_scale() } else { base };
            if self.failure_circuits.is_empty() {
                scenarios.push(base);
            } else {
                for &circuit in &self.failure_circuits {
                    scenarios.push(base.clone().with_failure(FailureSpec {
                        circuit,
                        robust_evals: self.robust_evals,
                        robust_seed: self.robust_seed,
                    }));
                }
            }
        };
        for topology in &self.topologies {
            for &seed in &self.seeds {
                for &load in &self.loads {
                    for &beta in &self.betas {
                        for &solver in &self.solvers {
                            let base = Scenario::new(
                                topology.clone(),
                                TrafficSpec {
                                    model: self.traffic_model,
                                    seed: self.scenario_seed(seed),
                                    load,
                                },
                                ObjectiveSpec { q: self.q, beta },
                                solver,
                            );
                            if self.sim_durations.is_empty() {
                                push(base);
                            } else {
                                for &duration in &self.sim_durations {
                                    push(base.clone().with_sim(SimSpec {
                                        duration,
                                        warmup: duration * self.sim_warmup_frac,
                                        unit_bps: self.sim_unit_bps,
                                        seed: self.sim_seed,
                                    }));
                                }
                            }
                        }
                    }
                }
            }
        }
        scenarios
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_a_cartesian_product_in_stable_order() {
        let grid = ScenarioGrid::new()
            .topologies([TopologySpec::Fig1, TopologySpec::Fig4])
            .seeds([1, 2, 3])
            .loads([0.1])
            .betas([0.0, 1.0])
            .solvers([SolverSpec::FrankWolfeFast]);
        let scenarios = grid.build();
        assert_eq!(scenarios.len(), 12); // 2 topologies x 3 seeds x 1 load x 2 betas
        assert_eq!(scenarios, grid.build(), "expansion is deterministic");
        assert!(scenarios[0].id.starts_with("fig1+ft-s1"));
    }

    #[test]
    fn scenario_ids_are_unique() {
        let scenarios = ScenarioGrid::new().build();
        let mut ids: Vec<&str> = scenarios.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), scenarios.len());
    }

    #[test]
    fn base_seed_decorrelates_but_stays_deterministic() {
        let a = ScenarioGrid::new().base_seed(7).build();
        let b = ScenarioGrid::new().base_seed(7).build();
        let c = ScenarioGrid::new().base_seed(8).build();
        assert_eq!(a, b);
        assert_ne!(a[0].traffic.seed, c[0].traffic.seed);
    }

    #[test]
    fn topology_spec_roundtrips_through_serde() {
        for spec in [
            TopologySpec::Abilene,
            TopologySpec::Random {
                nodes: 30,
                links: 120,
                seed: 9,
            },
            TopologySpec::Hierarchical {
                domains: 5,
                per_domain: 10,
                links: 222,
                seed: 0xA11CE,
            },
        ] {
            let v = spec.to_value();
            assert_eq!(TopologySpec::from_value(&v).unwrap(), spec);
        }
    }

    #[test]
    fn named_topologies_materialize() {
        assert_eq!(TopologySpec::Fig4.build().node_count(), 7);
        assert_eq!(TopologySpec::Abilene.build().link_count(), 28);
    }

    #[test]
    fn sim_durations_add_a_grid_dimension_with_unique_ids() {
        let grid = ScenarioGrid::new()
            .topologies([TopologySpec::Fig4])
            .seeds([1])
            .loads([0.1])
            .sim_durations([5.0, 20.0]);
        let scenarios = grid.build();
        assert_eq!(scenarios.len(), 2);
        assert!(scenarios.iter().all(|s| s.sim.is_some()));
        assert_ne!(scenarios[0].id, scenarios[1].id);
        assert!(scenarios[0].id.contains("+sim-d5"));
        let sim = scenarios[1].sim.as_ref().unwrap();
        assert_eq!(sim.duration, 20.0);
        assert!((sim.warmup - 2.0).abs() < 1e-12, "default 10% warmup");

        // Clearing the durations removes the stage again.
        let plain = grid.sim_durations([]).build();
        assert_eq!(plain.len(), 1);
        assert!(plain[0].sim.is_none());
    }

    #[test]
    fn sim_family_is_the_fig11_networks_under_diverse_loads() {
        let scenarios = ScenarioGrid::sim_family().build();
        // 3 topologies × 2 loads × 2 durations.
        assert_eq!(scenarios.len(), 12);
        assert!(scenarios.iter().all(|s| s.sim.is_some()));
        let mut ids: Vec<&str> = scenarios.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn scenario_with_sim_roundtrips_and_simless_json_stays_identical() {
        let base = Scenario::new(
            TopologySpec::Fig4,
            TrafficSpec {
                model: TrafficModel::FortzThorup,
                seed: 1,
                load: 0.1,
            },
            ObjectiveSpec { q: 1.0, beta: 1.0 },
            SolverSpec::FrankWolfeFast,
        );
        // Sim-less scenarios serialize without a `sim` key at all — the
        // committed pre-PR 4 baselines' byte format.
        let v = base.to_value();
        assert!(v.get_field("sim").is_none());
        assert_eq!(Scenario::from_value(&v).unwrap(), base);

        let simful = base.with_sim(SimSpec {
            duration: 5.0,
            warmup: 0.5,
            unit_bps: 1e6,
            seed: 0x5117,
        });
        let back = Scenario::from_value(&simful.to_value()).unwrap();
        assert_eq!(back, simful);
        assert!(back.id.ends_with("+sim-d5w0.5u1000000s20759"));
    }

    #[test]
    fn failure_circuits_add_a_grid_dimension_with_unique_ids() {
        let grid = ScenarioGrid::new()
            .topologies([TopologySpec::Abilene])
            .seeds([1])
            .loads([0.05])
            .failure_circuits([0, 3]);
        let scenarios = grid.build();
        assert_eq!(scenarios.len(), 2);
        assert!(scenarios.iter().all(|s| s.failure.is_some()));
        assert_ne!(scenarios[0].id, scenarios[1].id);
        assert!(scenarios[0].id.ends_with("+fail-c0e150s2903"));
        // The failed circuit is not part of the solve key: every circuit
        // at one load shares the intact pipeline solve.
        assert_eq!(scenarios[0].solve_key(), scenarios[1].solve_key());

        // Clearing the circuits removes the stage again.
        let plain = grid.failure_circuits([]).build();
        assert_eq!(plain.len(), 1);
        assert!(plain[0].failure.is_none());
    }

    #[test]
    fn te_family_carries_frank_wolfe_and_ft_rows() {
        let scenarios = ScenarioGrid::te_family().build();
        // 4 topologies × 3 seeds × 1 load × 2 solvers.
        assert_eq!(scenarios.len(), 24);
        for pair in scenarios.chunks(2) {
            assert_eq!(pair[0].solver, SolverSpec::FrankWolfeFast);
            assert_eq!(pair[1].solver, SolverSpec::FortzThorup);
            assert!(pair[1].id.ends_with("+ft"));
        }
    }

    #[test]
    #[should_panic(expected = "FortzThorup has no SpefConfig")]
    fn ft_solver_spec_has_no_spef_config() {
        let _ = SolverSpec::FortzThorup.build();
    }

    #[test]
    fn failure_family_is_abilene_under_two_loads() {
        let scenarios = ScenarioGrid::failure_family().build();
        // 1 topology × 2 loads × 4 circuits.
        assert_eq!(scenarios.len(), 8);
        assert!(scenarios.iter().all(|s| s.failure.is_some()));
        let mut ids: Vec<&str> = scenarios.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
        // All circuits must exist on Abilene (14 duplex circuits).
        let circuits = TopologySpec::Abilene.build().duplex_circuits();
        assert!(scenarios
            .iter()
            .all(|s| (s.failure.as_ref().unwrap().circuit as usize) < circuits.len()));
    }

    #[test]
    fn scenario_with_failure_roundtrips_and_stageless_json_stays_identical() {
        let base = Scenario::new(
            TopologySpec::Abilene,
            TrafficSpec {
                model: TrafficModel::FortzThorup,
                seed: 1,
                load: 0.05,
            },
            ObjectiveSpec { q: 1.0, beta: 1.0 },
            SolverSpec::FrankWolfeFast,
        );
        // Failure-less scenarios serialize without a `failure` key at all —
        // the committed pre-PR 7 baselines' byte format.
        let v = base.to_value();
        assert!(v.get_field("failure").is_none());
        assert_eq!(Scenario::from_value(&v).unwrap(), base);

        let failing = base.with_failure(FailureSpec {
            circuit: 7,
            robust_evals: 150,
            robust_seed: 0x0b57,
        });
        let back = Scenario::from_value(&failing.to_value()).unwrap();
        assert_eq!(back, failing);
        assert!(back.id.ends_with("+fail-c7e150s2903"));
    }

    #[test]
    fn scale_family_is_the_tiered_ladder() {
        let scenarios = ScenarioGrid::scale_family().build();
        assert_eq!(scenarios.len(), 4);
        assert!(scenarios.iter().all(|s| s.scale));
        assert!(scenarios.iter().all(|s| s.id.ends_with("+scale")));
        assert!(scenarios[0].id.starts_with("hier200+"));
        assert!(scenarios
            .iter()
            .all(|s| s.solver == SolverSpec::FrankWolfePinned));
        // The thousand-node rung really is a thousand nodes.
        assert_eq!(TopologySpec::Hier1000.build().node_count(), 1000);
    }

    #[test]
    fn scenario_with_scale_roundtrips_and_stageless_json_stays_identical() {
        let base = Scenario::new(
            TopologySpec::Hier200,
            TrafficSpec {
                model: TrafficModel::FortzThorup,
                seed: 1,
                load: 0.04,
            },
            ObjectiveSpec { q: 1.0, beta: 1.0 },
            SolverSpec::FrankWolfePinned,
        );
        // Scale-less scenarios serialize without a `scale` key at all —
        // the committed pre-PR 8 baselines' byte format.
        let v = base.to_value();
        assert!(v.get_field("scale").is_none());
        assert_eq!(Scenario::from_value(&v).unwrap(), base);

        let scaled = base.with_scale();
        let back = Scenario::from_value(&scaled.to_value()).unwrap();
        assert_eq!(back, scaled);
        assert!(back.id.ends_with("+fw-pinned+scale"));
    }

    #[test]
    fn sim_spec_config_maps_units_and_seed() {
        let spec = SimSpec {
            duration: 7.0,
            warmup: 0.7,
            unit_bps: 1e9,
            seed: 42,
        };
        let cfg = spec.config();
        assert_eq!(cfg.duration, 7.0);
        assert_eq!(cfg.warmup, 0.7);
        assert_eq!(cfg.capacity_to_bps, 1e9);
        assert_eq!(cfg.demand_to_bps, 1e9);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.scheduler, spef_netsim::SchedulerKind::Calendar);
    }
}
