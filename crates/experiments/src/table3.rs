//! TABLE III: properties of the evaluation networks.

use spef_topology::{gen, standard};

use crate::report::{CsvFile, ExperimentResult, TextTable};

/// Runs the TABLE III reproduction.
pub fn run() -> ExperimentResult {
    let mut nets = vec![
        ("Backbone", standard::abilene()),
        ("Backbone", standard::cernet2()),
    ];
    for net in gen::table3_synthetic_networks() {
        let kind = if net.name().starts_with("Hier") {
            "2-level"
        } else {
            "Random"
        };
        nets.push((kind, net));
    }

    let mut table = TextTable::new(
        "TABLE III — properties for different networks",
        &["Net. ID", "Topology", "Node #", "Link #"],
    );
    let mut rows = Vec::new();
    for (kind, net) in &nets {
        table.push_row(vec![
            net.name().to_string(),
            kind.to_string(),
            net.node_count().to_string(),
            net.link_count().to_string(),
        ]);
        rows.push(vec![net.node_count() as f64, net.link_count() as f64]);
    }

    ExperimentResult {
        id: "table3",
        tables: vec![table],
        csvs: vec![CsvFile::from_rows("table3.csv", &["nodes", "links"], &rows)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table() {
        let r = run();
        let rows = &r.tables[0].rows;
        let expected = [
            ("Abilene", "11", "28"),
            ("Cernet2", "20", "44"),
            ("Hier50a", "50", "222"),
            ("Hier50b", "50", "152"),
            ("Rand50a", "50", "242"),
            ("Rand50b", "50", "230"),
            ("Rand100", "100", "392"),
        ];
        assert_eq!(rows.len(), expected.len());
        for (row, (name, nodes, links)) in rows.iter().zip(expected) {
            assert_eq!(row[0], name);
            assert_eq!(row[2], nodes);
            assert_eq!(row[3], links);
        }
    }
}
