//! Extension experiment (§VII future work): computational cost of SPEF as
//! the network grows.
//!
//! The paper's conclusion names "analyz[ing] the computational complexity
//! in network environment with OSPF as well as other existing approaches
//! including PEFT" as future work. This ablation measures, over random
//! networks of increasing size:
//!
//! * wall time of the TE solve (Frank–Wolfe, fixed budget),
//! * per-iteration wall time of Algorithm 1 and Algorithm 2 (the
//!   distributed protocols' message rounds),
//! * the full `SpefRouting` build time,
//! * the control-plane state: total forwarding-table entries for SPEF vs
//!   plain-OSPF ECMP (the "one more weight" overhead made concrete).

use std::time::Instant;

use spef_baselines::ospf::OspfRouting;
use spef_core::{
    ConvergenceCriteria, DualDecompConfig, NemConfig, NemInstance, Objective, SpefError,
    TeInstance, TeSolver,
};
use spef_topology::{gen, TrafficMatrix};

use crate::report::{CsvFile, ExperimentResult, TextTable};
use crate::Quality;

/// Network sizes swept (nodes; links ≈ 4 × nodes).
pub fn sizes(quality: Quality) -> Vec<usize> {
    match quality {
        Quality::Full => vec![20, 40, 60, 80, 100],
        Quality::Quick => vec![20, 40],
    }
}

/// Runs the scaling ablation.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let mut table = TextTable::new(
        "Scaling ablation — computational cost vs network size (random networks, load 60% of feasible)",
        &[
            "nodes", "links", "TE solve (ms)", "Alg1 (ms/iter)", "Alg2 (ms/iter)",
            "SPEF build (ms)", "SPEF FIB entries", "OSPF FIB entries",
        ],
    );
    let mut rows = Vec::new();

    for &n in &sizes(quality) {
        let links = 4 * n;
        let net = gen::random_network("scale", n, links, 7 + n as u64);
        let shape = TrafficMatrix::fortz_thorup(&net, n as u64);
        let lmax = crate::scale::max_feasible_load(&net, &shape, 0.1)?;
        let tm = shape.scaled_to_network_load(&net, 0.6 * lmax);
        let obj = Objective::proportional(net.link_count());

        // Every measured solve is cold (fresh workspace): the ablation
        // prices the from-scratch cost of each stage.
        let t0 = Instant::now();
        let te = quality.fw().solve(TeInstance::new(&net, &tm, &obj))?;
        let te_ms = t0.elapsed().as_secs_f64() * 1e3;

        let alg1_iters = 50;
        let t0 = Instant::now();
        DualDecompConfig {
            convergence: ConvergenceCriteria::with_tolerance(alg1_iters, 0.0),
            record_trace: false,
            ..DualDecompConfig::default()
        }
        .solve(TeInstance::new(&net, &tm, &obj))?;
        let alg1_ms = t0.elapsed().as_secs_f64() * 1e3 / alg1_iters as f64;

        let max_w = te.weights.iter().cloned().fold(0.0, f64::max);
        let dags =
            spef_core::build_dags(net.graph(), &te.weights, &tm.destinations(), 1e-2 * max_w)?;
        let alg2_iters = 50;
        let t0 = Instant::now();
        NemConfig {
            convergence: ConvergenceCriteria::with_tolerance(alg2_iters, 0.0),
            ..NemConfig::default()
        }
        .solve(NemInstance::new(
            net.graph(),
            &dags,
            &tm,
            te.flows.aggregate(),
        ))?;
        let alg2_ms = t0.elapsed().as_secs_f64() * 1e3 / alg2_iters as f64;

        let t0 = Instant::now();
        let routing = quality
            .spef_config()
            .solve(TeInstance::new(&net, &tm, &obj))?;
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Control-plane state straight off the flat FIB arena — O(1), not
        // the old O(dests · nodes) re-lookup that rebuilt a NodeId and
        // re-resolved the destination for every (node, dest) pair.
        let spef_entries = routing.forwarding_table().entry_count();
        let ospf = OspfRouting::route(&net, &tm)
            .map_err(|e| SpefError::InvalidInput(format!("OSPF failed: {e}")))?;
        let ospf_entries = ospf.forwarding_table().entry_count();

        table.push_row(vec![
            n.to_string(),
            links.to_string(),
            format!("{te_ms:.1}"),
            format!("{alg1_ms:.2}"),
            format!("{alg2_ms:.2}"),
            format!("{build_ms:.1}"),
            spef_entries.to_string(),
            ospf_entries.to_string(),
        ]);
        rows.push(vec![
            n as f64,
            links as f64,
            te_ms,
            alg1_ms,
            alg2_ms,
            build_ms,
            spef_entries as f64,
            ospf_entries as f64,
        ]);
    }

    Ok(ExperimentResult {
        id: "scaling",
        tables: vec![table],
        csvs: vec![CsvFile::from_rows(
            "scaling.csv",
            &[
                "nodes",
                "links",
                "te_ms",
                "alg1_ms_per_iter",
                "alg2_ms_per_iter",
                "spef_build_ms",
                "spef_fib_entries",
                "ospf_fib_entries",
            ],
            &rows,
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rows_are_complete_and_sane() {
        let r = run(Quality::Quick).unwrap();
        let rows: Vec<Vec<f64>> = r.csvs[0]
            .content
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // Timings positive, FIB entries at least one per (node−1, dest).
            assert!(row[2] > 0.0);
            assert!(row[3] > 0.0);
            assert!(row[4] > 0.0);
            let nodes = row[0] as usize;
            // Every (node, destination) pair needs at least one entry, and
            // the FT demand model makes every node a destination.
            let floor = (nodes * (nodes - 1)) as f64;
            assert!(row[6] >= floor, "SPEF entries {} < {floor}", row[6]);
            assert!(row[7] >= floor, "OSPF entries {} < {floor}", row[7]);
        }
    }
}
