//! Extension experiment (§VII future work): computational cost of SPEF as
//! the network grows.
//!
//! The paper's conclusion names "analyz[ing] the computational complexity
//! in network environment with OSPF as well as other existing approaches
//! including PEFT" as future work. This ablation measures, over random
//! networks of increasing size plus one tiered (core/aggregation/edge)
//! network:
//!
//! * wall time of the TE solve (Frank–Wolfe, fixed budget),
//! * per-iteration wall time of Algorithm 1 and Algorithm 2 (the
//!   distributed protocols' message rounds),
//! * the full `SpefRouting` build time,
//! * the control-plane state: total forwarding-table entries for SPEF vs
//!   plain-OSPF ECMP (the "one more weight" overhead made concrete),
//! * the routing-arena high-water mark of the SPEF build, dense vs tiled
//!   ([`TeWorkspace::set_tile_size`]) — the memory the destination tiles
//!   buy back, with bit-identical results.

use std::time::Instant;

use spef_baselines::ospf::OspfRouting;
use spef_core::{
    ConvergenceCriteria, DualDecompConfig, NemConfig, NemInstance, Objective, SpefError,
    TeInstance, TeSolver, TeWorkspace,
};
use spef_topology::{gen, Network, TrafficMatrix};

use crate::report::{CsvFile, ExperimentResult, TextTable};
use crate::Quality;

/// Network sizes swept on the random lane (nodes; links ≈ 4 × nodes).
pub fn sizes(quality: Quality) -> Vec<usize> {
    match quality {
        Quality::Full => vec![20, 40, 60, 80, 100],
        Quality::Quick => vec![20, 40],
    }
}

/// Destination tile size for the tiled-arena column. Small enough that
/// every lane (smallest quick lane: 19 destinations) actually tiles.
const TILE: usize = 8;

/// The networks swept: the random ladder plus one tiered
/// (core/aggregation/edge) lane exercising the hierarchical generator.
fn lanes(quality: Quality) -> Vec<(bool, Network)> {
    let mut lanes: Vec<(bool, Network)> = sizes(quality)
        .iter()
        .map(|&n| (false, gen::random_network("scale", n, 4 * n, 7 + n as u64)))
        .collect();
    lanes.push((
        true,
        match quality {
            Quality::Full => gen::tiered_network("TierScale", 8, 4, 5, 0xA11),
            Quality::Quick => gen::tiered_network("TierScale", 4, 2, 2, 0xA11),
        },
    ));
    lanes
}

/// Runs the scaling ablation.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let mut table = TextTable::new(
        "Scaling ablation — computational cost vs network size (load 60% of feasible)",
        &[
            "topology",
            "nodes",
            "links",
            "TE solve (ms)",
            "Alg1 (ms/iter)",
            "Alg2 (ms/iter)",
            "SPEF build (ms)",
            "SPEF FIB entries",
            "OSPF FIB entries",
            "peak arena (KiB)",
            "tile-8 peak (KiB)",
        ],
    );
    let mut rows = Vec::new();

    for (tiered, net) in lanes(quality) {
        let n = net.node_count();
        let links = net.link_count();
        // The instance is built once per size and reused by every measured
        // stage below (the old code re-derived nothing, but each stage
        // solved in its own throwaway workspace — now the FW-based stages
        // share one, so later stages run on warm arenas).
        let shape = TrafficMatrix::fortz_thorup(&net, n as u64);
        let lmax = crate::scale::max_feasible_load(&net, &shape, 0.1)?;
        let tm = shape.scaled_to_network_load(&net, 0.6 * lmax);
        let obj = Objective::proportional(net.link_count());

        // One workspace shared by the TE, Algorithm 2, and SPEF-build
        // stages. `clear_solutions` before each measured stage keeps every
        // solve a cold (bit-identical) iteration sequence on warm arenas.
        let mut ws = TeWorkspace::new();

        ws.clear_solutions();
        let t0 = Instant::now();
        let te = quality
            .fw()
            .solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)?;
        let te_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Algorithm 1 gets its own workspace so the dual-decomposition
        // session arenas don't inflate the dense-vs-tiled peak comparison
        // below (both peaks must cover the same FW + NEM + engine arenas).
        let mut dd_ws = TeWorkspace::new();
        let alg1_iters = 50;
        let t0 = Instant::now();
        DualDecompConfig {
            convergence: ConvergenceCriteria::with_tolerance(alg1_iters, 0.0),
            record_trace: false,
            ..DualDecompConfig::default()
        }
        .solve_in(TeInstance::new(&net, &tm, &obj), &mut dd_ws)?;
        let alg1_ms = t0.elapsed().as_secs_f64() * 1e3 / alg1_iters as f64;

        let max_w = te.weights.iter().cloned().fold(0.0, f64::max);
        let dags =
            spef_core::build_dags(net.graph(), &te.weights, &tm.destinations(), 1e-2 * max_w)?;
        let alg2_iters = 50;
        let t0 = Instant::now();
        NemConfig {
            convergence: ConvergenceCriteria::with_tolerance(alg2_iters, 0.0),
            ..NemConfig::default()
        }
        .solve_in(
            NemInstance::new(net.graph(), &dags, &tm, te.flows.aggregate()),
            &mut ws,
        )?;
        let alg2_ms = t0.elapsed().as_secs_f64() * 1e3 / alg2_iters as f64;

        ws.clear_solutions();
        let t0 = Instant::now();
        let routing = quality
            .spef_config()
            .solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)?;
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let peak_dense = ws.arena_bytes() + routing.forwarding_table().arena_bytes();

        // Same build, destination-tiled arenas: results are bit-identical
        // (asserted), only the high-water mark moves.
        let mut tiled_ws = TeWorkspace::new();
        tiled_ws.set_tile_size(Some(TILE));
        let tiled = quality
            .spef_config()
            .solve_in(TeInstance::new(&net, &tm, &obj), &mut tiled_ws)?;
        let peak_tiled = tiled_ws.arena_bytes() + tiled.forwarding_table().arena_bytes();
        assert_eq!(
            routing.max_link_utilization(&net).to_bits(),
            tiled.max_link_utilization(&net).to_bits(),
            "tiled SPEF build drifted from the dense build"
        );

        // Control-plane state straight off the flat FIB arena — O(1), not
        // the old O(dests · nodes) re-lookup that rebuilt a NodeId and
        // re-resolved the destination for every (node, dest) pair.
        let spef_entries = routing.forwarding_table().entry_count();
        let ospf = OspfRouting::route(&net, &tm)
            .map_err(|e| SpefError::InvalidInput(format!("OSPF failed: {e}")))?;
        let ospf_entries = ospf.forwarding_table().entry_count();

        table.push_row(vec![
            if tiered { "tiered" } else { "random" }.to_string(),
            n.to_string(),
            links.to_string(),
            format!("{te_ms:.1}"),
            format!("{alg1_ms:.2}"),
            format!("{alg2_ms:.2}"),
            format!("{build_ms:.1}"),
            spef_entries.to_string(),
            ospf_entries.to_string(),
            format!("{:.0}", peak_dense as f64 / 1024.0),
            format!("{:.0}", peak_tiled as f64 / 1024.0),
        ]);
        rows.push(vec![
            n as f64,
            links as f64,
            te_ms,
            alg1_ms,
            alg2_ms,
            build_ms,
            spef_entries as f64,
            ospf_entries as f64,
            peak_dense as f64,
            peak_tiled as f64,
            if tiered { 1.0 } else { 0.0 },
        ]);
    }

    Ok(ExperimentResult {
        id: "scaling",
        tables: vec![table],
        csvs: vec![CsvFile::from_rows(
            "scaling.csv",
            &[
                "nodes",
                "links",
                "te_ms",
                "alg1_ms_per_iter",
                "alg2_ms_per_iter",
                "spef_build_ms",
                "spef_fib_entries",
                "ospf_fib_entries",
                "peak_arena_bytes",
                "peak_arena_tile8_bytes",
                "tiered",
            ],
            &rows,
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rows_are_complete_and_sane() {
        let r = run(Quality::Quick).unwrap();
        let rows: Vec<Vec<f64>> = r.csvs[0]
            .content
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        // Two random sizes plus the tiered lane.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][10], 0.0);
        assert_eq!(rows[1][10], 0.0);
        assert_eq!(rows[2][10], 1.0);
        for row in &rows {
            // Timings positive, FIB entries at least one per (node−1, dest).
            assert!(row[2] > 0.0);
            assert!(row[3] > 0.0);
            assert!(row[4] > 0.0);
            let nodes = row[0] as usize;
            // Every (node, destination) pair needs at least one entry, and
            // the FT demand model makes every node a destination.
            let floor = (nodes * (nodes - 1)) as f64;
            assert!(row[6] >= floor, "SPEF entries {} < {floor}", row[6]);
            assert!(row[7] >= floor, "OSPF entries {} < {floor}", row[7]);
            // Every lane has more destinations than the tile, so the tiled
            // build's arena high-water mark must come in under dense.
            assert!(row[8] > 0.0 && row[9] > 0.0);
            assert!(
                row[9] < row[8],
                "tile-{TILE} peak {} not below dense peak {}",
                row[9],
                row[8]
            );
        }
    }
}
