//! TABLE I: weights and link utilizations on the Fig. 1 network for five
//! TE objectives — β = 0, β = 1, Fortz–Thorup, min-max (β → ∞), and
//! min-MLU.

use spef_baselines::fortz_thorup::{FtConfig, FtOutcome};
use spef_baselines::mlu_lp::MluSolution;
use spef_core::{Objective, SpefError, TeInstance, TeSolver, TeWorkspace};
use spef_graph::EdgeId;
use spef_topology::standard;

use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::Quality;

/// The β used to approximate min-max load balance ("as β grows large, it
/// converges to that of min-max load balance", §II.B).
pub const MIN_MAX_BETA: f64 = 25.0;

/// Runs the TABLE I reproduction.
///
/// # Errors
///
/// Propagates solver failures (none occur on the shipped Fig. 1 instance).
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let net = standard::fig1();
    let tm = standard::fig1_demands();
    let fw = quality.fw();
    let link_names = ["(1,3)", "(3,4)", "(1,2)", "(2,3)"];

    // β = 0 (LP duals) and β = 1, min-max via large β — one workspace,
    // cold trajectories (the objective differs between the solves).
    let mut ws = TeWorkspace::new();
    let beta0 = fw.solve_in(
        TeInstance::new(&net, &tm, &Objective::min_hop(net.link_count())),
        &mut ws,
    )?;
    let beta1 = fw.solve_in(
        TeInstance::new(&net, &tm, &Objective::proportional(net.link_count())),
        &mut ws,
    )?;
    let minmax = fw.solve_in(
        TeInstance::new(
            &net,
            &tm,
            &Objective::uniform(MIN_MAX_BETA, net.link_count()),
        ),
        &mut ws,
    )?;

    // Fortz–Thorup local search.
    let ft_cfg = FtConfig {
        max_weight: 12,
        max_evaluations: match quality {
            Quality::Full => 4000,
            Quality::Quick => 600,
        },
        restarts: 2,
        seed: 11,
        ..FtConfig::default()
    };
    let ft = FtOutcome::local_search(&net, &tm, &ft_cfg)
        .map_err(|e| SpefError::InvalidInput(format!("FT search failed: {e}")))?;

    // Min-MLU LP.
    let mlu = MluSolution::solve(&net, &tm)?;

    let mut table = TextTable::new(
        "TABLE I — weight and link utilization for different objective functions (Fig. 1 network)",
        &[
            "link", "b0 w", "b0 u", "b1 w", "b1 u", "FT w", "FT u", "minmax w", "minmax u",
            "MLU w", "MLU u",
        ],
    );
    let mut csv_rows = Vec::new();
    for e in 0..standard::FIG1_REPORTED_LINKS {
        let id = EdgeId::new(e);
        let cap = net.capacity(id);
        let u = |flows: &[f64]| flows[e] / cap;
        let row = [
            beta0.weights[e],
            u(beta0.flows.aggregate()),
            beta1.weights[e],
            u(beta1.flows.aggregate()),
            ft.weights[e],
            u(ft.routing.flows().aggregate()),
            minmax.weights[e],
            u(minmax.flows.aggregate()),
            mlu.link_prices[e],
            u(mlu.flows.aggregate()),
        ];
        table.push_row(
            std::iter::once(link_names[e].to_string())
                .chain(row.iter().map(|&v| fmt_val(v)))
                .collect(),
        );
        csv_rows.push(std::iter::once(e as f64).chain(row).collect());
    }

    Ok(ExperimentResult {
        id: "table1",
        tables: vec![table],
        csvs: vec![CsvFile::from_rows(
            "table1.csv",
            &[
                "edge", "b0_w", "b0_u", "b1_w", "b1_u", "ft_w", "ft_u", "minmax_w", "minmax_u",
                "mlu_w", "mlu_u",
            ],
            &csv_rows,
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(result: &ExperimentResult, row: usize, col: usize) -> f64 {
        result.tables[0].rows[row][col].parse().unwrap()
    }

    #[test]
    fn matches_paper_columns() {
        let r = run(Quality::Quick).unwrap();
        // β=1 column (paper: weights 3, 10, 1.5, 1.5; utils .67 .90 .33 .33).
        assert!((cell(&r, 0, 3) - 3.0).abs() < 0.1, "w(1,3) beta1");
        assert!((cell(&r, 1, 3) - 10.0).abs() < 0.1, "w(3,4) beta1");
        assert!((cell(&r, 0, 4) - 0.667).abs() < 0.01, "u(1,3) beta1");
        assert!((cell(&r, 2, 4) - 0.333).abs() < 0.01, "u(1,2) beta1");
        // min-max column utilizations: 0.5, 0.9, 0.5, 0.5.
        assert!((cell(&r, 0, 8) - 0.5).abs() < 0.02, "u(1,3) minmax");
        assert!((cell(&r, 1, 8) - 0.9).abs() < 0.01, "u(3,4) minmax");
        // MLU column: bottleneck (3,4) at 0.9, direct link util in
        // [0.1, 0.9] (the paper's free constant a).
        assert!((cell(&r, 1, 10) - 0.9).abs() < 1e-6);
        let a = cell(&r, 0, 10);
        assert!((0.1..=0.9).contains(&a), "a = {a}");
        // β=0: direct link saturated, no detour flow.
        assert!((cell(&r, 0, 2) - 1.0).abs() < 1e-6);
        assert!(cell(&r, 2, 2).abs() < 1e-6);
    }

    #[test]
    fn csv_emitted() {
        let r = run(Quality::Quick).unwrap();
        assert_eq!(r.csvs.len(), 1);
        assert!(r.csvs[0].content.lines().count() == 5);
    }
}
