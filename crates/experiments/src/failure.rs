//! Extension experiment: single-link-failure robustness of SPEF weights.
//!
//! Weight-based TE has a known operational exposure (the robust-OSPF line
//! of work the paper's §VI cites): weights are optimised for the intact
//! topology, but after a link failure OSPF reconverges on the surviving
//! topology with the *stale* weights. This experiment quantifies, on
//! Abilene, for every single duplex-circuit failure:
//!
//! * **OSPF** — InvCap weights, ECMP reconvergence on the survivors;
//! * **SPEF (stale)** — the intact-optimal first weights, DAGs recomputed
//!   on the survivors, traffic split evenly (the second weights' split
//!   ratios are no longer meaningful once the path set changed);
//! * **SPEF (reopt)** — full re-optimisation on the degraded topology, the
//!   post-convergence steady state.
//!
//! The interesting quantity is the MLU gap between stale and re-optimised
//! weights: how much of SPEF's advantage survives a failure *before* the
//! operator pushes new weights.

use spef_core::{
    build_dags, metrics, traffic_distribution, Objective, SpefError, SplitRule, TeInstance,
    TeSolver, TeWorkspace,
};
use spef_graph::EdgeId;
use spef_topology::{standard, TrafficMatrix};

use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::{scale, Quality};

/// Runs the failure-robustness ablation.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, crate::fig9::ABILENE_TM_SEED);
    let lmax = scale::max_feasible_load(&net, &shape, 0.05)?;
    // Leave failure headroom: half the intact feasibility boundary.
    let tm = shape.scaled_to_network_load(&net, 0.5 * lmax);
    let obj = Objective::proportional(net.link_count());
    let fw = quality.fw();
    // One workspace across the failure sweep: every degraded topology has
    // its own edge list, so each re-optimisation runs the cold trajectory
    // on warm arenas.
    let mut ws = TeWorkspace::new();
    let intact = fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)?;
    let invcap: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();

    let circuits: Vec<(EdgeId, EdgeId)> = (0..net.link_count() / 2)
        .map(|i| (EdgeId::new(2 * i), EdgeId::new(2 * i + 1)))
        .collect();
    let budget = match quality {
        Quality::Full => circuits.len(),
        Quality::Quick => 4,
    };

    let mut table = TextTable::new(
        format!(
            "Failure ablation — MLU after each single circuit failure, Abilene at load {:.3}",
            tm.network_load(&net)
        ),
        &["failed circuit", "OSPF", "SPEF stale", "SPEF reopt"],
    );
    let mut rows = Vec::new();

    for (i, &(e_fwd, e_rev)) in circuits.iter().take(budget).enumerate() {
        let Ok((degraded, kept)) = net.without_links(&[e_fwd, e_rev]) else {
            continue; // failing a bridge disconnects: skip (none on Abilene)
        };
        // Remap per-link vectors onto the surviving edge ids.
        let remap =
            |vals: &[f64]| -> Vec<f64> { kept.iter().map(|&old| vals[old.index()]).collect() };
        let dests = tm.destinations();

        // OSPF reconvergence.
        let w_ospf = remap(&invcap);
        let dags = build_dags(degraded.graph(), &w_ospf, &dests, 0.0)?;
        let ospf_flows = traffic_distribution(degraded.graph(), &dags, &tm, SplitRule::EvenEcmp)?;
        let mlu_ospf = metrics::max_link_utilization(&degraded, ospf_flows.aggregate());

        // SPEF with stale (intact-optimal) weights.
        let w_stale = remap(&intact.weights);
        let max_w = w_stale.iter().cloned().fold(0.0, f64::max);
        let dags = build_dags(degraded.graph(), &w_stale, &dests, 1e-2 * max_w)?;
        let stale_flows = traffic_distribution(degraded.graph(), &dags, &tm, SplitRule::EvenEcmp)?;
        let mlu_stale = metrics::max_link_utilization(&degraded, stale_flows.aggregate());

        // SPEF re-optimised on the degraded topology.
        let obj_d = Objective::proportional(degraded.link_count());
        let mlu_reopt = match fw.solve_in(TeInstance::new(&degraded, &tm, &obj_d), &mut ws) {
            Ok(sol) => metrics::max_link_utilization(&degraded, sol.flows.aggregate()),
            Err(SpefError::Infeasible) => f64::INFINITY,
            Err(e) => return Err(e),
        };

        let (u, v) = (net.graph().source(e_fwd), net.graph().target(e_fwd));
        table.push_row(vec![
            format!("{}-{}", net.node_name(u), net.node_name(v)),
            fmt_val(mlu_ospf),
            fmt_val(mlu_stale),
            fmt_val(mlu_reopt),
        ]);
        rows.push(vec![i as f64, mlu_ospf, mlu_stale, mlu_reopt]);
    }

    Ok(ExperimentResult {
        id: "failure",
        tables: vec![table],
        csvs: vec![CsvFile::from_rows(
            "failure.csv",
            &["circuit", "ospf", "spef_stale", "spef_reopt"],
            &rows,
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reopt_never_worse_than_stale_and_all_finite() {
        let r = run(Quality::Quick).unwrap();
        let rows: Vec<Vec<f64>> = r.csvs[0]
            .content
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        assert!(!rows.is_empty());
        for row in &rows {
            let (ospf, stale, reopt) = (row[1], row[2], row[3]);
            // Re-optimisation is the steady-state lower bound.
            assert!(reopt <= stale + 1e-6, "reopt {reopt} vs stale {stale}");
            assert!(reopt <= ospf + 1e-6, "reopt {reopt} vs ospf {ospf}");
            // At half the intact feasibility boundary every single failure
            // remains routable.
            assert!(reopt.is_finite());
            assert!(stale.is_finite());
        }
    }
}
