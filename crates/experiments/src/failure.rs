//! Extension experiment: single-link-failure robustness of SPEF weights.
//!
//! Weight-based TE has a known operational exposure (the robust-OSPF line
//! of work the paper's §VI cites): weights are optimised for the intact
//! topology, but after a link failure OSPF reconverges on the surviving
//! topology with the *stale* weights. This experiment quantifies, on
//! Abilene, for every single duplex-circuit failure:
//!
//! * **OSPF** — InvCap weights, ECMP reconvergence on the survivors;
//! * **SPEF (stale)** — the intact-optimal first weights, DAGs recomputed
//!   on the survivors, traffic split evenly (the second weights' split
//!   ratios are no longer meaningful once the path set changed);
//! * **SPEF (reopt)** — full re-optimisation on the degraded topology, the
//!   post-convergence steady state.
//!
//! The interesting quantity is the MLU gap between stale and re-optimised
//! weights: how much of SPEF's advantage survives a failure *before* the
//! operator pushes new weights.
//!
//! The sweepable, regression-gated variant of this study is the `failure`
//! scenario family (`repro sweep --family failure`); this experiment keeps
//! the full per-circuit table and additionally reports each
//! re-optimisation's iteration count — the workspace is shared across the
//! sweep, so after the intact solve every degraded solve restarts from the
//! projected intact solution (the remove-one-link warm start) instead of
//! running cold.

use spef_core::{
    metrics, Objective, SpefError, TeInstance, TeSolver, TeWorkspace, STALE_WEIGHT_DAG_RTOL,
};
use spef_topology::{standard, TrafficMatrix};

use crate::reconfig::MluProbe;
use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::{scale, Quality};

/// Runs the failure-robustness ablation.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let net = standard::abilene();
    let shape = TrafficMatrix::fortz_thorup(&net, crate::fig9::ABILENE_TM_SEED);
    let lmax = scale::max_feasible_load(&net, &shape, 0.05)?;
    // Leave failure headroom: half the intact feasibility boundary.
    let tm = shape.scaled_to_network_load(&net, 0.5 * lmax);
    let obj = Objective::proportional(net.link_count());
    let fw = quality.fw();
    // One workspace across the failure sweep: the intact solve below is
    // recorded as the session's base solution, and every degraded solve
    // warm-starts from its projection onto the surviving edge set.
    let mut ws = TeWorkspace::new();
    let intact = fw.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)?;
    let invcap: Vec<f64> = net.capacities().iter().map(|c| 1.0 / c).collect();

    let circuits = net.duplex_circuits();
    let budget = match quality {
        Quality::Full => circuits.len(),
        Quality::Quick => 4,
    };
    let dests = tm.destinations();

    let mut table = TextTable::new(
        format!(
            "Failure ablation — MLU after each single circuit failure, Abilene at load {:.3}",
            tm.network_load(&net)
        ),
        &[
            "failed circuit",
            "OSPF",
            "SPEF stale",
            "SPEF reopt",
            "reopt iters",
        ],
    );
    let mut rows = Vec::new();
    let mut skipped_bridges = 0usize;
    // Two persistent probes over the *intact* network, one per weight
    // setting: each circuit is failed in place with a mask round-trip, so
    // neither probe ever rebuilds its engine, and the constant weight
    // vectors let the SPF fingerprint survive between circuits. Results
    // are bit-identical to cold routing on the `without_links` topology
    // (pinned in `reconfig::tests::mlu_probe_matches_degraded_free_function`).
    let mut ospf_probe = MluProbe::new(false);
    let mut stale_probe = MluProbe::new(false);

    for (i, circuit) in circuits.iter().take(budget).enumerate() {
        let degraded = match net.without_links(circuit) {
            Ok((degraded, _kept)) => degraded,
            Err(_) => {
                // Failing a bridge circuit disconnects the network: no
                // post-failure routing exists. Counted and reported below,
                // never silently dropped (none on Abilene).
                skipped_bridges += 1;
                continue;
            }
        };

        // OSPF reconvergence.
        let mlu_ospf = ospf_probe.mlu(&net, &tm, &dests, &invcap, 0.0, circuit)?;

        // SPEF with stale (intact-optimal) weights. The continuous weights
        // solve nothing on the degraded topology, so equal-cost ties use
        // the shared coarse threshold (see `STALE_WEIGHT_DAG_RTOL`),
        // scaled by the largest *surviving* weight — the same maximum the
        // kept-remapped vector folds to.
        let max_w = intact
            .weights
            .iter()
            .zip(0usize..)
            .filter(|&(_, e)| !circuit.iter().any(|&c| c.index() == e))
            .map(|(&w, _)| w)
            .fold(0.0, f64::max);
        let mlu_stale = stale_probe.mlu(
            &net,
            &tm,
            &dests,
            &intact.weights,
            STALE_WEIGHT_DAG_RTOL * max_w,
            circuit,
        )?;

        // SPEF re-optimised on the degraded topology (removal warm start).
        let obj_d = Objective::proportional(degraded.link_count());
        let (mlu_reopt, iters) = match fw.solve_in(TeInstance::new(&degraded, &tm, &obj_d), &mut ws)
        {
            Ok(sol) => (
                metrics::max_link_utilization(&degraded, sol.flows.aggregate()),
                sol.iterations,
            ),
            Err(SpefError::Infeasible) => (f64::INFINITY, 0),
            Err(e) => return Err(e),
        };

        let e_fwd = circuit[0];
        let (u, v) = (net.graph().source(e_fwd), net.graph().target(e_fwd));
        table.push_row(vec![
            format!("{}-{}", net.node_name(u), net.node_name(v)),
            fmt_val(mlu_ospf),
            fmt_val(mlu_stale),
            fmt_val(mlu_reopt),
            iters.to_string(),
        ]);
        rows.push(vec![i as f64, mlu_ospf, mlu_stale, mlu_reopt, iters as f64]);
    }
    table.push_row(vec![
        "skipped (bridge circuits)".into(),
        skipped_bridges.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    Ok(ExperimentResult {
        id: "failure",
        tables: vec![table],
        csvs: vec![
            CsvFile::from_rows(
                "failure.csv",
                &["circuit", "ospf", "spef_stale", "spef_reopt", "reopt_iters"],
                &rows,
            ),
            CsvFile::from_rows(
                "failure_skipped.csv",
                &["skipped_bridge_circuits"],
                &[vec![skipped_bridges as f64]],
            ),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reopt_never_worse_than_stale_and_all_finite() {
        let r = run(Quality::Quick).unwrap();
        let rows: Vec<Vec<f64>> = r.csvs[0]
            .content
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        assert!(!rows.is_empty());
        for row in &rows {
            let (ospf, stale, reopt) = (row[1], row[2], row[3]);
            // Re-optimisation is the steady-state lower bound.
            assert!(reopt <= stale + 1e-6, "reopt {reopt} vs stale {stale}");
            assert!(reopt <= ospf + 1e-6, "reopt {reopt} vs ospf {ospf}");
            // At half the intact feasibility boundary every single failure
            // remains routable.
            assert!(reopt.is_finite());
            assert!(stale.is_finite());
            // The warm-started re-optimisation still iterates.
            assert!(row[4] > 0.0);
        }
        // Abilene has no bridge circuits; the count is reported as zero.
        assert_eq!(r.csvs[1].content.lines().nth(1), Some("0"));
    }
}
