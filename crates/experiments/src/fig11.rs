//! Fig. 11: packet-level simulation of SPEF vs PEFT (the SSFnet experiment
//! of §V.D) — mean link loads over 400 simulated seconds on (a) the Fig. 4
//! network at 5 Mb/s links and (b) the CERNET2 backbone with the TABLE IV
//! demands.
//!
//! Paper findings reproduced: SPEF engages more links than PEFT and its
//! per-link loads vary less (PEFT's exponential penalty concentrates
//! traffic near the shortest paths; SPEF spreads it over the engineered
//! equal-cost set).
//!
//! Weight substitution (see `DESIGN.md`/`EXPERIMENTS.md`): PEFT is driven
//! by the *integerised* optimal weights (§V.G scaling — the
//! OSPF-representable range PEFT targets), whose rounding collapses the
//! engineered equal-cost ties; its exponential penalty then concentrates
//! traffic near the unique shortest paths. SPEF runs with exact weights
//! and NEM splits. This reproduces the paper's contrast — "the penalizing
//! exponential flow-splitting mechanism prefers the shortest path while
//! penalizing the longer paths" vs SPEF's "multiple equal-cost shortest
//! paths ... constructed with a higher probability".

use spef_baselines::peft::PeftRouting;
use spef_core::{Objective, SpefError, TeInstance, TeSolver};
use spef_netsim::{simulate_with, SimConfig, SimWorkspace};
use spef_topology::{standard, Network, TrafficMatrix};

use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::Quality;

/// TABLE IV CERNET2 demands are scaled by this factor: our reconstructed
/// CERNET2 gives the Xiamen PoP (node 11) only 5 Gb/s of egress, while the
/// paper's TABLE IV sources 7 Gb/s there. Halving keeps the scenario
/// routable while preserving its structure (documented in
/// `EXPERIMENTS.md`).
pub const CERNET2_DEMAND_SCALE: f64 = 0.5;

/// Simulated seconds per panel (the paper's 400 s at `Quality::Full`).
pub fn sim_duration(quality: Quality) -> f64 {
    match quality {
        Quality::Full => 400.0,
        Quality::Quick => 10.0,
    }
}

struct PanelSpec {
    name: &'static str,
    net: Network,
    tm: TrafficMatrix,
    /// Converts capacity units to bits/s.
    capacity_to_bps: f64,
    /// Converts demand units to bits/s.
    demand_to_bps: f64,
    load_unit: &'static str,
}

fn panels() -> Vec<PanelSpec> {
    vec![
        PanelSpec {
            name: "simple",
            net: standard::fig4(),
            tm: standard::table4_simple_demands(),
            capacity_to_bps: 1e6,
            demand_to_bps: 1e6,
            load_unit: "kbps",
        },
        PanelSpec {
            name: "cernet2",
            net: standard::cernet2(),
            tm: standard::table4_cernet2_demands().scaled(CERNET2_DEMAND_SCALE),
            capacity_to_bps: 1e9,
            demand_to_bps: 1e9,
            load_unit: "Mbps",
        },
    ]
}

/// Runs the Fig. 11 reproduction.
///
/// # Errors
///
/// Propagates solver and simulator failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let mut tables = Vec::new();
    let mut csvs = Vec::new();

    // One simulator workspace across all four runs (2 panels × SPEF/PEFT):
    // after the first, event queue, arenas and histogram are recycled. The
    // forwarding tables handed to the simulator are flat CSR `FibSet`s —
    // the per-hop lookup inside is two index ops plus a cum-prob binary
    // search, with destination slots resolved once per run.
    let mut sim_ws = SimWorkspace::new();
    for spec in panels() {
        let obj = Objective::proportional(spec.net.link_count());
        let spef = quality
            .spef_config()
            .solve(TeInstance::new(&spec.net, &spec.tm, &obj))?;
        let te = spef.te_solution();
        let peft_weights = spef_core::weights::integerize(&te.weights, &te.spare)?;
        let peft = PeftRouting::route(&spec.net, &spec.tm, &peft_weights)?;

        let cfg = SimConfig {
            duration: sim_duration(quality),
            warmup: sim_duration(quality) * 0.05,
            capacity_to_bps: spec.capacity_to_bps,
            demand_to_bps: spec.demand_to_bps,
            seed: 0x5117,
            ..SimConfig::default()
        };
        let spef_report = simulate_with(
            &spec.net,
            &spec.tm,
            spef.forwarding_table(),
            &cfg,
            &mut sim_ws,
        )
        .map_err(|e| SpefError::InvalidInput(format!("SPEF sim failed: {e}")))?;
        let peft_report = simulate_with(
            &spec.net,
            &spec.tm,
            peft.forwarding_table(),
            &cfg,
            &mut sim_ws,
        )
        .map_err(|e| SpefError::InvalidInput(format!("PEFT sim failed: {e}")))?;

        // The display unit of Fig. 11: kbps for the simple network, Mbps
        // for CERNET2.
        let unit = match spec.load_unit {
            "kbps" => 1e3,
            _ => 1e6,
        };
        let mut table = TextTable::new(
            format!(
                "Fig. 11 — mean link load ({}) over {}s, {} network",
                spec.load_unit, cfg.duration, spec.name
            ),
            &["link", "PEFT", "SPEF"],
        );
        let mut rows = Vec::new();
        for e in 0..spec.net.link_count() {
            let p = peft_report.mean_link_load_bps[e] / unit;
            let s = spef_report.mean_link_load_bps[e] / unit;
            rows.push(vec![(e + 1) as f64, p, s]);
            if p > 0.0 || s > 0.0 {
                table.push_row(vec![format!("{}", e + 1), fmt_val(p), fmt_val(s)]);
            }
        }
        // "Links used" counts links above 1% of the busiest link, matching
        // how Fig. 11 visually distinguishes used from idle links.
        let used_count = |loads: &[f64]| {
            let max = loads.iter().cloned().fold(0.0, f64::max);
            loads.iter().filter(|&&l| l > 0.01 * max).count()
        };
        table.push_row(vec![
            "links used".into(),
            format!("{}", used_count(&peft_report.mean_link_load_bps)),
            format!("{}", used_count(&spef_report.mean_link_load_bps)),
        ]);
        tables.push(table);
        csvs.push(CsvFile::from_rows(
            format!("fig11_{}.csv", spec.name),
            &["link", "peft", "spef"],
            &rows,
        ));
    }

    Ok(ExperimentResult {
        id: "fig11",
        tables,
        csvs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spef_spreads_load_at_least_as_widely_as_peft() {
        let r = run(Quality::Quick).unwrap();
        for csv in &r.csvs {
            let rows: Vec<Vec<f64>> = csv
                .content
                .lines()
                .skip(1)
                .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
                .collect();
            // "Used" = above 1% of the busiest link (Fig. 11's visual
            // threshold).
            let used = |col: usize| {
                let max = rows.iter().map(|r| r[col]).fold(0.0, f64::max);
                rows.iter().filter(|r| r[col] > 0.01 * max).count()
            };
            // Both protocols engage most of the topology; the paper's
            // exact "SPEF uses more links" count depends on PEFT's
            // unpublished weight optimiser (see EXPERIMENTS.md), so the
            // robust claims asserted here are load *balance* and totals.
            let peft_used = used(1);
            let spef_used = used(2);
            assert!(peft_used > 0 && spef_used > 0);
            // Coefficient of variation over used links: SPEF's loads vary
            // no more than PEFT's (the paper's "more equally distributed"),
            // with stochastic slack.
            let cv = |col: usize| {
                let max = rows.iter().map(|r| r[col]).fold(0.0, f64::max);
                let vals: Vec<f64> = rows
                    .iter()
                    .map(|r| r[col])
                    .filter(|&v| v > 0.01 * max)
                    .collect();
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
                var.sqrt() / mean
            };
            assert!(
                cv(2) <= cv(1) * 1.15,
                "{}: SPEF cv {} vs PEFT cv {}",
                csv.name,
                cv(2),
                cv(1)
            );
            // On the simple network the contrast is stark: PEFT's
            // Downward variant saturates a 5 Mb/s link while SPEF's peak
            // stays clearly below capacity (Fig. 11(a)'s 1000–3000 kbps
            // spread vs SPEF's tighter band).
            if csv.name.contains("simple") {
                let peak = |col: usize| rows.iter().map(|r| r[col]).fold(0.0, f64::max);
                assert!(
                    peak(2) < peak(1),
                    "{}: SPEF peak {} vs PEFT peak {}",
                    csv.name,
                    peak(2),
                    peak(1)
                );
            }
            // Both protocols carry all offered traffic: total load > 0 on
            // every cut is hard to assert cheaply, but the aggregate must
            // be comparable between the two.
            let total = |col: usize| rows.iter().map(|r| r[col]).sum::<f64>();
            let ratio = total(2) / total(1);
            assert!(
                (0.7..1.5).contains(&ratio),
                "{}: aggregate load ratio {ratio}",
                csv.name
            );
        }
    }
}
