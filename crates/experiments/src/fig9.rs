//! Fig. 9: sorted link utilizations, OSPF vs SPEF — Abilene at network
//! load ≈ 0.17 (Fortz–Thorup demands) and CERNET2 at ≈ 0.21 (gravity
//! demands).
//!
//! Paper findings reproduced: "some underutilized links in OSPF are used
//! efficiently in SPEF. At the same time the traffic on the over-utilized
//! links in OSPF is removed in SPEF" — SPEF's sorted-utilization curve is
//! flatter: lower head, fatter middle.

use spef_baselines::ospf::OspfRouting;
use spef_core::{metrics, Objective, SpefError, TeInstance, TeSolver};
use spef_topology::{standard, Network, TrafficMatrix};

use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::{scale, Quality};

/// Seed for the Abilene Fortz–Thorup demand matrix.
pub const ABILENE_TM_SEED: u64 = 20110417;
/// Seed/σ for the CERNET2 gravity demand matrix.
pub const CERNET2_TM_SEED: u64 = 20100110;
/// Log-normal σ of the CERNET2 gravity masses.
pub const CERNET2_SIGMA: f64 = 1.0;

/// The two panels' target network loads (paper: 0.17 / 0.21), clamped to
/// 90% of the feasibility boundary of our reconstructed instances.
pub fn panel_setup(quality: Quality) -> Result<Vec<(Network, TrafficMatrix, f64)>, SpefError> {
    let abilene = standard::abilene();
    let cernet2 = standard::cernet2();
    let tm_a = TrafficMatrix::fortz_thorup(&abilene, ABILENE_TM_SEED);
    let tm_c = TrafficMatrix::gravity(&cernet2, CERNET2_SIGMA, CERNET2_TM_SEED);
    let mut panels = Vec::new();
    for (net, shape, target) in [(abilene, tm_a, 0.17f64), (cernet2, tm_c, 0.21)] {
        let lmax = match quality {
            Quality::Full => scale::max_feasible_load(&net, &shape, 0.02)?,
            Quality::Quick => scale::max_feasible_load(&net, &shape, 0.10)?,
        };
        let load = target.min(0.9 * lmax);
        let tm = shape.scaled_to_network_load(&net, load);
        panels.push((net, tm, load));
    }
    Ok(panels)
}

/// Runs the Fig. 9 reproduction.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let mut tables = Vec::new();
    let mut csvs = Vec::new();
    for (net, tm, load) in panel_setup(quality)? {
        let obj = Objective::proportional(net.link_count());
        let spef = quality
            .spef_config()
            .solve(TeInstance::new(&net, &tm, &obj))?;
        let ospf = OspfRouting::route(&net, &tm)
            .map_err(|e| SpefError::InvalidInput(format!("OSPF failed: {e}")))?;

        let s_ospf = metrics::sorted_utilizations(&net, ospf.flows().aggregate());
        let s_spef = metrics::sorted_utilizations(&net, spef.flows().aggregate());

        let mut table = TextTable::new(
            format!(
                "Fig. 9 — sorted link utilizations, {} at network load {:.3}",
                net.name(),
                load
            ),
            &["rank", "OSPF", "SPEF"],
        );
        let mut rows = Vec::new();
        for (i, (o, s)) in s_ospf.iter().zip(&s_spef).enumerate() {
            rows.push(vec![(i + 1) as f64, *o, *s]);
            if i < 8 || i % 4 == 0 {
                table.push_row(vec![format!("{}", i + 1), fmt_val(*o), fmt_val(*s)]);
            }
        }
        table.push_row(vec!["MLU".into(), fmt_val(s_ospf[0]), fmt_val(s_spef[0])]);
        tables.push(table);
        csvs.push(CsvFile::from_rows(
            format!("fig9_{}.csv", net.name().to_lowercase()),
            &["rank", "ospf", "spef"],
            &rows,
        ));
    }

    Ok(ExperimentResult {
        id: "fig9",
        tables,
        csvs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spef_flattens_the_curve() {
        let r = run(Quality::Quick).unwrap();
        assert_eq!(r.csvs.len(), 2);
        for csv in &r.csvs {
            let rows: Vec<Vec<f64>> = csv
                .content
                .lines()
                .skip(1)
                .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
                .collect();
            let mlu_ospf = rows[0][1];
            let mlu_spef = rows[0][2];
            assert!(
                mlu_spef <= mlu_ospf + 1e-9,
                "{}: SPEF MLU {mlu_spef} vs OSPF {mlu_ospf}",
                csv.name
            );
            // Sorted: non-increasing.
            for w in rows.windows(2) {
                assert!(w[1][1] <= w[0][1] + 1e-9);
                assert!(w[1][2] <= w[0][2] + 1e-9);
            }
            // SPEF engages more links than OSPF leaves idle (tail is
            // fatter) or at minimum no fewer.
            let used = |col: usize| rows.iter().filter(|r| r[col] > 1e-9).count();
            assert!(used(2) >= used(1), "{}", csv.name);
        }
    }
}
