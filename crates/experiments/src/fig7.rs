//! Fig. 7: the first (a) and second (b) link weights on the Fig. 4
//! network for β = 0, 1, 5.
//!
//! Paper findings reproduced: the bottleneck link's first weight exceeds
//! the others at β = 0 (LP dual pricing of the saturated link); most
//! second weights are zero — only links whose exponential split must be
//! biased away from even carry a positive second weight; the bottleneck's
//! second-weight pressure grows with β ("we route fewer traffic through
//! link 1 with larger β").

use spef_core::SpefError;
use spef_topology::standard;

use crate::fig6::spef_routings;
use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::Quality;

/// Runs the Fig. 7 reproduction.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let routings = spef_routings(quality)?;

    let mut first = TextTable::new(
        "Fig. 7(a) — first link weights (Fig. 4 network)",
        &["link", "SPEF0", "SPEF1", "SPEF5"],
    );
    let mut second = TextTable::new(
        "Fig. 7(b) — second link weights (Fig. 4 network)",
        &["link", "SPEF0", "SPEF1", "SPEF5"],
    );
    let mut rows1 = Vec::new();
    let mut rows2 = Vec::new();
    for e in 0..standard::FIG4_SHOWN_LINKS {
        let w1: Vec<f64> = routings.iter().map(|r| r.first_weights()[e]).collect();
        let w2: Vec<f64> = routings.iter().map(|r| r.second_weights()[e]).collect();
        first.push_row(
            std::iter::once(format!("{}", e + 1))
                .chain(w1.iter().map(|&v| fmt_val(v)))
                .collect(),
        );
        second.push_row(
            std::iter::once(format!("{}", e + 1))
                .chain(w2.iter().map(|&v| fmt_val(v)))
                .collect(),
        );
        rows1.push(std::iter::once((e + 1) as f64).chain(w1).collect());
        rows2.push(std::iter::once((e + 1) as f64).chain(w2).collect());
    }

    Ok(ExperimentResult {
        id: "fig7",
        tables: vec![first, second],
        csvs: vec![
            CsvFile::from_rows("fig7a.csv", &["link", "spef0", "spef1", "spef5"], &rows1),
            CsvFile::from_rows("fig7b.csv", &["link", "spef0", "spef1", "spef5"], &rows2),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(csv: &str) -> Vec<Vec<f64>> {
        csv.lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect()
    }

    #[test]
    fn paper_shape_holds() {
        let r = run(Quality::Quick).unwrap();
        let first = parse(&r.csvs[0].content);
        let second = parse(&r.csvs[1].content);
        assert_eq!(first.len(), 13);
        assert_eq!(second.len(), 13);
        // Fig. 7(a) at β=0: the saturated bottleneck link 1 carries an
        // elevated weight, strictly above the unsaturated links' q = 1.
        let w0: Vec<f64> = first.iter().map(|r| r[1]).collect();
        assert!(w0[0] > 1.5, "bottleneck beta0 weight {}", w0[0]);
        let others_max = w0[1..].iter().cloned().fold(0.0, f64::max);
        assert!(w0[0] >= others_max, "bottleneck must carry the max weight");
        // All first weights positive.
        for row in &first {
            for v in &row[1..] {
                assert!(*v > 0.0);
            }
        }
        // Fig. 7(b): second weights are sparse — only a few links carry a
        // *significant* second weight (the gradient iterates leave tiny
        // residues elsewhere, as does the paper's Algorithm 2).
        for (bi, _) in crate::fig6::BETAS.iter().enumerate() {
            let max_v = second.iter().map(|r| r[1 + bi]).fold(0.0, f64::max);
            if max_v <= 0.0 {
                continue;
            }
            let significant = second.iter().filter(|r| r[1 + bi] > 0.05 * max_v).count();
            assert!(
                significant <= 8,
                "beta index {bi}: {significant} significant"
            );
        }
        // And non-negative everywhere.
        for row in &second {
            for v in &row[1..] {
                assert!(*v >= 0.0);
            }
        }
    }
}
