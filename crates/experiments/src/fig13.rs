//! Fig. 13: impact of integer weights on utility — Abilene and CERNET2,
//! noninteger (scaled, Dijkstra tolerance 0.3) vs integer (rounded,
//! tolerance 1) first weights across a load sweep.
//!
//! Paper findings reproduced: "the integer weights has little impact on
//! utility for the low network loading. At higher network loadings, errors
//! due to integer tolerances comes into play so that the utility starts to
//! deviate."

use spef_core::{Objective, SpefError, TeInstance, TeSolver, WeightMode};
use spef_topology::standard;

use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::{scale, Quality};

/// Runs the Fig. 13 reproduction.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let abilene = standard::abilene();
    let cernet2 = standard::cernet2();
    let tm_a = spef_topology::TrafficMatrix::fortz_thorup(&abilene, crate::fig9::ABILENE_TM_SEED);
    let tm_c = spef_topology::TrafficMatrix::gravity(
        &cernet2,
        crate::fig9::CERNET2_SIGMA,
        crate::fig9::CERNET2_TM_SEED,
    );
    let n_points = match quality {
        Quality::Full => 6,
        Quality::Quick => 3,
    };

    let mut tables = Vec::new();
    let mut csvs = Vec::new();
    for (net, shape) in [(abilene, tm_a), (cernet2, tm_c)] {
        let loads = scale::load_series(&net, &shape, n_points, 0.45, 0.9)?;
        let obj = Objective::proportional(net.link_count());
        let mut table = TextTable::new(
            format!("Fig. 13 — integer vs noninteger weights, {}", net.name()),
            &["load", "noninteger U", "integer U"],
        );
        let mut rows = Vec::new();
        for &load in &loads {
            let tm = shape.scaled_to_network_load(&net, load);
            let mut utilities = Vec::new();
            for mode in [WeightMode::ScaledNoninteger, WeightMode::Integer] {
                let cfg = spef_core::SpefConfig {
                    weight_mode: mode,
                    ..quality.spef_config()
                };
                let routing = cfg.solve(TeInstance::new(&net, &tm, &obj))?;
                utilities.push(routing.normalized_utility(&net));
            }
            table.push_row(vec![
                fmt_val(load),
                fmt_val(utilities[0]),
                fmt_val(utilities[1]),
            ]);
            rows.push(vec![load, utilities[0], utilities[1]]);
        }
        tables.push(table);
        csvs.push(CsvFile::from_rows(
            format!("fig13_{}.csv", net.name().to_lowercase()),
            &["load", "noninteger", "integer"],
            &rows,
        ));
    }

    Ok(ExperimentResult {
        id: "fig13",
        tables,
        csvs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_degradation_small_at_low_load() {
        let r = run(Quality::Quick).unwrap();
        for csv in &r.csvs {
            let rows: Vec<Vec<f64>> = csv
                .content
                .lines()
                .skip(1)
                .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
                .collect();
            // At the lowest load both configurations are feasible and
            // close (paper: "little impact ... for the low network
            // loading").
            let first = &rows[0];
            assert!(first[1].is_finite(), "{}", csv.name);
            assert!(first[2].is_finite(), "{}", csv.name);
            let rel = (first[1] - first[2]).abs() / first[1].abs().max(1.0);
            assert!(rel < 0.35, "{}: low-load deviation {rel}", csv.name);
            // Utilities decrease with load for both modes.
            for w in rows.windows(2) {
                if w[0][1].is_finite() && w[1][1].is_finite() {
                    assert!(w[1][1] <= w[0][1] + 1e-6);
                }
            }
        }
    }
}
