//! Demand scaling utilities: the paper "create[s] different test cases by
//! uniformly increasing the traffic demands until the maximal link
//! utilization almost reaches 100% with SPEF".

use spef_core::{
    ConvergenceCriteria, FrankWolfeConfig, Objective, SpefError, TeInstance, TeSolver,
};
use spef_topology::{Network, TrafficMatrix};

/// Finds (by bisection) the largest network load at which the traffic
/// matrix shape remains routable — the optimal MLU stays below 1. The
/// returned load is within `rel_tol` of the true feasibility boundary.
///
/// # Errors
///
/// Propagates solver errors other than infeasibility; returns
/// [`SpefError::Infeasible`] if even `lo_load` cannot be routed.
pub fn max_feasible_load(
    network: &Network,
    shape: &TrafficMatrix,
    rel_tol: f64,
) -> Result<f64, SpefError> {
    let obj = Objective::proportional(network.link_count());
    let fw = FrankWolfeConfig {
        convergence: ConvergenceCriteria::with_tolerance(300, 1e-6),
        ..FrankWolfeConfig::default()
    };
    let feasible = |load: f64| -> Result<bool, SpefError> {
        let tm = shape.scaled_to_network_load(network, load);
        match fw.solve(TeInstance::new(network, &tm, &obj)) {
            Ok(_) => Ok(true),
            Err(SpefError::Infeasible) => Ok(false),
            Err(e) => Err(e),
        }
    };

    let mut lo = 1e-3;
    if !feasible(lo)? {
        return Err(SpefError::Infeasible);
    }
    let mut hi = lo;
    while feasible(hi)? {
        lo = hi;
        hi *= 2.0;
        if hi > 1.0 {
            break; // network load can never exceed 1 by definition of load
        }
    }
    while (hi - lo) / lo > rel_tol {
        let mid = 0.5 * (lo + hi);
        if feasible(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Builds an increasing series of `n` load points spanning
/// `[lo_frac, hi_frac] × max_feasible_load` — the x-axes of Fig. 10/13.
///
/// # Errors
///
/// Propagates [`max_feasible_load`] errors.
pub fn load_series(
    network: &Network,
    shape: &TrafficMatrix,
    n: usize,
    lo_frac: f64,
    hi_frac: f64,
) -> Result<Vec<f64>, SpefError> {
    assert!(n >= 2, "need at least two load points");
    assert!(0.0 < lo_frac && lo_frac < hi_frac && hi_frac <= 1.0);
    let lmax = max_feasible_load(network, shape, 0.02)?;
    Ok((0..n)
        .map(|i| {
            let f = lo_frac + (hi_frac - lo_frac) * i as f64 / (n - 1) as f64;
            lmax * f
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spef_topology::standard;

    #[test]
    fn fig1_boundary_matches_cut_capacity() {
        // Fig. 1: demand shape (1→3: 1, 3→4: 0.9). The 3→4 link caps the
        // scale at factor 1/0.9 (its capacity is 1), i.e. total demand
        // 1.9/0.9 and network load (1.9/0.9)/6.
        let net = standard::fig1();
        let shape = standard::fig1_demands();
        let lmax = max_feasible_load(&net, &shape, 0.01).unwrap();
        let expected = (1.9 / 0.9) / 6.0;
        assert!(
            (lmax - expected).abs() < 0.05 * expected,
            "lmax {lmax} vs {expected}"
        );
    }

    #[test]
    fn load_series_is_increasing_and_feasible_shaped() {
        let net = standard::fig4();
        let shape = standard::fig4_demands();
        let series = load_series(&net, &shape, 5, 0.5, 0.95).unwrap();
        assert_eq!(series.len(), 5);
        for w in series.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Top of the series stays strictly inside the feasible region.
        let tm = shape.scaled_to_network_load(&net, *series.last().unwrap());
        let obj = Objective::proportional(net.link_count());
        assert!(FrankWolfeConfig::fast()
            .solve(TeInstance::new(&net, &tm, &obj))
            .is_ok());
    }
}
