//! Fig. 10: normalized utility `Σ log(1 − u)` versus network load, OSPF vs
//! SPEF, across all seven evaluation networks of TABLE III.
//!
//! Paper findings reproduced: SPEF's utility dominates OSPF's everywhere;
//! "the utility difference between SPEF and OSPF becomes obvious with the
//! increasing of network load"; at the top of each sweep OSPF's MLU
//! crosses 1 (utility −∞, omitted from the paper's plots) while "SPEF
//! still works".

use spef_baselines::ospf::OspfRouting;
use spef_core::{Objective, SpefError, TeInstance, TeSolver};
use spef_topology::{gen, standard, Network, TrafficMatrix};

use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::{scale, Quality};

/// One panel of Fig. 10.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Network name (TABLE III id).
    pub name: String,
    /// Load points swept.
    pub loads: Vec<f64>,
    /// OSPF normalized utility per load (−∞ once MLU ≥ 1).
    pub ospf_utility: Vec<f64>,
    /// SPEF normalized utility per load.
    pub spef_utility: Vec<f64>,
}

/// The evaluation networks with their demand models (TABLE III order:
/// Abilene and Cernet2 backbones first, then the synthetic networks).
pub fn evaluation_networks(quality: Quality) -> Vec<(Network, TrafficMatrix)> {
    let abilene = standard::abilene();
    let cernet2 = standard::cernet2();
    let tm_a = TrafficMatrix::fortz_thorup(&abilene, crate::fig9::ABILENE_TM_SEED);
    let tm_c = TrafficMatrix::gravity(
        &cernet2,
        crate::fig9::CERNET2_SIGMA,
        crate::fig9::CERNET2_TM_SEED,
    );
    let mut nets = vec![(abilene, tm_a), (cernet2, tm_c)];
    if quality == Quality::Full {
        for net in gen::table3_synthetic_networks() {
            let tm = TrafficMatrix::fortz_thorup(&net, 0x46545F + net.node_count() as u64);
            nets.push((net, tm));
        }
    }
    nets
}

/// Sweeps one network: `n` load points across `[0.5, 0.98] × L*`.
///
/// # Errors
///
/// Propagates solver failures.
pub fn sweep_panel(
    net: &Network,
    shape: &TrafficMatrix,
    quality: Quality,
) -> Result<Panel, SpefError> {
    let (n_points, hi_frac) = match quality {
        Quality::Full => (7, 0.95),
        Quality::Quick => (3, 0.85),
    };
    let loads = scale::load_series(net, shape, n_points, 0.5, hi_frac)?;
    let obj = Objective::proportional(net.link_count());
    let mut ospf_utility = Vec::with_capacity(loads.len());
    let mut spef_utility = Vec::with_capacity(loads.len());
    for &load in &loads {
        let tm = shape.scaled_to_network_load(net, load);
        let ospf = OspfRouting::route(net, &tm)
            .map_err(|e| SpefError::InvalidInput(format!("OSPF failed: {e}")))?;
        ospf_utility.push(ospf.normalized_utility(net));
        let spef = quality
            .spef_config()
            .solve(TeInstance::new(net, &tm, &obj))?;
        spef_utility.push(spef.normalized_utility(net));
    }
    Ok(Panel {
        name: net.name().to_string(),
        loads,
        ospf_utility,
        spef_utility,
    })
}

/// Runs the Fig. 10 reproduction (all seven networks at `Quality::Full`,
/// the two backbones at `Quality::Quick`). Panels run on parallel threads.
///
/// # Errors
///
/// Propagates solver failures from any panel.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let nets = evaluation_networks(quality);
    let panels: Vec<Result<Panel, SpefError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = nets
            .iter()
            .map(|(net, tm)| scope.spawn(move || sweep_panel(net, tm, quality)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("panel thread panicked"))
            .collect()
    });

    let mut tables = Vec::new();
    let mut csvs = Vec::new();
    for panel in panels {
        let panel = panel?;
        let mut table = TextTable::new(
            format!(
                "Fig. 10 — normalized utility vs network load, {}",
                panel.name
            ),
            &["load", "OSPF", "SPEF"],
        );
        let mut rows = Vec::new();
        for i in 0..panel.loads.len() {
            table.push_row(vec![
                fmt_val(panel.loads[i]),
                fmt_val(panel.ospf_utility[i]),
                fmt_val(panel.spef_utility[i]),
            ]);
            rows.push(vec![
                panel.loads[i],
                panel.ospf_utility[i],
                panel.spef_utility[i],
            ]);
        }
        csvs.push(CsvFile::from_rows(
            format!("fig10_{}.csv", panel.name.to_lowercase()),
            &["load", "ospf_utility", "spef_utility"],
            &rows,
        ));
        tables.push(table);
    }

    Ok(ExperimentResult {
        id: "fig10",
        tables,
        csvs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spef_dominates_and_gap_widens() {
        let r = run(Quality::Quick).unwrap();
        assert_eq!(r.csvs.len(), 2); // Abilene + Cernet2 in quick mode
        for csv in &r.csvs {
            let rows: Vec<Vec<f64>> = csv
                .content
                .lines()
                .skip(1)
                .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
                .collect();
            for row in &rows {
                let (ospf, spef) = (row[1], row[2]);
                assert!(spef.is_finite(), "{}: SPEF must stay feasible", csv.name);
                assert!(
                    spef >= ospf - 1e-6 || ospf == f64::NEG_INFINITY,
                    "{}: SPEF {spef} vs OSPF {ospf}",
                    csv.name
                );
            }
            // The gap grows with load among finite OSPF points.
            let gaps: Vec<f64> = rows
                .iter()
                .filter(|r| r[1].is_finite())
                .map(|r| r[2] - r[1])
                .collect();
            if gaps.len() >= 2 {
                assert!(
                    gaps.last().unwrap() >= gaps.first().unwrap(),
                    "{}: gap shrank {gaps:?}",
                    csv.name
                );
            }
        }
    }
}
