//! Fig. 6: per-link utilization on the Fig. 4 network — OSPF against SPEF
//! with β = 0, 1, 5.
//!
//! Paper findings reproduced: OSPF drives the bottleneck (link 1) to 1.6;
//! SPEF0 saturates it exactly (1.0); its utilization strictly decreases in
//! β; all SPEF variants stay at or below capacity.

use spef_baselines::ospf::OspfRouting;
use spef_core::{Objective, SpefError, SpefRouting, TeInstance, TeSolver};
use spef_topology::standard;

use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::Quality;

/// The β values shown in Fig. 6/7 ("SPEF0", "SPEF1", "SPEF5").
pub const BETAS: [f64; 3] = [0.0, 1.0, 5.0];

/// Builds the three SPEF routings of Fig. 6/7.
///
/// # Errors
///
/// Propagates solver failures.
pub fn spef_routings(quality: Quality) -> Result<Vec<SpefRouting>, SpefError> {
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    BETAS
        .iter()
        .map(|&beta| {
            let obj = Objective::uniform(beta, net.link_count());
            quality
                .spef_config()
                .solve(TeInstance::new(&net, &tm, &obj))
        })
        .collect()
}

/// Runs the Fig. 6 reproduction.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let net = standard::fig4();
    let tm = standard::fig4_demands();
    let ospf = OspfRouting::route(&net, &tm)
        .map_err(|e| SpefError::InvalidInput(format!("OSPF routing failed: {e}")))?;
    let spefs = spef_routings(quality)?;

    let u_ospf = net.utilizations(ospf.flows().aggregate());
    let u_spef: Vec<Vec<f64>> = spefs
        .iter()
        .map(|r| net.utilizations(r.flows().aggregate()))
        .collect();

    let mut table = TextTable::new(
        "Fig. 6 — link utilization on the Fig. 4 network",
        &["link", "OSPF", "SPEF0", "SPEF1", "SPEF5"],
    );
    let mut rows = Vec::new();
    for e in 0..standard::FIG4_SHOWN_LINKS {
        let row = vec![
            (e + 1) as f64,
            u_ospf[e],
            u_spef[0][e],
            u_spef[1][e],
            u_spef[2][e],
        ];
        table.push_row(
            std::iter::once(format!("{}", e + 1))
                .chain(row[1..].iter().map(|&v| fmt_val(v)))
                .collect(),
        );
        rows.push(row);
    }

    Ok(ExperimentResult {
        id: "fig6",
        tables: vec![table],
        csvs: vec![CsvFile::from_rows(
            "fig6.csv",
            &["link", "ospf", "spef0", "spef1", "spef5"],
            &rows,
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_holds() {
        let r = run(Quality::Quick).unwrap();
        let rows: Vec<Vec<f64>> = r.csvs[0]
            .content
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect();
        assert_eq!(rows.len(), 13);
        // Link 1 (row 0): OSPF 1.6, SPEF0 1.0, decreasing in beta.
        assert!((rows[0][1] - 1.6).abs() < 1e-9, "OSPF bottleneck");
        assert!((rows[0][2] - 1.0).abs() < 0.03, "SPEF0 saturates link 1");
        assert!(rows[0][3] <= rows[0][2] + 1e-6, "SPEF1 <= SPEF0 on link 1");
        assert!(rows[0][4] <= rows[0][3] + 1e-6, "SPEF5 <= SPEF1 on link 1");
        // All SPEF utilizations stay at or below capacity, within the NEM
        // realisation tolerance (the β=0 optimum saturates link 1 exactly,
        // so the realised flow may sit a hair above 1.0).
        for row in &rows {
            for v in &row[2..] {
                assert!(*v <= 1.03, "utilization {v}");
            }
        }
        // SPEF uses links OSPF leaves idle (load spreading).
        let ospf_used = rows.iter().filter(|r| r[1] > 1e-9).count();
        let spef1_used = rows.iter().filter(|r| r[3] > 1e-9).count();
        assert!(spef1_used > ospf_used);
    }
}
