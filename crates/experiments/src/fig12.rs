//! Fig. 12: convergence of the dual-decomposition algorithms on CERNET2 —
//! (a) Algorithm 1's TE dual objective over 2000 iterations for step-size
//! ratios ×{2, 1, 0.5, 0.1} of the default `1/max c`, and (b) Algorithm
//! 2's NEM dual objective over 1000 iterations for ratios
//! ×{2, 1, 0.5, 0.25} of the default `1/max f*`.
//!
//! Paper findings reproduced: the default step converges fast; smaller
//! steps converge monotonically but slower; "too large a step size would
//! cause a little oscillation"; Algorithm 2's zero initialisation is
//! already a good approximate dual.

use spef_core::{
    build_dags, ConvergenceCriteria, DualDecompConfig, NemConfig, NemInstance, Objective,
    SpefError, StepRule, TeInstance, TeSolver, TeWorkspace,
};
use spef_topology::{standard, TrafficMatrix};

use crate::report::{fmt_val, CsvFile, ExperimentResult, TextTable};
use crate::{scale, Quality};

/// Step-size ratios for Algorithm 1 (Fig. 12(a) legend).
pub const TE_RATIOS: [f64; 4] = [2.0, 1.0, 0.5, 0.1];
/// Step-size ratios for Algorithm 2 (Fig. 12(b) legend).
pub const NEM_RATIOS: [f64; 4] = [2.0, 1.0, 0.5, 0.25];

/// Iteration budgets (the paper's x-ranges at `Quality::Full`).
pub fn budgets(quality: Quality) -> (usize, usize) {
    match quality {
        Quality::Full => (2000, 1000),
        Quality::Quick => (150, 100),
    }
}

/// Runs the Fig. 12 reproduction.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(quality: Quality) -> Result<ExperimentResult, SpefError> {
    let net = standard::cernet2();
    let shape = TrafficMatrix::gravity(
        &net,
        crate::fig9::CERNET2_SIGMA,
        crate::fig9::CERNET2_TM_SEED,
    );
    let lmax = scale::max_feasible_load(&net, &shape, 0.05)?;
    let tm = shape.scaled_to_network_load(&net, (0.21f64).min(0.85 * lmax));
    let obj = Objective::proportional(net.link_count());
    let (te_iters, nem_iters) = budgets(quality);
    // Shared arenas across every solve; the saved solutions are cleared
    // before each trace so all of them start from the paper's cold
    // initialisation (the figure compares cold trajectories).
    let mut ws = TeWorkspace::new();

    // Panel (a): Algorithm 1 traces.
    let mut te_traces = Vec::new();
    for &ratio in &TE_RATIOS {
        let cfg = DualDecompConfig {
            step: StepRule::DefaultRatio(ratio),
            // Zero tolerance: run the full budget for the figure.
            convergence: ConvergenceCriteria::with_tolerance(te_iters, 0.0),
            record_trace: true,
        };
        ws.clear_solutions();
        let out = cfg.solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)?;
        te_traces.push((ratio, out.dual_objective_trace));
    }

    // Panel (b): Algorithm 2 traces against the optimal f*. The target is
    // padded by the TE solver's accuracy: on links with no routing choice
    // the realised flow is *forced*, and a target even infinitesimally
    // below it would push the corresponding dual upward forever (a linear
    // drift in d(v) that the paper's exactly-realisable target never
    // exhibits).
    ws.clear_solutions();
    let te = quality
        .fw()
        .solve_in(TeInstance::new(&net, &tm, &obj), &mut ws)?;
    let max_f = te.flows.aggregate().iter().cloned().fold(0.0, f64::max);
    let target: Vec<f64> = te
        .flows
        .aggregate()
        .iter()
        .map(|f| f + 1e-6 * max_f)
        .collect();
    let dests = tm.destinations();
    let tol = spef_core::protocol::support_slack_tolerance(net.graph(), &te.weights, &te.flows)?;
    let dags = build_dags(net.graph(), &te.weights, &dests, tol)?;
    let mut nem_traces = Vec::new();
    for &ratio in &NEM_RATIOS {
        let cfg = NemConfig {
            step: StepRule::DefaultRatio(ratio),
            // Zero tolerance: run the full budget for the figure.
            convergence: ConvergenceCriteria::with_tolerance(nem_iters, 0.0),
            record_trace: true,
        };
        ws.clear_solutions();
        let out = cfg.solve_in(NemInstance::new(net.graph(), &dags, &tm, &target), &mut ws)?;
        nem_traces.push((ratio, out.dual_objective_trace));
    }

    // Render.
    let mut tables = Vec::new();
    let mut csvs = Vec::new();
    for (panel, traces, name) in [
        ("a", &te_traces, "TE dual objective (Algorithm 1)"),
        ("b", &nem_traces, "NEM dual objective (Algorithm 2)"),
    ] {
        let iters = traces[0].1.len();
        let mut table = TextTable::new(
            format!("Fig. 12({panel}) — {name}, Cernet2"),
            &["iteration", "x2", "x1", "x0.5", "x0.25/0.1"],
        );
        let mut rows = Vec::new();
        for k in 0..iters {
            let row: Vec<f64> = std::iter::once(k as f64)
                .chain(traces.iter().map(|(_, t)| t[k]))
                .collect();
            if k < 3 || k % (iters / 10).max(1) == 0 || k == iters - 1 {
                table.push_row(
                    std::iter::once(format!("{k}"))
                        .chain(row[1..].iter().map(|&v| fmt_val(v)))
                        .collect(),
                );
            }
            rows.push(row);
        }
        tables.push(table);
        csvs.push(CsvFile::from_rows(
            format!("fig12{panel}.csv"),
            &["iteration", "ratio2", "ratio1", "ratio05", "ratio_small"],
            &rows,
        ));
    }

    Ok(ExperimentResult {
        id: "fig12",
        tables,
        csvs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(csv: &str) -> Vec<Vec<f64>> {
        csv.lines()
            .skip(1)
            .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
            .collect()
    }

    #[test]
    fn traces_have_paper_shape() {
        let r = run(Quality::Quick).unwrap();
        let te = parse(&r.csvs[0].content);
        let nem = parse(&r.csvs[1].content);
        // Every ratio's TE dual decreases substantially from its start
        // (start is an upper bound far from the optimum).
        for col in 1..=4 {
            let first = te.first().unwrap()[col];
            let last = te.last().unwrap()[col];
            assert!(last < first, "TE ratio col {col}: {first} → {last}");
        }
        // The default ratio (col 2) converges fast: through the early
        // budget it sits below the smallest step (col 4), which descends
        // monotonically but slowly. (With a constant step the default
        // ratio plateaus at an O(step) neighbourhood of the optimum, so
        // the *final* values may cross — the paper's claim is about speed.)
        let k10 = (te.len() / 10).max(1);
        assert!(
            te[k10][2] < te[k10][4],
            "default ratio not faster at k={k10}: {} vs {}",
            te[k10][2],
            te[k10][4]
        );
        // ...and it has essentially reached its plateau by a third of the
        // budget.
        let last = te.last().unwrap()[2];
        let descent = te.first().unwrap()[2] - last;
        assert!(
            (te[te.len() / 3][2] - last).abs() <= 0.15 * descent,
            "default ratio still moving after a third of the budget"
        );
        // NEM duals are finite and the default ratio is non-increasing
        // overall.
        for row in &nem {
            for v in &row[1..] {
                assert!(v.is_finite());
            }
        }
        let nem_first = nem.first().unwrap()[2];
        let nem_last = nem.last().unwrap()[2];
        assert!(nem_last <= nem_first + 1e-9);
    }
}
