//! Output containers: aligned ASCII tables for the terminal, CSV files for
//! plotting.

use std::fmt;
use std::io;
use std::path::Path;

/// A human-readable table with aligned columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    /// Title shown above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table from a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>width$}", cells[i], width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// A CSV file to be written into the results directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvFile {
    /// File name (e.g. `fig9_abilene.csv`).
    pub name: String,
    /// Full file content.
    pub content: String,
}

impl CsvFile {
    /// Builds a CSV from headers and numeric rows.
    pub fn from_rows(name: impl Into<String>, headers: &[&str], rows: &[Vec<f64>]) -> CsvFile {
        let mut content = String::new();
        content.push_str(&headers.join(","));
        content.push('\n');
        for row in rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            content.push_str(&cells.join(","));
            content.push('\n');
        }
        CsvFile {
            name: name.into(),
            content,
        }
    }
}

/// Everything one experiment produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `"fig9"`).
    pub id: &'static str,
    /// Terminal tables.
    pub tables: Vec<TextTable>,
    /// CSV artifacts.
    pub csvs: Vec<CsvFile>,
}

impl ExperimentResult {
    /// Writes all CSV artifacts into `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csvs(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for csv in &self.csvs {
            std::fs::write(dir.join(&csv.name), &csv.content)?;
        }
        Ok(())
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### Experiment {} ###", self.id)?;
        for t in &self.tables {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Formats a floating value compactly (3 significant decimals, `-inf`
/// for negative infinity).
pub fn fmt_val(v: f64) -> String {
    if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new("demo", &["link", "util"]);
        t.push_row(vec!["(1,3)".into(), "0.67".into()]);
        t.push_row(vec!["(3,4)".into(), "0.9".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("link"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_enforced() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_from_rows() {
        let csv = CsvFile::from_rows("x.csv", &["a", "b"], &[vec![1.0, 2.5]]);
        assert_eq!(csv.content, "a,b\n1,2.5\n");
    }

    #[test]
    fn fmt_val_handles_special() {
        assert_eq!(fmt_val(f64::NEG_INFINITY), "-inf");
        assert_eq!(fmt_val(0.5), "0.500");
        assert_eq!(fmt_val(12345.6), "12346");
    }

    #[test]
    fn write_csvs_roundtrip() {
        let dir = std::env::temp_dir().join("spef_report_test");
        let result = ExperimentResult {
            id: "test",
            tables: vec![],
            csvs: vec![CsvFile::from_rows("t.csv", &["x"], &[vec![1.0]])],
        };
        result.write_csvs(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "x\n1\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
